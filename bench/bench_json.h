// Standardized machine-readable bench output.
//
// Every bench binary — paper-reproduction tables and google-benchmark
// micro benches alike — writes results/BENCH_<name>.json through this
// emitter, so the perf trajectory is populated uniformly and
// tools/bench_diff.py can compare any two runs with a tolerance.
//
// Schema ("zka-bench-v1"):
//   {
//     "schema":  "zka-bench-v1",
//     "bench":   "<name>",
//     "git_rev": "<short rev at configure time>",
//     "config":  { ... bench-reported knobs ... },
//     "entries": [
//       { "label": "<case>", "samples": N,
//         "ns_op": {"mean":..,"min":..,"max":..,"p50":..,"stddev":..},
//         "metrics": { ... optional domain metrics (acc, ASR, ...) ... } }
//     ],
//     "prof": { "enabled": bool, "counters": {...}, "summary": [...] }
//   }
//
// All times are nanoseconds. NaN metrics serialize as null.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/prof.h"
#include "util/stats.h"

namespace zka::bench {

#ifndef ZKA_GIT_REV
#define ZKA_GIT_REV "unknown"
#endif

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  const std::string& name() const noexcept { return name_; }

  void set_config(const std::string& key, const std::string& value) {
    std::string quoted;
    append_json_string(quoted, value);
    set_config_raw(key, quoted);
  }
  void set_config(const std::string& key, std::int64_t value) {
    set_config_raw(key, std::to_string(value));
  }
  void set_config(const std::string& key, double value) {
    set_config_raw(key, number(value));
  }

  /// Records one timing sample (nanoseconds) for `label`; samples with the
  /// same label accumulate into one entry's distribution.
  void add_sample(const std::string& label, double ns) {
    entry(label).ns_samples.push_back(ns);
  }

  /// Attaches a domain metric (accuracy, ASR, DPR, ...) to `label`'s entry.
  void add_metric(const std::string& label, const std::string& key,
                  double value) {
    entry(label).metrics.emplace_back(key, value);
  }

  /// Serializes the report, capturing the current prof counters/summary.
  std::string json() const {
    std::string out = "{\"schema\":\"zka-bench-v1\",\"bench\":";
    append_json_string(out, name_);
    out += ",\"git_rev\":";
    append_json_string(out, ZKA_GIT_REV);
    out += ",\"config\":{";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i) out += ',';
      append_json_string(out, config_[i].first);
      out += ':';
      out += config_[i].second;
    }
    out += "},\"entries\":[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (i) out += ',';
      out += "{\"label\":";
      append_json_string(out, e.label);
      out += ",\"samples\":" + std::to_string(e.ns_samples.size());
      out += ",\"ns_op\":{";
      std::vector<double> sorted = e.ns_samples;
      std::sort(sorted.begin(), sorted.end());
      const std::span<const double> view(sorted);
      out += "\"mean\":" + number(util::mean(view));
      out += ",\"min\":" + number(sorted.empty() ? 0.0 : sorted.front());
      out += ",\"max\":" + number(sorted.empty() ? 0.0 : sorted.back());
      // Metric-only entries have no samples; util::median's empty-range
      // contract (DCHECK, UB in release) must not be reached.
      out += ",\"p50\":" +
             number(sorted.empty() ? 0.0 : util::median(sorted));
      out += ",\"stddev\":" + number(util::stddev(view));
      out += '}';
      if (!e.metrics.empty()) {
        out += ",\"metrics\":{";
        for (std::size_t m = 0; m < e.metrics.size(); ++m) {
          if (m) out += ',';
          append_json_string(out, e.metrics[m].first);
          out += ':';
          out += number(e.metrics[m].second);
        }
        out += '}';
      }
      out += '}';
    }
    out += "],\"prof\":{\"enabled\":";
    out += util::prof::enabled() ? "true" : "false";
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& c : util::prof::counters()) {
      if (!first) out += ',';
      first = false;
      append_json_string(out, c.name);
      out += ':' + std::to_string(c.value);
    }
    out += "},\"summary\":[";
    first = true;
    for (const auto& s : util::prof::summary()) {
      if (!first) out += ',';
      first = false;
      out += "{\"label\":";
      append_json_string(out, s.label);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ",\"count\":%" PRIu64 ",\"total_ns\":%" PRIu64
                    ",\"p50_ns\":%" PRIu64 ",\"p99_ns\":%" PRIu64 "}",
                    s.count, s.total_ns, s.p50_ns, s.p99_ns);
      out += buf;
    }
    out += "]}}";
    return out;
  }

  /// Writes the report to `dir`/BENCH_<name>.json (creating `dir`), throws
  /// ZKA_CHECK-style on any I/O failure, and returns the path written.
  std::string write(const std::string& dir = "results") const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    ZKA_CHECK(out.good(), "BenchJson: cannot open %s for writing",
              path.c_str());
    out << json() << '\n';
    out.flush();
    ZKA_CHECK(out.good(), "BenchJson: failed writing %s", path.c_str());
    return path;
  }

 private:
  struct Entry {
    std::string label;
    std::vector<double> ns_samples;
    std::vector<std::pair<std::string, double>> metrics;
  };

  Entry& entry(const std::string& label) {
    for (Entry& e : entries_) {
      if (e.label == label) return e;
    }
    entries_.push_back(Entry{label, {}, {}});
    return entries_.back();
  }

  void set_config_raw(const std::string& key, std::string json_value) {
    for (auto& [k, v] : config_) {
      if (k == key) {
        v = std::move(json_value);
        return;
      }
    }
    config_.emplace_back(key, std::move(json_value));
  }

  static std::string number(double v) {
    if (std::isnan(v) || std::isinf(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static void append_json_string(std::string& out, const std::string& s) {
    out += '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(
                buf, sizeof(buf), "\\u%04x",
                static_cast<unsigned>(static_cast<unsigned char>(ch)));
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Entry> entries_;
};

}  // namespace zka::bench
