// Reproduces Table V: ablation of the distance-based regularizer L_d
// (Eq. 3) — ASR and DPR with and without the term, Fashion, all four
// defenses. `--sweep` additionally scans lambda beyond the paper's on/off
// (a DESIGN.md ablation extension).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("table5", args, scale);

  const fl::AttackKind attacks[] = {fl::AttackKind::kZkaR,
                                    fl::AttackKind::kZkaG};
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};
  // "without regularization" (0) vs "with" at the tuned default weight
  // (core::AdversarialTrainerOptions{}.lambda).
  const double default_lambda = core::AdversarialTrainerOptions{}.lambda;
  std::vector<double> lambdas = {0.0, default_lambda};
  if (args.get_bool("sweep", false)) {
    lambdas = {0.0, 1.0, 2.0, 4.0, default_lambda, 16.0, 32.0};
  }

  util::Table table(
      {"Attack", "Defense", "lambda", "ASR (%)", "DPR (%)"});
  fl::BaselineCache baselines;

  for (const fl::AttackKind attack : attacks) {
    for (const char* defense : defenses) {
      for (const double lambda : lambdas) {
        const fl::SimulationConfig config =
            bench::make_config(models::Task::kFashion, scale, defense);
        core::ZkaOptions zka =
            bench::default_zka_options(models::Task::kFashion);
        zka.classifier.lambda = lambda;
        const std::string label = std::string(fl::attack_kind_name(attack)) +
                                  "/" + defense +
                                  "/lambda=" + util::Table::fmt(lambda, 1);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, attack, zka, scale.runs,
                                        baselines);
            });
        report.add_metric(label, "asr", outcome.asr);
        report.add_metric(label, "dpr", outcome.dpr);
        table.add_row({fl::attack_kind_name(attack), defense,
                       util::Table::fmt(lambda, 1),
                       util::Table::fmt(outcome.asr, 2),
                       bench::fmt_or_na(outcome.dpr)});
        std::printf("[table5] %s/%s/lambda=%.1f: ASR %.2f%% DPR %s\n",
                    fl::attack_kind_name(attack), defense, lambda,
                    outcome.asr, bench::fmt_or_na(outcome.dpr).c_str());
        std::fflush(stdout);
      }
    }
  }
  table.print(
      "\nTable V — distance-regularizer ablation (Fashion; lambda=0 is "
      "'without regularization')");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
