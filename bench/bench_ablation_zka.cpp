// DESIGN.md ablation bench (beyond the paper): sensitivity of the ZKA
// attacks to their own hyperparameters, plus the update-space geometry
// (separability) that explains the stealth results.
//
// Sweeps: |S| (synthetic set size), E (synthesis epochs), J (ZKA-R filter
// kernel), latent dimension (ZKA-G). Reported per point: ASR, DPR under
// mKrum, and the malicious/benign separability ratio measured on a probe
// round (1.0 = geometrically hidden).
#include "analysis/update_diagnostics.h"
#include "bench_common.h"
#include "core/zka_g.h"
#include "core/zka_r.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"

namespace {

using namespace zka;

// Separability of the crafted update vs freshly trained benign updates on
// one probe round starting from a fresh global model.
double probe_separability(models::Task task, attack::Attack& attack,
                          std::uint64_t seed) {
  const auto factory = models::task_model_factory(task);
  const auto dataset = data::make_synthetic_dataset(task, 400, seed);
  util::Rng rng(seed);
  const auto parts =
      data::dirichlet_partition(dataset.labels, 10, 10, 0.5, rng);

  std::vector<float> global = nn::get_flat_params(*factory(seed));
  std::vector<float> prev = global;
  // One warmup aggregation so w(t) != w(t-1).
  std::vector<std::vector<float>> updates;
  for (int c = 0; c < 8; ++c) {
    fl::Client client(c, dataset, parts[static_cast<std::size_t>(c)],
                      factory, {});
    updates.push_back(client.train(global, seed + 100 + c));
  }
  prev = global;
  std::vector<double> acc(global.size(), 0.0);
  for (const auto& u : updates) {
    for (std::size_t i = 0; i < u.size(); ++i) acc[i] += u[i];
  }
  for (std::size_t i = 0; i < global.size(); ++i) {
    global[i] = static_cast<float>(acc[i] / updates.size());
  }

  // Probe round: benign updates + one crafted update.
  std::vector<std::vector<float>> round;
  std::vector<bool> malicious;
  for (int c = 0; c < 8; ++c) {
    fl::Client client(c, dataset, parts[static_cast<std::size_t>(c)],
                      factory, {});
    round.push_back(client.train(global, seed + 200 + c));
    malicious.push_back(false);
  }
  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = prev;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;
  round.push_back(attack.craft(ctx));
  malicious.push_back(true);
  return analysis::diagnose_updates(round, malicious).separability();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("ablation_zka", args, scale);
  const models::Task task = models::Task::kFashion;
  fl::BaselineCache baselines;

  util::Table table({"Attack", "Knob", "Value", "ASR (%)", "DPR (%)",
                     "separability"});
  auto run_point = [&](fl::AttackKind kind, const char* knob,
                       const std::string& value,
                       const core::ZkaOptions& zka) {
    const fl::SimulationConfig config =
        bench::make_config(task, scale, "mkrum");
    const std::string label = std::string(fl::attack_kind_name(kind)) + "/" +
                              knob + "=" + value;
    const fl::ExperimentOutcome outcome =
        bench::timed(report, label, [&] {
          return fl::run_experiment(config, kind, zka, scale.runs,
                                    baselines);
        });
    fl::Simulation probe_sim(config);
    const auto attack = fl::make_attack(kind, probe_sim, zka, scale.seed);
    const double sep = probe_separability(task, *attack, scale.seed + 17);
    report.add_metric(label, "asr", outcome.asr);
    report.add_metric(label, "separability", sep);
    table.add_row({fl::attack_kind_name(kind), knob, value,
                   util::Table::fmt(outcome.asr, 2),
                   bench::fmt_or_na(outcome.dpr),
                   util::Table::fmt(sep, 2)});
    std::printf("[ablation-zka] %s %s=%s: ASR %.2f sep %.2f\n",
                fl::attack_kind_name(kind), knob, value.c_str(), outcome.asr,
                sep);
    std::fflush(stdout);
  };

  // |S| sweep (both variants).
  for (const std::int64_t s : {8, 16, 32, 64}) {
    for (const fl::AttackKind kind :
         {fl::AttackKind::kZkaR, fl::AttackKind::kZkaG}) {
      core::ZkaOptions zka = bench::default_zka_options(task);
      zka.synthetic_size = s;
      run_point(kind, "|S|", std::to_string(s), zka);
    }
  }
  // Synthesis epochs E.
  for (const std::int64_t e : {1, 4, 10}) {
    for (const fl::AttackKind kind :
         {fl::AttackKind::kZkaR, fl::AttackKind::kZkaG}) {
      core::ZkaOptions zka = bench::default_zka_options(task);
      zka.synthesis_epochs = e;
      run_point(kind, "E", std::to_string(e), zka);
    }
  }
  // ZKA-R filter kernel J.
  for (const std::int64_t j : {3, 5, 7}) {
    core::ZkaOptions zka = bench::default_zka_options(task);
    zka.filter_kernel = j;
    run_point(fl::AttackKind::kZkaR, "J", std::to_string(j), zka);
  }
  // ZKA-G latent dimension.
  for (const std::int64_t d : {16, 64, 128}) {
    core::ZkaOptions zka = bench::default_zka_options(task);
    zka.latent_dim = d;
    run_point(fl::AttackKind::kZkaG, "latent", std::to_string(d), zka);
  }

  table.print("\nAblation — ZKA hyperparameter sensitivity (Fashion, mKrum)");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
