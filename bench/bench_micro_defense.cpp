// Micro-benchmarks of the aggregation rules: server-side cost per round
// as the number of updates and the model dimension grow (the DESIGN.md
// mKrum parameter ablation is covered via the f argument).
#include <benchmark/benchmark.h>

#include "bench_micro_common.h"

#include "defense/aggregator.h"
#include "util/rng.h"

namespace {

using namespace zka;

std::vector<defense::Update> make_updates(std::size_t n, std::size_t dim,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<defense::Update> updates(n, defense::Update(dim));
  for (auto& u : updates) {
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return updates;
}

void run_defense(benchmark::State& state, const char* name) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = static_cast<std::size_t>(state.range(1));
  auto agg = defense::make_aggregator(name, /*num_byzantine=*/n / 5);
  const auto updates = make_updates(n, dim, 42);
  const std::vector<std::int64_t> weights(n, 1);
  for (auto _ : state) {
    auto result = agg->aggregate(updates, weights);
    benchmark::DoNotOptimize(result.model.data());
  }
  state.SetItemsProcessed(state.iterations() * n * dim);
}

void BM_FedAvg(benchmark::State& state) { run_defense(state, "fedavg"); }
void BM_Median(benchmark::State& state) { run_defense(state, "median"); }
void BM_TrMean(benchmark::State& state) { run_defense(state, "trmean"); }
void BM_MKrum(benchmark::State& state) { run_defense(state, "mkrum"); }
void BM_Bulyan(benchmark::State& state) { run_defense(state, "bulyan"); }
void BM_FoolsGold(benchmark::State& state) {
  run_defense(state, "foolsgold");
}
void BM_NormClip(benchmark::State& state) { run_defense(state, "normclip"); }
void BM_GeoMedian(benchmark::State& state) { run_defense(state, "geomedian"); }
void BM_CenteredClip(benchmark::State& state) {
  run_defense(state, "centeredclip");
}
void BM_Dnc(benchmark::State& state) { run_defense(state, "dnc"); }

// Model-realistic sizes: the paper's CNN tasks flatten to ~1e5 parameters,
// and production-scale evaluations (Shejwalkar et al. S&P'22, MPAF) run
// rounds of 50-100 clients, so the sweep goes up to n=100 x dim=100k.
#define DEFENSE_ARGS                                         \
  ->Args({10, 10000})->Args({10, 50000})->Args({50, 10000}) \
  ->Args({10, 100000})->Args({50, 100000})->Args({100, 100000}) \
  ->ArgNames({"n", "dim"})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_FedAvg) DEFENSE_ARGS;
BENCHMARK(BM_Median) DEFENSE_ARGS;
BENCHMARK(BM_TrMean) DEFENSE_ARGS;
BENCHMARK(BM_MKrum) DEFENSE_ARGS;
BENCHMARK(BM_Bulyan) DEFENSE_ARGS;
BENCHMARK(BM_FoolsGold) DEFENSE_ARGS;
BENCHMARK(BM_NormClip) DEFENSE_ARGS;
BENCHMARK(BM_GeoMedian) DEFENSE_ARGS;
BENCHMARK(BM_CenteredClip) DEFENSE_ARGS;
BENCHMARK(BM_Dnc) DEFENSE_ARGS;

}  // namespace

ZKA_BENCH_MAIN("micro_defense");
