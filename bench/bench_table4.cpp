// Reproduces Table IV: ASR and DPR of the static (randomly initialized,
// never trained) filter/generator variants vs the trained ZKA attacks,
// all four defenses, both tasks.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("table4", args, scale);

  struct Pair {
    fl::AttackKind static_kind;
    fl::AttackKind trained_kind;
    const char* family;
  };
  const Pair pairs[] = {
      {fl::AttackKind::kZkaRStatic, fl::AttackKind::kZkaR, "ZKA-R"},
      {fl::AttackKind::kZkaGStatic, fl::AttackKind::kZkaG, "ZKA-G"},
  };
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};

  util::Table table({"Attack", "Dataset", "Defense", "Static ASR (%)",
                     "Static DPR (%)", "Trained ASR (%)", "Trained DPR (%)"});
  fl::BaselineCache baselines;

  for (const Pair& pair : pairs) {
    for (const models::Task task : bench::tasks_from_cli(args)) {
      for (const char* defense : defenses) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, defense);
        const core::ZkaOptions zka = bench::default_zka_options(task);
        const std::string base = std::string(pair.family) + "/" +
                                 models::task_name(task) + "/" + defense;
        const fl::ExperimentOutcome st =
            bench::timed(report, base + "/static", [&] {
              return fl::run_experiment(config, pair.static_kind, zka,
                                        scale.runs, baselines);
            });
        const fl::ExperimentOutcome tr =
            bench::timed(report, base + "/trained", [&] {
              return fl::run_experiment(config, pair.trained_kind, zka,
                                        scale.runs, baselines);
            });
        report.add_metric(base + "/static", "asr", st.asr);
        report.add_metric(base + "/static", "dpr", st.dpr);
        report.add_metric(base + "/trained", "asr", tr.asr);
        report.add_metric(base + "/trained", "dpr", tr.dpr);
        table.add_row({pair.family, models::task_name(task), defense,
                       util::Table::fmt(st.asr, 2), bench::fmt_or_na(st.dpr),
                       util::Table::fmt(tr.asr, 2),
                       bench::fmt_or_na(tr.dpr)});
        std::printf(
            "[table4] %s/%s/%s: static ASR %.2f DPR %s | trained ASR %.2f "
            "DPR %s\n",
            pair.family, models::task_name(task), defense, st.asr,
            bench::fmt_or_na(st.dpr).c_str(), tr.asr,
            bench::fmt_or_na(tr.dpr).c_str());
        std::fflush(stdout);
      }
    }
  }
  table.print("\nTable IV — static (untrained) vs trained synthesis");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
