// Reproduces Table IV: ASR and DPR of the static (randomly initialized,
// never trained) filter/generator variants vs the trained ZKA attacks,
// all four defenses, both tasks.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);

  struct Pair {
    fl::AttackKind static_kind;
    fl::AttackKind trained_kind;
    const char* family;
  };
  const Pair pairs[] = {
      {fl::AttackKind::kZkaRStatic, fl::AttackKind::kZkaR, "ZKA-R"},
      {fl::AttackKind::kZkaGStatic, fl::AttackKind::kZkaG, "ZKA-G"},
  };
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};

  util::Table table({"Attack", "Dataset", "Defense", "Static ASR (%)",
                     "Static DPR (%)", "Trained ASR (%)", "Trained DPR (%)"});
  fl::BaselineCache baselines;

  for (const Pair& pair : pairs) {
    for (const models::Task task : bench::tasks_from_cli(args)) {
      for (const char* defense : defenses) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, defense);
        const core::ZkaOptions zka = bench::default_zka_options(task);
        const fl::ExperimentOutcome st = fl::run_experiment(
            config, pair.static_kind, zka, scale.runs, baselines);
        const fl::ExperimentOutcome tr = fl::run_experiment(
            config, pair.trained_kind, zka, scale.runs, baselines);
        table.add_row({pair.family, models::task_name(task), defense,
                       util::Table::fmt(st.asr, 2), bench::fmt_or_na(st.dpr),
                       util::Table::fmt(tr.asr, 2),
                       bench::fmt_or_na(tr.dpr)});
        std::printf(
            "[table4] %s/%s/%s: static ASR %.2f DPR %s | trained ASR %.2f "
            "DPR %s\n",
            pair.family, models::task_name(task), defense, st.asr,
            bench::fmt_or_na(st.dpr).c_str(), tr.asr,
            bench::fmt_or_na(tr.dpr).c_str());
        std::fflush(stdout);
      }
    }
  }
  table.print("\nTable IV — static (untrained) vs trained synthesis");
  bench::maybe_write_csv(args, table);
  return 0;
}
