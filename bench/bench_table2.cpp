// Reproduces Table II: maximum accuracy and attack success rate (ASR) for
// Fang / LIE / Min-Max / ZKA-R / ZKA-G under the four defenses on both
// tasks, Dirichlet beta = 0.5.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("table2", args, scale);

  const fl::AttackKind attacks[] = {
      fl::AttackKind::kFang, fl::AttackKind::kLie, fl::AttackKind::kMinMax,
      fl::AttackKind::kZkaR, fl::AttackKind::kZkaG};
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};

  util::Table table({"Dataset", "Defense", "Attack", "acc_natk (%)",
                     "acc (%)", "ASR (%)", "ASR stddev"});
  fl::BaselineCache baselines;

  for (const models::Task task : bench::tasks_from_cli(args)) {
    for (const char* defense : defenses) {
      for (const fl::AttackKind attack : attacks) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, defense);
        const std::string label = std::string(models::task_name(task)) +
                                  "/" + defense + "/" +
                                  fl::attack_kind_name(attack);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, attack,
                                        bench::default_zka_options(task),
                                        scale.runs, baselines);
            });
        report.add_metric(label, "acc", outcome.max_acc);
        report.add_metric(label, "asr", outcome.asr);
        table.add_row({models::task_name(task), defense,
                       fl::attack_kind_name(attack),
                       util::Table::fmt(outcome.acc_natk, 1),
                       util::Table::fmt(outcome.max_acc, 1),
                       util::Table::fmt(outcome.asr, 2),
                       util::Table::fmt(outcome.asr_stddev, 2)});
        std::printf("[table2] %s/%s/%s: acc %.1f%%  ASR %.2f%%\n",
                    models::task_name(task), defense,
                    fl::attack_kind_name(attack), outcome.max_acc,
                    outcome.asr);
        std::fflush(stdout);
      }
    }
  }
  table.print("\nTable II — acc and ASR under attack (Dirichlet beta=0.5)");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
