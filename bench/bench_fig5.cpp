// Reproduces Fig. 5: defense pass rate (DPR) of the five attacks on the
// two selection defenses (mKrum, Bulyan), both tasks, beta = 0.5. The
// random-weights strawman from Sec. IV-A is included as a sixth series to
// reproduce its quoted near-zero pass rate.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("fig5", args, scale);

  const fl::AttackKind attacks[] = {
      fl::AttackKind::kFang,   fl::AttackKind::kLie,
      fl::AttackKind::kMinMax, fl::AttackKind::kZkaR,
      fl::AttackKind::kZkaG,   fl::AttackKind::kRandomWeights};
  const char* defenses[] = {"mkrum", "bulyan"};

  util::Table table({"Dataset", "Defense", "Attack", "DPR (%)"});
  fl::BaselineCache baselines;

  for (const models::Task task : bench::tasks_from_cli(args)) {
    for (const char* defense : defenses) {
      for (const fl::AttackKind attack : attacks) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, defense);
        const std::string label = std::string(models::task_name(task)) +
                                  "/" + defense + "/" +
                                  fl::attack_kind_name(attack);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, attack,
                                        bench::default_zka_options(task),
                                        scale.runs, baselines);
            });
        report.add_metric(label, "dpr", outcome.dpr);
        table.add_row({models::task_name(task), defense,
                       fl::attack_kind_name(attack),
                       bench::fmt_or_na(outcome.dpr)});
        std::printf("[fig5] %s/%s/%s: DPR %.2f%%\n", models::task_name(task),
                    defense, fl::attack_kind_name(attack), outcome.dpr);
        std::fflush(stdout);
      }
    }
  }
  table.print("\nFig. 5 — defense pass rate (DPR), Dirichlet beta=0.5");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
