// DESIGN.md ablation bench (beyond the paper): how aggregation-rule
// parameters and the extension defenses change the ZKA outcome.
//
// Part 1 sweeps mKrum's selection size m and assumed Byzantine bound f.
// Part 2 pits the ZKA attacks against the extension defenses (FoolsGold,
// NormClip, GeoMedian, CenteredClip, FLTrust) the paper did not evaluate.
#include "bench_common.h"
#include "data/synthetic.h"
#include "defense/fltrust.h"
#include "defense/krum.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("ablation_defense", args, scale);
  const models::Task task = models::Task::kFashion;
  fl::BaselineCache baselines;
  const core::ZkaOptions zka = bench::default_zka_options(task);

  // ---- Part 1: mKrum parameter sweep -----------------------------------
  util::Table mkrum_table({"Attack", "f", "m", "ASR (%)", "DPR (%)"});
  for (const fl::AttackKind attack :
       {fl::AttackKind::kZkaR, fl::AttackKind::kZkaG}) {
    struct Param {
      std::size_t f;
      std::size_t m;
    };
    for (const Param p :
         {Param{1, 0}, Param{2, 0}, Param{3, 0},   // default m = n - f
          Param{2, 4}, Param{2, 6}, Param{2, 8}}) {
      fl::SimulationConfig config = bench::make_config(task, scale, "mkrum");
      config.defense_f = p.f;
      config.custom_defense = [p] {
        return std::make_unique<defense::MultiKrum>(p.f, p.m);
      };
      const std::string label = std::string("mkrum/f=") +
                                std::to_string(p.f) +
                                "/m=" + std::to_string(p.m) + "/" +
                                fl::attack_kind_name(attack);
      const fl::ExperimentOutcome outcome =
          bench::timed(report, label, [&] {
            return fl::run_experiment(config, attack, zka, scale.runs,
                                      baselines);
          });
      report.add_metric(label, "asr", outcome.asr);
      report.add_metric(label, "dpr", outcome.dpr);
      mkrum_table.add_row(
          {fl::attack_kind_name(attack), std::to_string(p.f),
           p.m == 0 ? "n-f" : std::to_string(p.m),
           util::Table::fmt(outcome.asr, 2), bench::fmt_or_na(outcome.dpr)});
      std::printf("[ablation] mkrum f=%zu m=%zu %s: ASR %.2f DPR %.2f\n",
                  p.f, p.m, fl::attack_kind_name(attack), outcome.asr,
                  outcome.dpr);
      std::fflush(stdout);
    }
  }
  mkrum_table.print("\nAblation — mKrum parameters vs ZKA (Fashion)");

  // ---- Part 2: extension defenses --------------------------------------
  util::Table ext_table({"Defense", "Attack", "acc (%)", "ASR (%)",
                         "DPR (%)"});
  for (const char* defense :
       {"foolsgold", "normclip", "geomedian", "centeredclip", "fltrust"}) {
    for (const fl::AttackKind attack :
         {fl::AttackKind::kZkaR, fl::AttackKind::kZkaG,
          fl::AttackKind::kMinMax}) {
      fl::SimulationConfig config = bench::make_config(task, scale, "median");
      if (std::string(defense) == "fltrust") {
        const std::uint64_t seed = config.seed;
        config.custom_defense = [task, seed] {
          // The server's clean root dataset (distinct seed from clients).
          return std::make_unique<defense::FlTrust>(
              data::make_synthetic_dataset(task, 64, seed ^ 0xf17057u),
              models::task_model_factory(task), defense::FlTrustOptions{},
              seed);
        };
      } else {
        config.defense = defense;
      }
      const std::string label =
          std::string(defense) + "/" + fl::attack_kind_name(attack);
      const fl::ExperimentOutcome outcome =
          bench::timed(report, label, [&] {
            return fl::run_experiment(config, attack, zka, scale.runs,
                                      baselines);
          });
      report.add_metric(label, "asr", outcome.asr);
      report.add_metric(label, "acc", outcome.max_acc);
      ext_table.add_row({defense, fl::attack_kind_name(attack),
                         util::Table::fmt(outcome.max_acc, 1),
                         util::Table::fmt(outcome.asr, 2),
                         bench::fmt_or_na(outcome.dpr)});
      std::printf("[ablation] %s vs %s: ASR %.2f\n", defense,
                  fl::attack_kind_name(attack), outcome.asr);
      std::fflush(stdout);
    }
  }
  ext_table.print(
      "\nAblation — extension defenses (not in the paper) vs ZKA/Min-Max");
  bench::maybe_write_csv(args, ext_table);
  bench::finish_report(report, args);
  return 0;
}
