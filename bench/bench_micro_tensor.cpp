// Micro-benchmarks of the tensor kernels, including the DESIGN.md ablation
// of im2col+GEMM convolution vs a naive 7-loop implementation.
#include <benchmark/benchmark.h>

#include "bench_micro_common.h"

#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

using namespace zka;
using tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm(n, n, n, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

void BM_GemmAtB(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm_at_b(n, n, n, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmAtB)->Arg(128)->Arg(256);

void BM_GemmABt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform({n, n}, rng, -1.0f, 1.0f);
  Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm_a_bt(n, n, n, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmABt)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  const tensor::ConvGeometry g{3, 32, 32, 3, 1, 1};
  util::Rng rng(2);
  const Tensor img = Tensor::uniform({3, 32, 32}, rng, -1.0f, 1.0f);
  std::vector<float> col(
      static_cast<std::size_t>(g.patch_size() * g.out_h() * g.out_w()));
  for (auto _ : state) {
    tensor::im2col(g, img.raw(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

// Naive direct convolution (the ablation baseline for im2col + GEMM).
void conv_naive(const Tensor& input, const Tensor& weight, Tensor& out,
                std::int64_t ic, std::int64_t oc, std::int64_t h,
                std::int64_t w, std::int64_t k) {
  const std::int64_t pad = (k - 1) / 2;
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (std::int64_t c = 0; c < ic; ++c) {
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = y - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = x - pad + kx;
              if (ix < 0 || ix >= w) continue;
              acc += input[(c * h + iy) * w + ix] *
                     weight[((o * ic + c) * k + ky) * k + kx];
            }
          }
        }
        out[(o * h + y) * w + x] = acc;
      }
    }
  }
}

void BM_ConvNaive(benchmark::State& state) {
  util::Rng rng(3);
  const Tensor input = Tensor::uniform({8, 16, 16}, rng, -1.0f, 1.0f);
  const Tensor weight = Tensor::uniform({16, 8, 3, 3}, rng, -0.1f, 0.1f);
  Tensor out({16, 16, 16});
  for (auto _ : state) {
    conv_naive(input, weight, out, 8, 16, 16, 16, 3);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_ConvNaive);

void BM_ConvIm2ColGemm(benchmark::State& state) {
  util::Rng rng(3);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor input = Tensor::uniform({1, 8, 16, 16}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = conv.forward(input);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_ConvIm2ColGemm);

// Batched forward: one [N, C, H, W] call per iteration. `range(0)` is the
// batch size; the acceptance target is batch 32.
void BM_ConvForwardBatched(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  util::Rng rng(3);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor input = Tensor::uniform({batch, 8, 16, 16}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = conv.forward(input);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvForwardBatched)->Arg(1)->Arg(8)->Arg(32);

void BM_ConvBackwardBatched(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  util::Rng rng(4);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor input = Tensor::uniform({batch, 8, 16, 16}, rng, -1.0f, 1.0f);
  const Tensor out = conv.forward(input);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(out);
    benchmark::DoNotOptimize(gx.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvBackwardBatched)->Arg(8)->Arg(32);

void BM_ConvTransposeForwardBatched(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  util::Rng rng(6);
  nn::ConvTranspose2d deconv(16, 8, 4, 2, 1, rng);
  const Tensor input = Tensor::uniform({batch, 16, 8, 8}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = deconv.forward(input);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvTransposeForwardBatched)->Arg(8)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(4);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor input = Tensor::uniform({4, 8, 16, 16}, rng, -1.0f, 1.0f);
  const Tensor out = conv.forward(input);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(out);
    benchmark::DoNotOptimize(gx.raw());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_TensorElementwiseAdd(benchmark::State& state) {
  util::Rng rng(5);
  Tensor a = Tensor::uniform({1 << 16}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform({1 << 16}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    a += b;
    benchmark::DoNotOptimize(a.raw());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16) * sizeof(float));
}
BENCHMARK(BM_TensorElementwiseAdd);

}  // namespace

ZKA_BENCH_MAIN("micro_tensor");
