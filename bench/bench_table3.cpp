// Reproduces Table III: ASR under the Bulyan defense as data heterogeneity
// varies (Dirichlet beta in {0.1, 0.5, 0.9}), both tasks.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("table3", args, scale);

  const fl::AttackKind attacks[] = {
      fl::AttackKind::kFang, fl::AttackKind::kLie, fl::AttackKind::kMinMax,
      fl::AttackKind::kZkaR, fl::AttackKind::kZkaG};
  const double betas[] = {0.1, 0.5, 0.9};

  util::Table table({"Dataset", "beta", "Attack", "acc_natk (%)", "ASR (%)"});
  fl::BaselineCache baselines;

  for (const models::Task task : bench::tasks_from_cli(args)) {
    for (const double beta : betas) {
      for (const fl::AttackKind attack : attacks) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, "bulyan", beta);
        const std::string label = std::string(models::task_name(task)) +
                                  "/beta=" + util::Table::fmt(beta, 1) + "/" +
                                  fl::attack_kind_name(attack);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, attack,
                                        bench::default_zka_options(task),
                                        scale.runs, baselines);
            });
        report.add_metric(label, "asr", outcome.asr);
        table.add_row({models::task_name(task), util::Table::fmt(beta, 1),
                       fl::attack_kind_name(attack),
                       util::Table::fmt(outcome.acc_natk, 1),
                       util::Table::fmt(outcome.asr, 2)});
        std::printf("[table3] %s/beta=%.1f/%s: ASR %.2f%%\n",
                    models::task_name(task), beta,
                    fl::attack_kind_name(attack), outcome.asr);
        std::fflush(stdout);
      }
    }
  }
  table.print(
      "\nTable III — ASR vs data heterogeneity (Bulyan defense)");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
