// Sketched robust aggregation at production cohort sizes: selection
// agreement of the JL-sketch + exact-recheck path against the exact
// rules, and wall-clock / server-memory numbers for the O(n)-memory
// streaming mKrum path at n = 10^4 (10^5 behind --full), d = 10^5.
//
// The streaming phase generates every update on the fly from its index
// (one reusable d-float buffer) and regenerates the replayed rows the
// same way — the bench process never holds an n x d matrix, mirroring
// the server contract the memory check below enforces.
//
// Extra flags on top of bench_common:
//   --n-agree N     agreement-sweep round size needing the exact rule
//                   in memory (default 2000)
//   --agree-dim N   update dimension for the agreement sweep (8192)
//   --n-stream N    streaming round size (default 10000; --full 100000)
//   --stream-dim N  streaming update dimension (default 100000)
//   --sketch-dim K  JL sketch dimension (default 256)
//   --band B        exact re-check band half-width (default 16)
//   --budget-mb N   server memory budget the streaming state must fit
//                   (default 256; --full 1024)
#include <sys/resource.h>

#include <memory>

#include "bench_common.h"
#include "defense/bulyan.h"
#include "defense/krum.h"
#include "defense/sketch.h"

namespace {

using zka::defense::Update;

// Cheap deterministic per-(seed, index, coordinate) filler — Box-Muller
// would dominate the streaming phase at n*d = 10^9 draws. SplitMix64
// per coordinate block, uniform in [-r, r]: the distance structure
// (tight core, 5x stragglers, identical near-center sybils) is all the
// selection rules look at.
void fill_update(std::uint64_t seed, std::size_t index, std::size_t n,
                 std::size_t sybils, std::size_t stragglers,
                 std::span<float> out) {
  if (index + sybils >= n) {  // identical sybils, slightly off-center
    std::fill(out.begin(), out.end(), 0.02f);
    return;
  }
  const float r = (index + sybils + stragglers >= n) ? 0.25f : 0.05f;
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  for (auto& x : out) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const float u = static_cast<float>(z >> 40) *
                    (1.0f / static_cast<float>(1ull << 24));
    x = (2.0f * u - 1.0f) * r;
  }
}

double agreement(const std::vector<std::size_t>& exact,
                 const std::vector<std::size_t>& sketched) {
  std::size_t overlap = 0;
  for (const std::size_t i : sketched) {
    overlap += std::binary_search(exact.begin(), exact.end(), i) ? 1 : 0;
  }
  return exact.empty() ? 1.0
                       : static_cast<double>(overlap) /
                             static_cast<double>(exact.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bool full = args.get_bool("full", false);
  bench::BenchJson report = bench::make_report("defense_sketch", args);

  const std::size_t n_agree =
      static_cast<std::size_t>(args.get_int64("n-agree", 2000));
  const std::size_t agree_dim =
      static_cast<std::size_t>(args.get_int64("agree-dim", 8192));
  const std::size_t n_stream = static_cast<std::size_t>(
      args.get_int64("n-stream", full ? 100000 : 10000));
  const std::size_t stream_dim =
      static_cast<std::size_t>(args.get_int64("stream-dim", 100000));
  const std::size_t sketch_dim =
      static_cast<std::size_t>(args.get_int64("sketch-dim", 256));
  const std::size_t band =
      static_cast<std::size_t>(args.get_int64("band", 16));
  const std::size_t budget_bytes =
      static_cast<std::size_t>(args.get_int64("budget-mb", full ? 1024 : 256))
      << 20;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int64("seed", 1));
  report.set_config("n_agree", static_cast<std::int64_t>(n_agree));
  report.set_config("agree_dim", static_cast<std::int64_t>(agree_dim));
  report.set_config("n_stream", static_cast<std::int64_t>(n_stream));
  report.set_config("stream_dim", static_cast<std::int64_t>(stream_dim));
  report.set_config("sketch_dim", static_cast<std::int64_t>(sketch_dim));
  report.set_config("recheck_band", static_cast<std::int64_t>(band));
  report.set_config("budget_bytes", static_cast<std::int64_t>(budget_bytes));

  util::Table table({"Phase", "n", "d", "Rule", "agree (%)", "wall (ms)",
                     "server (MiB)"});

  // ── Agreement sweep: sketched vs exact selection, rules in memory ────
  for (const std::size_t n : {std::size_t{512}, n_agree}) {
    const std::size_t f = std::max<std::size_t>(2, n / 100);
    std::vector<Update> updates(n, Update(agree_dim));
    for (std::size_t i = 0; i < n; ++i) {
      fill_update(seed, i, n, f, f, updates[i]);
    }
    const defense::SketchOptions sketch{.sketch_dim = sketch_dim,
                                        .recheck_band = band};

    const defense::MultiKrum exact_rule(f), sketched_rule(f, 0, false, sketch);
    const auto exact =
        bench::timed(report, "agree/n" + std::to_string(n) + "/exact",
                     [&] { return exact_rule.select(updates); });
    const auto approx =
        bench::timed(report, "agree/n" + std::to_string(n) + "/sketched",
                     [&] { return sketched_rule.select(updates); });
    const double agree = agreement(exact, approx);
    report.add_metric("agree/n" + std::to_string(n), "agreement", agree);
    ZKA_CHECK(agree >= 0.95,
              "sketched mKrum agreement %.3f < 0.95 at n=%zu", agree, n);
    table.add_row({"agree", std::to_string(n), std::to_string(agree_dim),
                   "mkrum", util::Table::fmt(agree * 100.0, 1), "-", "-"});
    std::printf("[sketch] agree n=%zu: %.1f%% overlap with exact mKrum\n", n,
                agree * 100.0);
    std::fflush(stdout);

    // Bulyan rides the iterative variant, whose successive-exclusion
    // pick loop is O(m·n²·log n) with or without the sketch — too slow
    // for the larger sweep size, so it reports at n = 512 only.
    if (n == 512) {
      defense::Bulyan exact_bulyan(f), sketched_bulyan(f, sketch);
      const std::vector<std::int64_t> weights(n, 1);
      const auto views = defense::as_views(updates);
      const auto eb = bench::timed(
          report, "bulyan/n" + std::to_string(n) + "/exact",
          [&] { return exact_bulyan.aggregate(views, weights).selected; });
      const auto sb = bench::timed(
          report, "bulyan/n" + std::to_string(n) + "/sketched",
          [&] { return sketched_bulyan.aggregate(views, weights).selected; });
      const double bulyan_agree = agreement(eb, sb);
      report.add_metric("bulyan/n" + std::to_string(n), "agreement",
                        bulyan_agree);
      table.add_row({"agree", std::to_string(n), std::to_string(agree_dim),
                     "bulyan", util::Table::fmt(bulyan_agree * 100.0, 1), "-",
                     "-"});
    }
  }

  // ── Streaming scale: one update live at a time, O(n·k) server state ──
  {
    const std::size_t n = n_stream, d = stream_dim;
    const std::size_t f = std::max<std::size_t>(2, n / 200);
    const defense::SketchOptions sketch{.sketch_dim = sketch_dim,
                                        .recheck_band = band};
    defense::MultiKrum rule(f, 0, false, sketch);
    const std::vector<std::int64_t> weights(n, 1);
    Update row(d);
    std::size_t replay_rows = 0;

    const std::uint64_t start = util::prof::now_ns();
    rule.begin_stream(d, weights);
    for (std::size_t i = 0; i < n; ++i) {
      fill_update(seed, i, n, f, f, row);
      rule.stream_update(row);
    }
    const auto request = rule.stream_replay_request();
    replay_rows = request.size();
    for (const std::size_t i :
         std::vector<std::size_t>(request.begin(), request.end())) {
      fill_update(seed, i, n, f, f, row);
      rule.stream_replay(i, row);
    }
    const auto result = rule.finish_stream();
    const double wall_ms =
        static_cast<double>(util::prof::now_ns() - start) / 1e6;

    // Server-resident streaming state: n·k sketch floats, the d-double
    // running sum, and the replayed rows — vs the n·d matrix the exact
    // rule would need.
    const std::size_t server_bytes = n * sketch_dim * sizeof(float) +
                                     d * sizeof(double) +
                                     replay_rows * d * sizeof(float);
    const std::size_t exact_bytes = n * d * sizeof(float);
    ZKA_CHECK(server_bytes <= budget_bytes,
              "streaming state %zu bytes exceeds the %zu-byte budget",
              server_bytes, budget_bytes);
    ZKA_CHECK(result.selected.size() == n - f, "unexpected selection size");
    report.add_sample("stream/mkrum", wall_ms * 1e6);
    report.add_metric("stream/mkrum", "server_bytes",
                      static_cast<double>(server_bytes));
    report.add_metric("stream/mkrum", "exact_bytes",
                      static_cast<double>(exact_bytes));
    report.add_metric("stream/mkrum", "replay_rows",
                      static_cast<double>(replay_rows));
    table.add_row({"stream", std::to_string(n), std::to_string(d), "mkrum",
                   "-", util::Table::fmt(wall_ms, 0),
                   util::Table::fmt(
                       static_cast<double>(server_bytes) / (1 << 20), 1)});
    std::printf(
        "[sketch] stream n=%zu d=%zu: %.0f ms, %.1f MiB server state "
        "(exact rule: %.1f MiB), %zu replayed rows\n",
        n, d, wall_ms, static_cast<double>(server_bytes) / (1 << 20),
        static_cast<double>(exact_bytes) / (1 << 20), replay_rows);
  }

  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  report.set_config("peak_rss_bytes",
                    static_cast<std::int64_t>(usage.ru_maxrss) * 1024);

  table.print("\nSketched robust aggregation — agreement and O(n) streaming");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
