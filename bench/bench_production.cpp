// Production cross-device sweep: ASR/DPR at sub-1% attacker fractions as
// the population grows 10^3 -> 10^6 (Shejwalkar et al.'s deployment
// regime), exercising the lazy client registry, O(k) Floyd sampling, and
// streaming update ingestion under a server memory budget.
//
// Extra flags on top of bench_common:
//   --population-max N   largest population in the sweep (default 1000000)
//   --cpr N              clients sampled per round (default 200)
//   --budget-mb N        server update-memory budget for the streaming
//                        (FedAvg) runs, in MiB (default 2)
//
// Per-label metrics: acc, asr, dpr, peak_update_bytes. The bench fails
// (contract violation) if a streaming run's peak live update bytes ever
// exceed the configured budget — that bound is the point of the engine.
#include <sys/resource.h>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  bench::BenchScale scale = bench::scale_from_cli(args);
  scale.rounds_fashion = args.get_int64("rounds", 3);
  bench::BenchJson report = bench::make_report("production", args, scale);

  const std::int64_t population_max =
      args.get_int64("population-max", 1000000);
  const std::int64_t cpr = args.get_int64("cpr", 200);
  const std::size_t budget_bytes =
      static_cast<std::size_t>(args.get_int64("budget-mb", 2)) * (1u << 20);
  report.set_config("population_max", population_max);
  report.set_config("clients_per_round", cpr);
  report.set_config("budget_bytes",
                    static_cast<std::int64_t>(budget_bytes));

  const models::Task task = models::Task::kFashion;
  const double fractions[] = {0.001, 0.005, 0.01};  // 0.1% .. 1% sybils
  // mkrum-sketch = mkrum with a JL sketch (defense/sketch.h): the
  // one-shot ranking streams, so it runs under the same memory budget
  // as FedAvg — the exact mkrum rows keep the unbounded buffered path.
  const char* defenses[] = {"fedavg", "mkrum", "mkrum-sketch"};

  util::Table table({"Population", "Defense", "frac (%)", "acc (%)",
                     "ASR (%)", "DPR (%)", "peak upd (KiB)"});
  fl::BaselineCache baselines;

  for (std::int64_t population = 1000; population <= population_max;
       population *= 10) {
    for (const char* defense : defenses) {
      for (const double fraction : fractions) {
        const bool sketched = std::string(defense) == "mkrum-sketch";
        fl::SimulationConfig config = bench::make_config(
            task, scale, sketched ? "mkrum" : defense);
        config.population = population;
        config.clients_per_round = std::min(cpr, population);
        config.samples_per_client = 32;
        config.malicious_fraction = fraction;
        // Sub-1% of a small population floors to zero attackers; report
        // that point as a clean baseline instead of skipping or crashing.
        config.malicious_rounding = fl::MaliciousRounding::kFloor;
        // Exact mKrum needs the round's full update matrix (pairwise
        // distances), so the budget constrains the streaming-capable runs
        // only: FedAvg, and mkrum through the sketched selection path.
        config.sketch_dim = sketched ? 256 : 0;
        const bool streams = sketched || std::string(defense) == "fedavg";
        config.memory_budget_bytes = streams ? budget_bytes : 0;
        config.eval_every = config.rounds;  // evaluate the final round only

        char label[96];
        std::snprintf(label, sizeof label, "pop%lld/%s/f%.3f",
                      static_cast<long long>(population), defense, fraction);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, fl::AttackKind::kZkaR,
                                        bench::default_zka_options(task),
                                        scale.runs, baselines);
            });
        ZKA_CHECK(!streams || outcome.peak_update_bytes <= budget_bytes,
                  "%s: streaming run held %zu live update bytes, over the "
                  "%zu-byte budget",
                  label, outcome.peak_update_bytes, budget_bytes);
        report.add_metric(label, "acc", outcome.max_acc);
        report.add_metric(label, "asr", outcome.asr);
        report.add_metric(label, "dpr", outcome.dpr);
        report.add_metric(label, "peak_update_bytes",
                          static_cast<double>(outcome.peak_update_bytes));
        table.add_row({std::to_string(population), defense,
                       util::Table::fmt(fraction * 100.0, 1),
                       util::Table::fmt(outcome.max_acc, 1),
                       util::Table::fmt(outcome.asr, 2),
                       bench::fmt_or_na(outcome.dpr),
                       util::Table::fmt(
                           static_cast<double>(outcome.peak_update_bytes) /
                               1024.0,
                           1)});
        std::printf("[production] %s: acc %.1f%%  ASR %.2f%%  peak %.1f KiB\n",
                    label, outcome.max_acc, outcome.asr,
                    static_cast<double>(outcome.peak_update_bytes) / 1024.0);
        std::fflush(stdout);
      }
    }
  }

  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  report.set_config("peak_rss_bytes",
                    static_cast<std::int64_t>(usage.ru_maxrss) * 1024);
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(usage.ru_maxrss) / 1024.0);

  table.print("\nProduction sweep — cross-device scale, sub-1% sybils");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
