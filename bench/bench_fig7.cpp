// Reproduces Fig. 7: ASR of the ZKA attacks with synthetic data vs the
// same pipeline fed REAL attacker-owned data (Real-data comparator), all
// four defenses, both tasks. The paper's claim: purpose-built synthetic
// data beats real data.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  const bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("fig7", args, scale);

  const fl::AttackKind attacks[] = {fl::AttackKind::kRealData,
                                    fl::AttackKind::kZkaR,
                                    fl::AttackKind::kZkaG};
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};

  util::Table table({"Dataset", "Defense", "Attack", "ASR (%)"});
  fl::BaselineCache baselines;

  for (const models::Task task : bench::tasks_from_cli(args)) {
    for (const char* defense : defenses) {
      for (const fl::AttackKind attack : attacks) {
        const fl::SimulationConfig config =
            bench::make_config(task, scale, defense);
        const std::string label = std::string(models::task_name(task)) +
                                  "/" + defense + "/" +
                                  fl::attack_kind_name(attack);
        const fl::ExperimentOutcome outcome =
            bench::timed(report, label, [&] {
              return fl::run_experiment(config, attack,
                                        bench::default_zka_options(task),
                                        scale.runs, baselines);
            });
        report.add_metric(label, "asr", outcome.asr);
        table.add_row({models::task_name(task), defense,
                       fl::attack_kind_name(attack),
                       util::Table::fmt(outcome.asr, 2)});
        std::printf("[fig7] %s/%s/%s: ASR %.2f%%\n", models::task_name(task),
                    defense, fl::attack_kind_name(attack), outcome.asr);
        std::fflush(stdout);
      }
    }
  }
  table.print(
      "\nFig. 7 — real data + decoy label + L_d vs ZKA synthetic data");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
