// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --full            paper-scale run (100 clients, 3 repetitions, long
//                     training) instead of the quick single-core default
//   --runs N          repetitions (paper: 3)
//   --rounds N        FL rounds per run
//   --train-size N    training-set size
//   --seed S          base seed
//   --task fashion|cifar|all
//   --csv PATH        also write the table as CSV
//   --prof            enable the util/prof runtime profiler for this run
//   --trace PATH      write a Chrome trace-event JSON (load in Perfetto)
//   --out DIR         directory for BENCH_<name>.json (default: results)
//
// The quick defaults are sized so the whole bench suite regenerates every
// table and figure in tens of minutes on one CPU core; shapes (who wins,
// rough factors, crossovers) are what is being reproduced, not absolute
// GPU-scale numbers — see EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "core/zka_options.h"
#include "fl/experiment.h"
#include "util/cli.h"
#include "util/prof.h"
#include "util/table.h"

namespace zka::bench {

struct BenchScale {
  int runs = 1;
  std::int64_t num_clients = 50;
  std::int64_t clients_per_round = 10;
  std::int64_t rounds_fashion = 10;
  std::int64_t rounds_cifar = 20;
  std::int64_t train_fashion = 800;
  std::int64_t train_cifar = 1000;
  std::int64_t test_fashion = 300;
  std::int64_t test_cifar = 250;
  std::int64_t eval_every_cifar = 2;
  std::uint64_t seed = 1;
};

inline BenchScale scale_from_cli(const util::CliArgs& args) {
  BenchScale s;
  if (args.get_bool("full", false)) {
    // Paper scale (Sec. V-A): 100 clients, 10 sampled, 10% of the datasets,
    // 3 repetitions.
    s.runs = 3;
    s.num_clients = 100;
    s.rounds_fashion = 60;
    s.rounds_cifar = 60;
    s.train_fashion = 6000;
    s.train_cifar = 5000;
    s.test_fashion = 1000;
    s.test_cifar = 1000;
    s.eval_every_cifar = 1;
  }
  s.runs = args.get_int("runs", s.runs);
  s.seed = static_cast<std::uint64_t>(args.get_int64("seed", 1));
  const std::int64_t rounds = args.get_int64("rounds", 0);
  if (rounds > 0) {
    s.rounds_fashion = rounds;
    s.rounds_cifar = rounds;
  }
  const std::int64_t train = args.get_int64("train-size", 0);
  if (train > 0) {
    s.train_fashion = train;
    s.train_cifar = train;
  }
  return s;
}

inline fl::SimulationConfig make_config(models::Task task,
                                        const BenchScale& scale,
                                        const std::string& defense,
                                        double beta = 0.5) {
  fl::SimulationConfig config;
  config.task = task;
  config.num_clients = scale.num_clients;
  config.clients_per_round = scale.clients_per_round;
  config.malicious_fraction = 0.2;  // paper: adversary controls 20%
  config.beta = beta;
  config.defense = defense;
  config.defense_f = 2;  // 20% of K = 10
  config.seed = scale.seed;
  if (task == models::Task::kFashion) {
    config.rounds = scale.rounds_fashion;
    config.train_size = scale.train_fashion;
    config.test_size = scale.test_fashion;
  } else {
    config.rounds = scale.rounds_cifar;
    config.train_size = scale.train_cifar;
    config.test_size = scale.test_cifar;
    config.eval_every = scale.eval_every_cifar;
  }
  return config;
}

inline core::ZkaOptions default_zka_options(models::Task task) {
  core::ZkaOptions zka;
  zka.synthetic_size = task == models::Task::kFashion ? 24 : 16;
  zka.synthesis_epochs = 4;
  zka.synthesis_lr = 0.05f;
  zka.latent_dim = 64;
  // classifier (step-2) options keep the tuned library defaults:
  // epochs 5, lr 0.01, lambda 8 (see core/adversarial_trainer.h).
  return zka;
}

inline std::vector<models::Task> tasks_from_cli(const util::CliArgs& args) {
  const std::string task = args.get_string("task", "all");
  if (task == "fashion") return {models::Task::kFashion};
  if (task == "cifar") return {models::Task::kCifar};
  return {models::Task::kFashion, models::Task::kCifar};
}

inline std::string fmt_or_na(double value, int precision = 2) {
  return std::isnan(value) ? "NA" : util::Table::fmt(value, precision);
}

inline void maybe_write_csv(const util::CliArgs& args,
                            const util::Table& table) {
  const std::string path = args.get_string("csv", "");
  if (!path.empty()) {
    table.write_csv(path);
    std::printf("wrote %s\n", path.c_str());
  }
}

/// Creates the bench's machine-readable report and applies the shared
/// observability CLI (`--prof` flips the runtime profiler on before any
/// timed work). The scale knobs are recorded so bench_diff.py can refuse
/// to compare runs with different configurations.
inline BenchJson make_report(const std::string& name,
                             const util::CliArgs& args,
                             const BenchScale& scale) {
  if (args.get_bool("prof", false)) util::prof::set_enabled(true);
  BenchJson report(name);
  report.set_config("full", std::string(args.get_bool("full", false)
                                            ? "true" : "false"));
  report.set_config("runs", static_cast<std::int64_t>(scale.runs));
  report.set_config("num_clients", scale.num_clients);
  report.set_config("rounds_fashion", scale.rounds_fashion);
  report.set_config("rounds_cifar", scale.rounds_cifar);
  report.set_config("train_fashion", scale.train_fashion);
  report.set_config("train_cifar", scale.train_cifar);
  report.set_config("seed", static_cast<std::int64_t>(scale.seed));
  return report;
}

/// Variant for benches that do not use BenchScale (e.g. fig4).
inline BenchJson make_report(const std::string& name,
                             const util::CliArgs& args) {
  if (args.get_bool("prof", false)) util::prof::set_enabled(true);
  return BenchJson(name);
}

/// Runs `fn`, records its wall time (ns) as one sample of `label`, and
/// forwards the result.
template <typename Fn>
decltype(auto) timed(BenchJson& report, const std::string& label, Fn&& fn) {
  const std::uint64_t start = util::prof::now_ns();
  if constexpr (std::is_void_v<std::invoke_result_t<Fn&&>>) {
    std::forward<Fn>(fn)();
    report.add_sample(label,
                      static_cast<double>(util::prof::now_ns() - start));
  } else {
    decltype(auto) result = std::forward<Fn>(fn)();
    report.add_sample(label,
                      static_cast<double>(util::prof::now_ns() - start));
    return result;
  }
}

/// Writes BENCH_<name>.json into `--out` (default results/) and, when
/// `--trace PATH` was given, a Chrome trace-event file of the whole run.
inline void finish_report(const BenchJson& report,
                          const util::CliArgs& args) {
  const std::string path = report.write(args.get_string("out", "results"));
  std::printf("wrote %s\n", path.c_str());
  const std::string trace = args.get_string("trace", "");
  if (!trace.empty()) {
    util::prof::write_chrome_trace(trace);
    std::printf("wrote %s (load in https://ui.perfetto.dev)\n",
                trace.c_str());
  }
}

}  // namespace zka::bench
