// Micro-benchmarks backing the paper's Sec. IV-E complexity analysis:
// the per-round cost of crafting a ZKA-R / ZKA-G update vs a benign
// client's local training, plus the |S| sensitivity ablation from
// DESIGN.md.
#include <benchmark/benchmark.h>

#include "bench_micro_common.h"

#include "core/zka_g.h"
#include "core/zka_r.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/module.h"
#include "util/rng.h"

namespace {

using namespace zka;

attack::AttackContext make_context(const std::vector<float>& global) {
  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;
  return ctx;
}

core::ZkaOptions options_with_size(std::int64_t s) {
  core::ZkaOptions zka;
  zka.synthetic_size = s;
  zka.synthesis_epochs = 4;
  return zka;
}

void BM_BenignClientRound(benchmark::State& state) {
  const std::int64_t samples = state.range(0);
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, samples, 7);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(samples));
  for (std::int64_t i = 0; i < samples; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  fl::Client client(0, dataset, idx, factory, {});
  const std::vector<float> global = nn::get_flat_params(*factory(1));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto update = client.train(global, ++seed);
    benchmark::DoNotOptimize(update.data());
  }
}
BENCHMARK(BM_BenignClientRound)->Arg(16)->Arg(32)->Arg(64);

void BM_ZkaRCraft(benchmark::State& state) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(1));
  core::ZkaRAttack attack(models::Task::kFashion,
                          options_with_size(state.range(0)), 3);
  const auto ctx = make_context(global);
  for (auto _ : state) {
    auto update = attack.craft(ctx);
    benchmark::DoNotOptimize(update.data());
  }
}
BENCHMARK(BM_ZkaRCraft)->Arg(16)->Arg(32)->Arg(64);

void BM_ZkaGCraft(benchmark::State& state) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(1));
  core::ZkaGAttack attack(models::Task::kFashion,
                          options_with_size(state.range(0)), 3);
  const auto ctx = make_context(global);
  for (auto _ : state) {
    auto update = attack.craft(ctx);
    benchmark::DoNotOptimize(update.data());
  }
}
BENCHMARK(BM_ZkaGCraft)->Arg(16)->Arg(32)->Arg(64);

void BM_ZkaRFilterKernelSweep(benchmark::State& state) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(1));
  core::ZkaOptions zka = options_with_size(16);
  zka.filter_kernel = state.range(0);
  core::ZkaRAttack attack(models::Task::kFashion, zka, 3);
  const auto ctx = make_context(global);
  for (auto _ : state) {
    auto update = attack.craft(ctx);
    benchmark::DoNotOptimize(update.data());
  }
}
BENCHMARK(BM_ZkaRFilterKernelSweep)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

ZKA_BENCH_MAIN("micro_attack");
