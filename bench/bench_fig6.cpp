// Reproduces Fig. 6: the local synthesis training process converges to a
// (local) optimum within a few epochs — ZKA-R minimizes its ambiguity
// loss, ZKA-G maximizes its decoy cross-entropy. We capture the per-epoch
// loss during an FL run against each of the four defenses on Fashion and
// print the loss series of representative rounds.
#include "bench_common.h"
#include "core/zka_g.h"
#include "core/zka_r.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);
  bench::BenchScale scale = bench::scale_from_cli(args);
  bench::BenchJson report = bench::make_report("fig6", args, scale);
  const std::int64_t epochs = args.get_int64("epochs", 10);
  const char* defenses[] = {"mkrum", "trmean", "bulyan", "median"};

  util::Table table({"Attack", "Defense", "Round", "Epoch", "Loss"});

  for (const bool use_generator : {false, true}) {
    for (const char* defense : defenses) {
      fl::SimulationConfig config =
          bench::make_config(models::Task::kFashion, scale, defense);
      config.rounds = std::min<std::int64_t>(config.rounds, 6);
      config.eval_every = 0;  // only the loss curves matter here

      core::ZkaOptions zka =
          bench::default_zka_options(models::Task::kFashion);
      zka.synthesis_epochs = epochs;

      fl::Simulation sim(config);
      std::unique_ptr<attack::Attack> attack;
      core::ZkaRAttack* as_r = nullptr;
      core::ZkaGAttack* as_g = nullptr;
      if (use_generator) {
        auto g = std::make_unique<core::ZkaGAttack>(models::Task::kFashion,
                                                    zka, scale.seed);
        as_g = g.get();
        attack = std::move(g);
      } else {
        auto r = std::make_unique<core::ZkaRAttack>(models::Task::kFashion,
                                                    zka, scale.seed);
        as_r = r.get();
        attack = std::move(r);
      }

      sim.set_round_callback([&](const fl::RoundRecord& record) {
        if (record.malicious_selected == 0) return;
        const auto& losses = use_generator ? as_g->synthesis_loss_history()
                                           : as_r->synthesis_loss_history();
        for (std::size_t e = 0; e < losses.size(); ++e) {
          table.add_row({use_generator ? "ZKA-G" : "ZKA-R", defense,
                         std::to_string(record.round),
                         std::to_string(e + 1),
                         util::Table::fmt(losses[e], 4)});
        }
      });
      const std::string label =
          std::string(use_generator ? "ZKA-G" : "ZKA-R") + "/" + defense;
      bench::timed(report, label, [&] { sim.run(attack.get()); });
      std::printf("[fig6] %s vs %s: captured loss curves\n",
                  use_generator ? "ZKA-G" : "ZKA-R", defense);
      std::fflush(stdout);
    }
  }
  table.print(
      "\nFig. 6 — per-epoch synthesis loss during FL rounds (Fashion). "
      "ZKA-R's loss decreases (minimized), ZKA-G's increases (maximized); "
      "both flatten within a few epochs.");
  bench::maybe_write_csv(args, table);
  bench::finish_report(report, args);
  return 0;
}
