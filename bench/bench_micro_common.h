// Shared plumbing for the google-benchmark micro benches.
//
// ZKA_BENCH_MAIN(name) replaces BENCHMARK_MAIN(): it runs the registered
// benchmarks through a tee reporter that keeps the normal console output
// while collecting every measurement into a BenchJson, then writes
// results/BENCH_<name>.json (override the directory with ZKA_BENCH_OUT).
// Runtime profiling is controlled by the ZKA_PROF environment variable as
// everywhere else; the captured counters land in the report's "prof" block.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.h"

namespace zka::bench {

/// Console reporter that also funnels per-iteration timings (ns/op) into a
/// BenchJson, one entry per benchmark case, one sample per repetition.
class TeeReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit TeeReporter(BenchJson& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          static_cast<double>(std::max<std::int64_t>(run.iterations, 1));
      report_.add_sample(run.benchmark_name(),
                         run.real_accumulated_time / iters * 1e9);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJson& report_;
};

inline int run_micro_bench(const char* name, int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJson report(name);
  TeeReporter reporter(report);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  const char* dir = std::getenv("ZKA_BENCH_OUT");
  std::printf("wrote %s\n", report.write(dir ? dir : "results").c_str());
  return 0;
}

}  // namespace zka::bench

#define ZKA_BENCH_MAIN(name)                                \
  int main(int argc, char** argv) {                         \
    return ::zka::bench::run_micro_bench(name, argc, argv); \
  }
