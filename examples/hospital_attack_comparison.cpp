// Scenario from the paper's introduction: a federation training a
// special-purpose classifier (think rare-disease imaging) where an
// attacker cannot obtain task data and cannot eavesdrop on encrypted
// client-server channels. This example compares what each attack family
// can still do under a defense of your choice:
//
//   - omniscient baselines (LIE, Fang, Min-Max) that unrealistically see
//     benign updates,
//   - the data-free zero-knowledge attacks (ZKA-R, ZKA-G),
//   - the random-weights strawman.
//
//   ./hospital_attack_comparison [--defense mkrum|trmean|bulyan|median]
//                                [--task fashion|cifar] [--rounds N]
#include <cstdio>

#include "fl/experiment.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);

  fl::SimulationConfig config;
  config.task = args.get_string("task", "fashion") == "cifar"
                    ? models::Task::kCifar
                    : models::Task::kFashion;
  config.num_clients = args.get_int64("clients", 50);
  config.clients_per_round = 10;
  config.malicious_fraction = 0.2;
  config.rounds = args.get_int64("rounds", 12);
  config.train_size = args.get_int64("train-size", 1000);
  config.test_size = 300;
  config.defense = args.get_string("defense", "mkrum");
  config.seed = static_cast<std::uint64_t>(args.get_int64("seed", 3));

  core::ZkaOptions zka;
  zka.synthetic_size = 24;
  zka.synthesis_epochs = 4;

  std::printf(
      "Federation: %lld clients, %lld sampled/round, 20%% malicious, "
      "defense %s, task %s\n\n",
      static_cast<long long>(config.num_clients),
      static_cast<long long>(config.clients_per_round),
      config.defense.c_str(), models::task_name(config.task));

  fl::BaselineCache baselines;
  const double natk = baselines.attack_free_accuracy(config);
  std::printf("attack-free reference accuracy: %.1f%%\n\n", natk * 100.0);

  util::Table table({"Attack", "needs benign updates?", "needs data?",
                     "max acc (%)", "ASR (%)", "DPR (%)"});
  struct Row {
    fl::AttackKind kind;
    const char* needs_updates;
    const char* needs_data;
  };
  const Row rows[] = {
      {fl::AttackKind::kLie, "yes", "no"},
      {fl::AttackKind::kFang, "yes", "no"},
      {fl::AttackKind::kMinMax, "yes", "no"},
      {fl::AttackKind::kRandomWeights, "no", "no"},
      {fl::AttackKind::kZkaR, "no", "no"},
      {fl::AttackKind::kZkaG, "no", "no"},
  };
  for (const Row& row : rows) {
    const fl::ExperimentOutcome outcome =
        fl::run_experiment(config, row.kind, zka, 1, baselines);
    table.add_row(
        {fl::attack_kind_name(row.kind), row.needs_updates, row.needs_data,
         util::Table::fmt(outcome.max_acc, 1),
         util::Table::fmt(outcome.asr, 1),
         std::isnan(outcome.dpr) ? "NA" : util::Table::fmt(outcome.dpr, 1)});
    std::printf("ran %s\n", fl::attack_kind_name(row.kind));
    std::fflush(stdout);
  }
  table.print("\nAttack comparison (zero-knowledge rows need nothing but "
              "the broadcast global model):");
  return 0;
}
