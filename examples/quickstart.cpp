// Quickstart: run a small federated learning simulation, first attack-free,
// then under the zero-knowledge ZKA-G attack with the mKrum defense, and
// print the paper's two metrics (ASR, DPR).
//
//   ./quickstart [--task fashion|cifar] [--rounds N] [--clients N]
#include <cstdio>

#include "fl/experiment.h"
#include "fl/metrics.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);

  fl::SimulationConfig config;
  config.task = args.get_string("task", "fashion") == "cifar"
                    ? models::Task::kCifar
                    : models::Task::kFashion;
  config.rounds = args.get_int64("rounds", 15);
  config.num_clients = args.get_int64("clients", 50);
  config.clients_per_round = 10;
  config.train_size = args.get_int64("train-size", 1500);
  config.test_size = 400;
  config.defense = args.get_string("defense", "mkrum");
  config.seed = static_cast<std::uint64_t>(args.get_int64("seed", 7));

  std::printf("== Attack-free FedAvg baseline (%s) ==\n",
              models::task_name(config.task));
  fl::SimulationConfig natk = config;
  natk.defense = "fedavg";
  natk.malicious_fraction = 0.0;
  fl::Simulation baseline(natk);
  baseline.set_round_callback([](const fl::RoundRecord& r) {
    std::printf("  round %2lld  accuracy %.3f\n",
                static_cast<long long>(r.round), r.accuracy);
  });
  const auto natk_result = baseline.run(nullptr);
  std::printf("attack-free max accuracy: %.1f%%\n\n",
              natk_result.max_accuracy * 100.0);

  std::printf("== ZKA-G attack vs %s defense ==\n", config.defense.c_str());
  fl::Simulation sim(config);
  core::ZkaOptions zka;
  zka.synthetic_size = 24;
  zka.synthesis_epochs = 4;
  const auto attack =
      fl::make_attack(fl::AttackKind::kZkaG, sim, zka, config.seed);
  sim.set_round_callback([](const fl::RoundRecord& r) {
    std::printf("  round %2lld  accuracy %.3f  malicious passed %lld/%lld\n",
                static_cast<long long>(r.round), r.accuracy,
                static_cast<long long>(r.malicious_passed),
                static_cast<long long>(r.malicious_selected));
  });
  const auto attacked = sim.run(attack.get());

  const double asr = fl::attack_success_rate(natk_result.max_accuracy,
                                             attacked.max_accuracy);
  std::printf("\nmax accuracy under attack: %.1f%%\n",
              attacked.max_accuracy * 100.0);
  std::printf("attack success rate (ASR): %.1f%%\n", asr);
  if (attacked.defense_selects) {
    std::printf("defense pass rate   (DPR): %.1f%%\n", attacked.dpr());
  }
  return 0;
}
