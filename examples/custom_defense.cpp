// Extending the library: implement your own robust aggregation rule
// against the public defense::Aggregator interface and evaluate it against
// the zero-knowledge attacks, side by side with the built-in defenses.
//
// The example defense ("GeoTrim") clips every update to the median
// deviation ball (like NormClipping) and then takes a coordinate-wise
// trimmed mean — a cheap hybrid of the two statistic defenses.
//
//   ./custom_defense [--attack zka-g] [--rounds N]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "data/partition.h"
#include "defense/statistic.h"
#include "tensor/reduce.h"
#include "fl/metrics.h"
#include "fl/experiment.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace zka;

class GeoTrim : public defense::Aggregator {
 public:
  explicit GeoTrim(std::size_t trim) : trim_(trim) {}

  defense::AggregationResult do_aggregate(
      std::span<const defense::UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    defense::validate_updates(updates, weights);
    const std::size_t n = updates.size();
    const std::size_t dim = updates.front().size();

    // Center on the coordinate-wise median.
    defense::Median median_rule;
    const defense::Update center =
        median_rule.aggregate(updates, weights).model;

    // Clip each update to the median deviation norm.
    std::vector<double> norms(n);
    for (std::size_t k = 0; k < n; ++k) {
      norms[k] = std::sqrt(tensor::squared_distance(updates[k], center));
    }
    const double radius = util::median(std::vector<double>(norms));
    std::vector<defense::Update> clipped;
    clipped.reserve(n);
    for (const defense::UpdateView u : updates) {
      clipped.emplace_back(u.begin(), u.end());
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (norms[k] <= radius || norms[k] == 0.0) continue;
      const double scale = radius / norms[k];
      for (std::size_t i = 0; i < dim; ++i) {
        clipped[k][i] = center[i] +
                        static_cast<float>(scale * (updates[k][i] -
                                                    center[i]));
      }
    }
    // Then trimmed-mean the clipped updates.
    defense::TrimmedMean trimmed(trim_);
    return trimmed.aggregate(defense::as_views(clipped), weights);
  }

  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "GeoTrim"; }

 private:
  std::size_t trim_;
};

// Runs one FL simulation with an externally supplied aggregator by
// replaying the library pieces the Simulation class wires together. This
// demonstrates that the building blocks (clients, attacks, metrics) are
// usable outside the canned Simulation when you need a custom server.
double run_with_aggregator(defense::Aggregator& aggregator,
                           fl::AttackKind kind, std::int64_t rounds,
                           std::uint64_t seed, double* out_natk) {
  fl::SimulationConfig config;
  config.num_clients = 40;
  config.clients_per_round = 10;
  config.malicious_fraction = 0.2;
  config.rounds = rounds;
  config.train_size = 800;
  config.test_size = 250;
  config.seed = seed;

  fl::BaselineCache baselines;
  *out_natk = baselines.attack_free_accuracy(config);

  // The canned simulation accepts named defenses only, so for the custom
  // rule we run the round loop manually on top of the public pieces.
  config.defense = "fedavg";  // placeholder; aggregation happens below
  fl::Simulation sim(config);
  const auto attack = fl::make_attack(kind, sim, core::ZkaOptions{}, seed);

  const auto factory = models::task_model_factory(config.task);
  std::vector<float> global = nn::get_flat_params(*factory(seed));
  std::vector<float> prev = global;

  std::vector<fl::Client> clients;
  {
    util::Rng rng(seed);
    auto parts = data::dirichlet_partition(sim.train_data().labels, 10,
                                           config.num_clients, 0.5, rng);
    for (std::int64_t c = 0; c < config.num_clients; ++c) {
      clients.emplace_back(c, sim.train_data(),
                           parts[static_cast<std::size_t>(c)], factory,
                           config.client);
    }
  }

  util::Rng rng(seed ^ 0xc0ffee);
  double best = 0.0;
  for (std::int64_t round = 0; round < rounds; ++round) {
    const auto sampled = rng.sample_without_replacement(
        static_cast<std::size_t>(config.num_clients),
        static_cast<std::size_t>(config.clients_per_round));
    std::vector<defense::UpdateView> updates;
    std::vector<std::int64_t> weights;
    std::vector<defense::Update> benign;
    for (const auto c : sampled) {
      if (static_cast<std::int64_t>(c) >= sim.num_malicious()) {
        benign.push_back(clients[c].train(global, seed + round * 131 + c));
      }
    }
    attack::AttackContext ctx;
    ctx.global_model = global;
    ctx.prev_global_model = prev;
    ctx.benign_updates = attack->needs_benign_updates() ? &benign : nullptr;
    ctx.round = round;
    ctx.num_selected = config.clients_per_round;
    ctx.num_malicious_selected =
        static_cast<std::int64_t>(sampled.size() - benign.size());
    defense::Update malicious;
    if (ctx.num_malicious_selected > 0) malicious = attack->craft(ctx);

    std::size_t cursor = 0;
    for (const auto c : sampled) {
      if (static_cast<std::int64_t>(c) < sim.num_malicious()) {
        updates.emplace_back(malicious);  // shared view, no sybil copies
      } else {
        updates.emplace_back(benign[cursor++]);
      }
      weights.push_back(std::max<std::int64_t>(clients[c].num_samples(), 1));
    }
    prev = global;
    global = aggregator.aggregate(updates, weights).model;
    best = std::max(best,
                    fl::evaluate_accuracy(factory, global, sim.test_data()));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto kind = fl::parse_attack_kind(args.get_string("attack", "zka-g"));
  const std::int64_t rounds = args.get_int64("rounds", 12);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int64("seed", 5));

  GeoTrim custom(2);
  double natk = 0.0;
  const double acc_custom =
      run_with_aggregator(custom, kind, rounds, seed, &natk);

  util::Table table({"Defense", "max acc (%)", "ASR (%)"});
  table.add_row({"GeoTrim (custom)", util::Table::fmt(acc_custom * 100, 1),
                 util::Table::fmt(
                     fl::attack_success_rate(natk, acc_custom), 1)});
  for (const char* name : {"median", "trmean", "mkrum"}) {
    auto builtin = defense::make_aggregator(name, 2);
    const double acc =
        run_with_aggregator(*builtin, kind, rounds, seed, &natk);
    table.add_row({std::string(name), util::Table::fmt(acc * 100, 1),
                   util::Table::fmt(fl::attack_success_rate(natk, acc), 1)});
  }
  std::printf("Custom defense vs built-ins against %s (attack-free "
              "reference %.1f%%):\n",
              fl::attack_kind_name(kind), natk * 100);
  table.print();
  return 0;
}
