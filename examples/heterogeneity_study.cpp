// How does client data heterogeneity change the attack/defense balance?
// Reproduces the Sec. V-D experiment interactively: sweeps the Dirichlet
// concentration beta and reports attack-free accuracy, ASR and DPR for a
// chosen zero-knowledge attack. Lower beta = more heterogeneous clients =
// noisier benign updates = easier hiding for the attacker.
//
//   ./heterogeneity_study [--attack zka-r|zka-g|minmax|...]
//                         [--defense bulyan] [--betas 0.1,0.5,0.9]
#include <cstdio>
#include <sstream>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/experiment.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<double> parse_betas(const std::string& csv) {
  std::vector<double> betas;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    betas.push_back(std::stod(token));
  }
  return betas;
}

// Label skew indicator: mean max class share per client shard.
double skew_indicator(double beta, std::uint64_t seed) {
  using namespace zka;
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 1000, seed);
  util::Rng rng(seed);
  const auto parts =
      data::dirichlet_partition(dataset.labels, 10, 20, beta, rng);
  double total = 0.0;
  int counted = 0;
  for (const auto& part : parts) {
    if (part.size() < 5) continue;
    std::vector<int> hist(10, 0);
    for (const auto i : part) {
      hist[static_cast<std::size_t>(
          dataset.labels[static_cast<std::size_t>(i)])]++;
    }
    total += static_cast<double>(
                 *std::max_element(hist.begin(), hist.end())) /
             static_cast<double>(part.size());
    ++counted;
  }
  return counted ? total / counted : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zka;
  const util::CliArgs args(argc, argv);

  const auto kind = fl::parse_attack_kind(args.get_string("attack", "zka-r"));
  const auto betas = parse_betas(args.get_string("betas", "0.1,0.5,0.9"));

  fl::SimulationConfig config;
  config.num_clients = 50;
  config.clients_per_round = 10;
  config.malicious_fraction = 0.2;
  config.rounds = args.get_int64("rounds", 12);
  config.train_size = args.get_int64("train-size", 1000);
  config.test_size = 300;
  config.defense = args.get_string("defense", "bulyan");
  config.seed = static_cast<std::uint64_t>(args.get_int64("seed", 9));

  core::ZkaOptions zka;
  zka.synthetic_size = 24;
  zka.synthesis_epochs = 4;

  util::Table table({"beta", "label skew", "acc_natk (%)", "max acc (%)",
                     "ASR (%)", "DPR (%)"});
  fl::BaselineCache baselines;
  for (const double beta : betas) {
    config.beta = beta;
    const fl::ExperimentOutcome outcome =
        fl::run_experiment(config, kind, zka, 1, baselines);
    table.add_row(
        {util::Table::fmt(beta, 1),
         util::Table::fmt(skew_indicator(beta, config.seed), 2),
         util::Table::fmt(outcome.acc_natk, 1),
         util::Table::fmt(outcome.max_acc, 1),
         util::Table::fmt(outcome.asr, 1),
         std::isnan(outcome.dpr) ? "NA" : util::Table::fmt(outcome.dpr, 1)});
    std::printf("ran beta=%.1f\n", beta);
    std::fflush(stdout);
  }
  std::printf("\n%s vs %s while varying client heterogeneity:\n",
              fl::attack_kind_name(kind), config.defense.c_str());
  table.print();
  std::printf(
      "\nExpected shape (paper Tab. III): ASR grows as beta shrinks — "
      "diverse benign updates make outlier detection harder.\n");
  return 0;
}
