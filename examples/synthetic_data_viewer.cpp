// Peek inside the attack: render the benchmark class prototypes and the
// malicious images ZKA-R / ZKA-G synthesize from a fresh global model, as
// ASCII art. Also prints what the global model predicts for each image —
// ZKA-R images should look maximally ambiguous, ZKA-G images should avoid
// the decoy class.
//
//   ./synthetic_data_viewer [--variant zka-r|zka-g] [--count N]
#include <cstdio>

#include "core/zka_g.h"
#include "core/zka_r.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "util/cli.h"

namespace {

using namespace zka;

void render_ascii(const tensor::Tensor& images, std::int64_t index,
                  const models::ImageSpec& spec) {
  static const char* kRamp = " .:-=+*#%@";
  // Average channels down to a luminance plane, downsample 2x for width.
  const std::int64_t plane = spec.height * spec.width;
  // zka-lint: allow(A3) -- read-only ASCII rendering over the packed layout
  const float* base = images.raw() + index * spec.channels * plane;
  for (std::int64_t y = 0; y < spec.height; y += 2) {
    for (std::int64_t x = 0; x < spec.width; ++x) {
      float v = 0.0f;
      for (std::int64_t c = 0; c < spec.channels; ++c) {
        v += base[c * plane + y * spec.width + x];
      }
      v /= static_cast<float>(spec.channels);       // [-1, 1]
      const int level = static_cast<int>((v + 1.0f) * 4.999f);
      std::putchar(kRamp[std::clamp(level, 0, 9)]);
    }
    std::putchar('\n');
  }
}

void print_prediction(nn::Sequential& model, const tensor::Tensor& images,
                      std::int64_t index) {
  const std::int64_t one[] = {index};
  const tensor::Tensor probs =
      nn::softmax_rows(model.forward(images.index_select0(one)));
  std::printf("prediction: ");
  for (std::int64_t k = 0; k < probs.dim(1); ++k) {
    std::printf("%.2f ", probs[k]);
  }
  std::printf(" (max class %lld, p=%.2f)\n\n",
              static_cast<long long>(probs.argmax()), probs.max());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string variant = args.get_string("variant", "zka-r");
  const std::int64_t count = args.get_int64("count", 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int64("seed", 4));

  const models::Task task = models::Task::kFashion;
  const models::ImageSpec spec = models::task_spec(task);

  std::printf("== Benchmark class prototypes (SynthFashion) ==\n");
  for (std::int64_t label = 0; label < 3; ++label) {
    std::printf("class %lld prototype:\n", static_cast<long long>(label));
    render_ascii(data::class_prototype(task, label), 0, spec);
    std::printf("\n");
  }

  const auto factory = models::task_model_factory(task);
  auto model = factory(seed);
  const std::vector<float> global = nn::get_flat_params(*model);

  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;

  core::ZkaOptions zka;
  zka.synthetic_size = count;
  zka.synthesis_epochs = 8;

  std::unique_ptr<attack::Attack> attack;
  const tensor::Tensor* images = nullptr;
  std::int64_t decoy = -1;
  if (variant == "zka-g") {
    auto g = std::make_unique<core::ZkaGAttack>(task, zka, seed);
    g->craft(ctx);
    images = &g->last_synthetic_images();
    decoy = g->decoy_label();
    attack = std::move(g);
  } else {
    auto r = std::make_unique<core::ZkaRAttack>(task, zka, seed);
    r->craft(ctx);
    images = &r->last_synthetic_images();
    decoy = r->decoy_label();
    attack = std::move(r);
  }

  std::printf("== %s synthetic images (decoy label Ỹ = %lld) ==\n",
              attack->name().c_str(), static_cast<long long>(decoy));
  nn::set_flat_params(*model, global);
  for (std::int64_t i = 0; i < count; ++i) {
    std::printf("synthetic image %lld:\n", static_cast<long long>(i));
    render_ascii(*images, i, spec);
    print_prediction(*model, *images, i);
  }
  std::printf(
      "ZKA-R images aim for a flat prediction vector (ambiguity); ZKA-G "
      "images aim for low probability on the decoy class %lld.\n",
      static_cast<long long>(decoy));
  return 0;
}
