// Operating a federation like a production system: checkpoint the global
// model to disk mid-training, resume from the checkpoint, and watch the
// update-space geometry (the malicious/benign separability a distance
// defense would see) round by round.
//
//   ./checkpoint_and_diagnose [--attack zka-g] [--rounds N] [--out dir]
#include <cstdio>
#include <filesystem>

#include "analysis/update_diagnostics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/experiment.h"
#include "fl/metrics.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace zka;

// A miniature server loop built from the public pieces, with checkpoint
// and diagnostics hooks (the canned fl::Simulation hides the round loop).
struct MiniFederation {
  models::ModelFactory factory;
  data::Dataset train;
  data::Dataset test;
  std::vector<fl::Client> clients;
  std::int64_t num_malicious = 0;
  std::vector<float> global;
  std::vector<float> prev;
  util::Rng rng{0};

  static MiniFederation create(std::uint64_t seed) {
    MiniFederation fed;
    fed.factory = models::task_model_factory(models::Task::kFashion);
    fed.train = data::make_synthetic_dataset(models::Task::kFashion, 800,
                                             seed);
    fed.test = data::make_synthetic_dataset(models::Task::kFashion, 250,
                                            seed ^ 0x7e57);
    util::Rng part_rng(seed);
    const auto parts =
        data::dirichlet_partition(fed.train.labels, 10, 40, 0.5, part_rng);
    for (std::int64_t c = 0; c < 40; ++c) {
      fed.clients.emplace_back(c, fed.train,
                               parts[static_cast<std::size_t>(c)],
                               fed.factory, fl::ClientOptions{});
    }
    fed.num_malicious = 8;  // 20%
    fed.global = nn::get_flat_params(*fed.factory(seed));
    fed.prev = fed.global;
    fed.rng = util::Rng(seed ^ 0xfeed);
    return fed;
  }

  /// One FL round; returns the separability the defense would observe.
  double round(attack::Attack& attack, std::int64_t round_index) {
    const auto sampled = rng.sample_without_replacement(40, 10);
    std::vector<std::vector<float>> updates;
    std::vector<bool> malicious_flags;
    std::vector<std::vector<float>> benign;
    for (const auto c : sampled) {
      if (static_cast<std::int64_t>(c) >= num_malicious) {
        benign.push_back(clients[c].train(
            global, 7777 + round_index * 97 + c));
      }
    }
    attack::AttackContext ctx;
    ctx.global_model = global;
    ctx.prev_global_model = prev;
    ctx.benign_updates = attack.needs_benign_updates() ? &benign : nullptr;
    ctx.round = round_index;
    ctx.num_selected = 10;
    ctx.num_malicious_selected =
        static_cast<std::int64_t>(sampled.size() - benign.size());
    std::vector<float> crafted;
    if (ctx.num_malicious_selected > 0) crafted = attack.craft(ctx);

    std::size_t cursor = 0;
    for (const auto c : sampled) {
      const bool mal = static_cast<std::int64_t>(c) < num_malicious;
      malicious_flags.push_back(mal);
      updates.push_back(mal ? crafted : std::move(benign[cursor]));
      if (!mal) ++cursor;
    }
    double separability = 0.0;
    if (ctx.num_malicious_selected > 0) {
      separability =
          analysis::diagnose_updates(updates, malicious_flags).separability();
    }
    // Plain FedAvg server (worst case) to keep the example focused.
    prev = global;
    std::vector<double> acc(global.size(), 0.0);
    for (const auto& u : updates) {
      for (std::size_t i = 0; i < u.size(); ++i) acc[i] += u[i];
    }
    for (std::size_t i = 0; i < global.size(); ++i) {
      global[i] = static_cast<float>(acc[i] / updates.size());
    }
    return separability;
  }

  double accuracy() const {
    return fl::evaluate_accuracy(factory, global, test);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::int64_t rounds = args.get_int64("rounds", 10);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int64("seed", 21));
  const std::string out_dir =
      args.get_string("out", std::filesystem::temp_directory_path().string());
  const std::string checkpoint = out_dir + "/zka_checkpoint.bin";

  MiniFederation fed = MiniFederation::create(seed);
  fl::Simulation dummy_sim([&] {  // only used to materialize the attack
    fl::SimulationConfig config;
    config.num_clients = 10;
    config.clients_per_round = 5;
    config.train_size = 100;
    config.test_size = 50;
    config.malicious_fraction = 0.2;
    config.seed = seed;
    return config;
  }());
  const auto attack = fl::make_attack(
      fl::parse_attack_kind(args.get_string("attack", "zka-g")), dummy_sim,
      core::ZkaOptions{}, seed);

  util::Table table({"round", "accuracy (%)", "separability"});
  const std::int64_t half = rounds / 2;
  for (std::int64_t r = 0; r < half; ++r) {
    const double sep = fed.round(*attack, r);
    table.add_row({std::to_string(r), util::Table::fmt(fed.accuracy() * 100, 1),
                   sep > 0.0 ? util::Table::fmt(sep, 2) : "-"});
  }

  // Checkpoint, then resume into a fresh federation object.
  nn::save_params(checkpoint, fed.global);
  std::printf("checkpointed global model (%zu params) to %s\n",
              fed.global.size(), checkpoint.c_str());
  MiniFederation resumed = MiniFederation::create(seed);
  resumed.global = nn::load_params(checkpoint);
  resumed.prev = resumed.global;

  for (std::int64_t r = half; r < rounds; ++r) {
    const double sep = resumed.round(*attack, r);
    table.add_row({std::to_string(r) + "*",
                   util::Table::fmt(resumed.accuracy() * 100, 1),
                   sep > 0.0 ? util::Table::fmt(sep, 2) : "-"});
  }
  table.print("\nFederation under " + attack->name() +
              " (rows marked * ran after checkpoint resume). "
              "Separability ~1 means the poisoned updates are hidden "
              "inside the benign cloud:");
  std::filesystem::remove(checkpoint);
  return 0;
}
