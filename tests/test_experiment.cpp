#include "fl/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zka::fl {
namespace {

SimulationConfig tiny_config() {
  SimulationConfig config;
  config.num_clients = 15;
  config.clients_per_round = 5;
  config.rounds = 4;
  config.train_size = 200;
  config.test_size = 80;
  config.malicious_fraction = 0.2;
  config.seed = 5;
  return config;
}

core::ZkaOptions tiny_zka() {
  core::ZkaOptions zka;
  zka.synthetic_size = 4;
  zka.synthesis_epochs = 2;
  zka.latent_dim = 8;
  return zka;
}

TEST(AttackKinds, NamesRoundTrip) {
  const std::pair<const char*, AttackKind> cases[] = {
      {"none", AttackKind::kNone},
      {"fang", AttackKind::kFang},
      {"lie", AttackKind::kLie},
      {"minmax", AttackKind::kMinMax},
      {"zka-r", AttackKind::kZkaR},
      {"zka-g", AttackKind::kZkaG},
      {"zka-r-static", AttackKind::kZkaRStatic},
      {"zka-g-static", AttackKind::kZkaGStatic},
      {"real-data", AttackKind::kRealData},
      {"random-weights", AttackKind::kRandomWeights},
      {"label-flip", AttackKind::kLabelFlip},
  };
  for (const auto& [name, kind] : cases) {
    EXPECT_EQ(parse_attack_kind(name), kind) << name;
    EXPECT_FALSE(std::string(attack_kind_name(kind)).empty());
  }
  EXPECT_THROW(parse_attack_kind("unknown"), std::invalid_argument);
}

TEST(MakeAttack, ConstructsEveryKind) {
  Simulation sim(tiny_config());
  for (const AttackKind kind :
       {AttackKind::kFang, AttackKind::kLie, AttackKind::kMinMax,
        AttackKind::kZkaR, AttackKind::kZkaG, AttackKind::kZkaRStatic,
        AttackKind::kZkaGStatic, AttackKind::kRealData,
        AttackKind::kRandomWeights, AttackKind::kLabelFlip}) {
    const auto attack = make_attack(kind, sim, tiny_zka(), 1);
    ASSERT_NE(attack, nullptr) << attack_kind_name(kind);
  }
  EXPECT_EQ(make_attack(AttackKind::kNone, sim, tiny_zka(), 1), nullptr);
}

TEST(MakeAttack, StaticVariantsDisableTraining) {
  Simulation sim(tiny_config());
  const auto s = make_attack(AttackKind::kZkaRStatic, sim, tiny_zka(), 2);
  EXPECT_EQ(s->name(), "ZKA-R-static");
  const auto g = make_attack(AttackKind::kZkaGStatic, sim, tiny_zka(), 2);
  EXPECT_EQ(g->name(), "ZKA-G-static");
}

TEST(BaselineCacheTest, CachesAcrossDefenses) {
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  config.defense = "mkrum";
  const double a = cache.attack_free_accuracy(config);
  config.defense = "bulyan";  // irrelevant to the baseline key
  const double b = cache.attack_free_accuracy(config);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.1);
}

TEST(BaselineCacheTest, DifferentSeedsGetDifferentEntries) {
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  const double a = cache.attack_free_accuracy(config);
  config.seed = 77;
  const double b = cache.attack_free_accuracy(config);
  EXPECT_NE(a, b);
}

TEST(BaselineCacheTest, TestSizeIsPartOfTheKey) {
  // Regression: the cache key used to omit test_size, so two configs that
  // differ only in their evaluation split aliased to one entry and the
  // second caller was served the first caller's accuracy.
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  cache.attack_free_accuracy(config);  // prime the cache with test_size = 80
  config.test_size = 40;
  const double shared = cache.attack_free_accuracy(config);
  BaselineCache fresh;
  const double expected = fresh.attack_free_accuracy(config);
  EXPECT_DOUBLE_EQ(shared, expected);
}

TEST(BaselineCacheTest, KeyIsBitExactForFloatFields) {
  // Regression: the key used to format beta / learning_rate with printf
  // precision, so configs whose floats differed below the printed digits
  // collided and one silently reused the other's baseline. The key must
  // distinguish any bitwise-different float.
  SimulationConfig config = tiny_config();
  SimulationConfig nudged = config;
  nudged.beta = std::nextafter(config.beta, 1.0);
  EXPECT_NE(BaselineCache::key(config), BaselineCache::key(nudged));

  nudged = config;
  nudged.client.learning_rate =
      std::nextafter(config.client.learning_rate, 1.0f);
  EXPECT_NE(BaselineCache::key(config), BaselineCache::key(nudged));

  // And identical configs must still agree, including negative-zero vs
  // zero (bitwise distinct, so distinct keys — exactness over aliasing).
  EXPECT_EQ(BaselineCache::key(config), BaselineCache::key(config));
  SimulationConfig zero = config;
  zero.beta = 0.0;
  SimulationConfig neg_zero = config;
  neg_zero.beta = -0.0;
  EXPECT_NE(BaselineCache::key(zero), BaselineCache::key(neg_zero));
}

TEST(RunExperiment, RejectsDisabledEvaluation) {
  // eval_every = 0 disables evaluation, so every accuracy metric the
  // experiment would report is NaN; run_experiment must refuse up front.
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  config.eval_every = 0;
  EXPECT_THROW(run_experiment(config, AttackKind::kRandomWeights, tiny_zka(),
                              1, cache),
               std::invalid_argument);
}

TEST(RunExperiment, ProducesSaneOutcome) {
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  config.defense = "mkrum";
  const ExperimentOutcome outcome =
      run_experiment(config, AttackKind::kRandomWeights, tiny_zka(), 2,
                     cache);
  EXPECT_EQ(outcome.runs, 2);
  EXPECT_GT(outcome.acc_natk, 0.0);
  EXPECT_GE(outcome.max_acc, 0.0);
  EXPECT_LE(outcome.max_acc, 100.0);
  EXPECT_FALSE(std::isnan(outcome.asr));
  EXPECT_FALSE(std::isnan(outcome.dpr));  // mKrum selects
  EXPECT_GE(outcome.asr_stddev, 0.0);
}

TEST(RunExperiment, DprNanForStatisticDefense) {
  BaselineCache cache;
  SimulationConfig config = tiny_config();
  config.defense = "median";
  const ExperimentOutcome outcome =
      run_experiment(config, AttackKind::kRandomWeights, tiny_zka(), 1,
                     cache);
  EXPECT_TRUE(std::isnan(outcome.dpr));
}

TEST(RunExperiment, RejectsZeroRuns) {
  BaselineCache cache;
  EXPECT_THROW(run_experiment(tiny_config(), AttackKind::kLie, tiny_zka(), 0,
                              cache),
               std::invalid_argument);
}

}  // namespace
}  // namespace zka::fl
