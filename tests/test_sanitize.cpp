// Runtime coverage for the ingress sanitize layer (defense/sanitize.h):
// the dynamic counterpart of the A11-A15 taint rules. Registered at
// ZKA_THREADS 1/4/8 (see CMakeLists.txt) so the admitted-values path is
// exercised under every pool size the determinism suite uses.
#include "defense/sanitize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "attack/nan_injection.h"
#include "defense/aggregator.h"
#include "defense/fedavg.h"
#include "fl/simulation.h"

namespace zka::defense {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

std::vector<UpdateView> views_of(const std::vector<Update>& updates) {
  return as_views(updates);
}

TEST(Ingress, CleanBatchPassesThroughBitwise) {
  sanitize::Ingress ingress;
  const std::vector<Update> updates{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const auto views = views_of(updates);
  const auto admitted = ingress.admit_updates(views);
  ASSERT_EQ(admitted.size(), views.size());
  // Pass-through means the very same spans, not equal copies.
  EXPECT_EQ(admitted.data(), views.data());
  EXPECT_EQ(ingress.zeroed_values(), 0u);
}

TEST(Ingress, DirtyRowsZeroedCleanRowsShared) {
  sanitize::Ingress ingress;
  const std::vector<Update> updates{{1.0f, kNaN, 3.0f}, {4.0f, 5.0f, 6.0f}};
  const auto views = views_of(updates);
  const auto admitted = ingress.admit_updates(views);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0][0], 1.0f);
  EXPECT_EQ(admitted[0][1], 0.0f);  // zeroed, not dropped
  EXPECT_EQ(admitted[0][2], 3.0f);
  // The clean row is still a view of the caller's bytes.
  EXPECT_EQ(admitted[1].data(), updates[1].data());
  EXPECT_EQ(ingress.zeroed_values(), 1u);
}

TEST(Ingress, StreamRowZeroed) {
  sanitize::Ingress ingress;
  const Update row{kInf, 2.0f, kNaN};
  const auto admitted = ingress.admit_update(row);
  ASSERT_EQ(admitted.size(), 3u);
  EXPECT_EQ(admitted[0], 0.0f);
  EXPECT_EQ(admitted[1], 2.0f);
  EXPECT_EQ(admitted[2], 0.0f);
  EXPECT_EQ(ingress.zeroed_values(), 2u);
}

TEST(Ingress, WeightOutlierClampedToMedianMultiple) {
  sanitize::Ingress ingress;
  std::vector<std::int64_t> weights(15, 10);
  weights.push_back(kInt64Max);  // the sybil
  const auto admitted = ingress.admit_weights(weights);
  ASSERT_EQ(admitted.size(), weights.size());
  EXPECT_EQ(admitted.back(), 80);  // median 10 * default ratio 8
  for (std::size_t i = 0; i < 15; ++i) EXPECT_EQ(admitted[i], 10);
  EXPECT_EQ(ingress.clamped_weights(), 1u);
  // Clean weight lists are the caller's span, untouched.
  const std::vector<std::int64_t> clean(4, 7);
  EXPECT_EQ(ingress.admit_weights(clean).data(), clean.data());
}

TEST(Ingress, ZeroMedianLeavesWeightsAlone) {
  // Half-empty shards are legitimate (weight 0); with a zero median there
  // is no scale to clamp against, and repairing weights here would hide
  // the protocol violation validate_updates exists to reject.
  sanitize::Ingress ingress;
  const std::vector<std::int64_t> weights{0, 0, 0, 5};
  const auto admitted = ingress.admit_weights(weights);
  EXPECT_EQ(admitted.data(), weights.data());
  EXPECT_EQ(ingress.clamped_weights(), 0u);
}

TEST(Ingress, DisabledIsBitwisePassThrough) {
  sanitize::Ingress ingress(sanitize::Options{.enabled = false});
  const std::vector<Update> updates{{kNaN}};
  const auto views = views_of(updates);
  EXPECT_EQ(ingress.admit_updates(views).data(), views.data());
  EXPECT_TRUE(std::isnan(ingress.admit_update(updates[0])[0]));
  const std::vector<std::int64_t> weights{1, kInt64Max};
  EXPECT_EQ(ingress.admit_weights(weights).data(), weights.data());
  EXPECT_EQ(ingress.zeroed_values(), 0u);
  EXPECT_EQ(ingress.clamped_weights(), 0u);
}

// ── The INT64_MAX sybil (reported_weight is attacker-chosen) ───────────

TEST(SanitizeWeights, SybilWeightCannotOwnTheMean) {
  // 15 benign clients (weight 10, value 0) and one sybil reporting
  // INT64_MAX with value 1: undefended, the sybil's coefficient is ~1 and
  // the "weighted mean" is the sybil's update. The ingress clamp bounds
  // it to median*8, i.e. at most 80/230 of the mass.
  std::vector<Update> updates(15, Update{0.0f});
  updates.push_back(Update{1.0f});
  std::vector<std::int64_t> weights(15, 10);
  weights.push_back(kInt64Max);

  FedAvg undefended;
  undefended.set_sanitize({.enabled = false});
  EXPECT_GT(undefended.aggregate(updates, weights).model[0], 0.9f);

  FedAvg defended;  // sanitize on by default
  EXPECT_LT(defended.aggregate(updates, weights).model[0], 0.5f);
  EXPECT_EQ(defended.ingress().clamped_weights(), 1u);
}

// ── Every defense, poisoned batch, all thread counts ───────────────────

class SanitizedDefense : public ::testing::TestWithParam<const char*> {};

TEST_P(SanitizedDefense, PoisonedBatchYieldsFiniteModel) {
  auto agg = make_aggregator(GetParam(), 2);
  std::vector<Update> updates;
  for (int k = 0; k < 8; ++k) {
    updates.push_back(Update{0.1f * static_cast<float>(k), 1.0f, -0.5f});
  }
  updates[1][0] = kNaN;
  updates[6][2] = kInf;
  std::vector<std::int64_t> weights(8, 3);
  weights[4] = kInt64Max;
  const auto result = agg->aggregate(updates, weights);
  ASSERT_EQ(result.model.size(), 3u);
  for (const float v : result.model) {
    EXPECT_TRUE(std::isfinite(v)) << agg->name();
  }
  EXPECT_GE(agg->ingress().zeroed_values(), 2u) << agg->name();
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, SanitizedDefense,
                         ::testing::Values("fedavg", "median", "trmean",
                                           "krum", "mkrum", "bulyan",
                                           "foolsgold", "normclip",
                                           "geomedian", "centeredclip",
                                           "dnc"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(SanitizedStreaming, StreamMatchesBatchOnPoisonedInput) {
  // The streaming wrapper admits each row exactly as the batch wrapper
  // admits the matrix, so FedAvg's bitwise batch==stream contract must
  // survive poisoned input.
  std::vector<Update> updates{{1.0f, kNaN}, {3.0f, 4.0f}, {kInf, 6.0f}};
  const std::vector<std::int64_t> weights{2, 3, 4};
  FedAvg batch;
  const auto expected = batch.aggregate(updates, weights).model;
  FedAvg streaming;
  streaming.begin_stream(2, weights);
  for (const auto& u : updates) streaming.stream_update(u);
  const auto streamed = streaming.finish_stream().model;
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i], expected[i]);  // bitwise, not approximately
  }
}

// ── NaN injection end-to-end: collapse without the layer, recovery with ──

fl::SimulationConfig nan_config() {
  fl::SimulationConfig config;
  config.task = models::Task::kFashion;
  config.num_clients = 20;
  config.clients_per_round = 5;
  config.malicious_fraction = 0.2;
  config.rounds = 10;
  config.train_size = 300;
  config.test_size = 120;
  config.seed = 3;
  return config;
}

TEST(NaNInjection, CollapsesUndefendedServerRecoversWithSanitize) {
  attack::NaNInjectionAttack attack;

  // Paper-faithful server: ingress off. One poisoned round NaNs the
  // global model and it never comes back.
  fl::SimulationConfig off = nan_config();
  off.custom_defense = [] {
    auto agg = std::make_unique<FedAvg>();
    agg->set_sanitize({.enabled = false});
    return agg;
  };
  const auto collapsed = fl::Simulation(off).run(&attack);
  EXPECT_LT(collapsed.final_accuracy, 0.25);

  // Default server: the poisoned coordinates are zeroed at admission, the
  // sybils degrade to zero-updates, and training proceeds.
  const auto recovered = fl::Simulation(nan_config()).run(&attack);
  EXPECT_GT(recovered.max_accuracy, 0.35);
  EXPECT_GT(recovered.max_accuracy, collapsed.final_accuracy + 0.1);
}

}  // namespace
}  // namespace zka::defense
