// Extension attacks: Min-Sum and FreeRider.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/free_rider.h"
#include "attack/minmax.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::attack {
namespace {

struct Fixture {
  std::vector<float> global;
  std::vector<float> prev;
  std::vector<Update> benign;

  Fixture(std::size_t dim, std::size_t n_benign, std::uint64_t seed) {
    util::Rng rng(seed);
    global.resize(dim);
    prev.resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      global[i] = static_cast<float>(rng.normal(0.0, 0.3));
      prev[i] = global[i] - static_cast<float>(rng.normal(0.0, 0.05));
    }
    benign.assign(n_benign, Update(dim));
    for (auto& u : benign) {
      for (std::size_t i = 0; i < dim; ++i) {
        u[i] = global[i] + static_cast<float>(rng.normal(0.05, 0.1));
      }
    }
  }

  AttackContext context() const {
    AttackContext ctx;
    ctx.global_model = global;
    ctx.prev_global_model = prev;
    ctx.benign_updates = &benign;
    ctx.num_selected = 10;
    ctx.num_malicious_selected = 2;
    return ctx;
  }
};

TEST(MinSum, RespectsSumOfSquaredDistancesBudget) {
  Fixture fx(24, 8, 1);
  MinSumAttack attack;
  const Update crafted = attack.craft(fx.context());

  double budget = 0.0;
  for (const auto& a : fx.benign) {
    double sum = 0.0;
    for (const auto& b : fx.benign) {
      const double d = util::l2_distance(a, b);
      sum += d * d;
    }
    budget = std::max(budget, sum);
  }
  double crafted_sum = 0.0;
  for (const auto& b : fx.benign) {
    const double d = util::l2_distance(crafted, b);
    crafted_sum += d * d;
  }
  EXPECT_LE(crafted_sum, budget * 1.05);
  EXPECT_GT(attack.last_gamma(), 0.0);
  EXPECT_EQ(attack.name(), "Min-Sum");
  EXPECT_TRUE(attack.needs_benign_updates());
}

TEST(MinSum, SharedHelpersMatchHandComputation) {
  const std::vector<Update> benign{{1.0f, 0.0f}, {3.0f, 0.0f}};
  const Update p =
      perturbation_direction(Perturbation::kInverseUnit, benign);
  // mean = (2, 0); -mean/||mean|| = (-1, 0).
  EXPECT_NEAR(p[0], -1.0f, 1e-6f);
  EXPECT_NEAR(p[1], 0.0f, 1e-6f);

  const Update sign =
      perturbation_direction(Perturbation::kInverseSign, benign);
  EXPECT_FLOAT_EQ(sign[0], -1.0f);
  EXPECT_FLOAT_EQ(sign[1], 0.0f);
}

TEST(MinSum, MaximizeGammaFindsBoundary) {
  const Update mean{0.0f};
  const Update perturb{1.0f};
  // fits: |gamma| <= 5.
  const double gamma = maximize_gamma(
      mean, perturb, [](const Update& u) { return std::abs(u[0]) <= 5.0; });
  EXPECT_NEAR(gamma, 5.0, 0.1);
}

TEST(MinSum, ZeroBudgetCollapsesToMean) {
  Fixture fx(8, 4, 2);
  for (auto& u : fx.benign) u = fx.benign[0];
  MinSumAttack attack;
  const Update crafted = attack.craft(fx.context());
  EXPECT_NEAR(util::l2_distance(crafted, fx.benign[0]), 0.0, 1e-4);
}

TEST(FreeRider, ReturnsGlobalPlusDriftScaledNoise) {
  Fixture fx(256, 3, 3);
  FreeRiderAttack attack(0.5, 42);
  EXPECT_FALSE(attack.needs_benign_updates());
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  const Update crafted = attack.craft(ctx);
  const double drift = util::l2_distance(fx.global, fx.prev);
  const double deviation = util::l2_distance(crafted, fx.global);
  EXPECT_GT(deviation, 0.0);
  EXPECT_LT(deviation, drift);  // ~0.5x drift in expectation
}

TEST(FreeRider, TinyNoiseWhenModelConverged) {
  Fixture fx(64, 3, 4);
  fx.prev = fx.global;  // no drift
  FreeRiderAttack attack(0.5, 43);
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  const Update crafted = attack.craft(ctx);
  EXPECT_LT(util::l2_distance(crafted, fx.global), 0.01);
  EXPECT_GT(util::l2_distance(crafted, fx.global), 0.0);
}

TEST(FreeRider, FreshNoiseEachRound) {
  Fixture fx(32, 3, 5);
  FreeRiderAttack attack(0.5, 44);
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  EXPECT_NE(attack.craft(ctx), attack.craft(ctx));
}

}  // namespace
}  // namespace zka::attack
