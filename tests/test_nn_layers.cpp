#include <gtest/gtest.h>

#include "grad_check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace zka::nn {
namespace {

using tensor::Tensor;

Tensor random_input(tensor::Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

// ---------- Linear ----------

TEST(Linear, ForwardShapeAndBias) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  const Tensor y = layer.forward(random_input({5, 4}, 2));
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 3}));
  EXPECT_THROW(layer.forward(Tensor({5, 7})), std::invalid_argument);
}

TEST(Linear, KnownComputation) {
  util::Rng rng(1);
  Linear layer(2, 1, rng);
  auto params = layer.parameters();
  params[0]->value[0] = 2.0f;  // w00
  params[0]->value[1] = -1.0f; // w01
  params[1]->value[0] = 0.5f;  // bias
  const Tensor x({1, 2}, std::vector<float>{3.0f, 4.0f});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Linear, InputGradient) {
  util::Rng rng(3);
  Linear layer(6, 4, rng);
  test::check_input_gradient(layer, random_input({3, 6}, 4));
}

TEST(Linear, ParameterGradients) {
  util::Rng rng(5);
  Linear layer(5, 3, rng);
  test::check_param_gradients(layer, random_input({4, 5}, 6));
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  util::Rng rng(7);
  Linear layer(2, 2, rng);
  const Tensor x = random_input({2, 2}, 8);
  const Tensor y = layer.forward(x);
  layer.zero_grad();
  layer.backward(y);
  const auto g1 = get_flat_grads(layer);
  layer.forward(x);
  layer.backward(y);
  const auto g2 = get_flat_grads(layer);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-4f);
  }
}

// ---------- Conv2d ----------

TEST(Conv2d, ForwardShape) {
  util::Rng rng(9);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor y = conv.forward(random_input({2, 3, 10, 10}, 10));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 8, 10, 10}));
}

TEST(Conv2d, StridedShape) {
  util::Rng rng(11);
  Conv2d conv(1, 4, 4, 2, 1, rng);
  const Tensor y = conv.forward(random_input({1, 1, 8, 8}, 12));
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 4, 4, 4}));
}

TEST(Conv2d, RejectsWrongChannels) {
  util::Rng rng(13);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 3, 8, 8})), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  util::Rng rng(14);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  auto params = conv.parameters();
  params[0]->value[0] = 1.0f;
  params[1]->value[0] = 0.0f;
  const Tensor x = random_input({1, 1, 4, 4}, 15);
  EXPECT_TRUE(tensor::allclose(conv.forward(x), x));
}

TEST(Conv2d, InputGradient) {
  util::Rng rng(16);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  test::check_input_gradient(conv, random_input({2, 2, 5, 5}, 17));
}

TEST(Conv2d, ParameterGradients) {
  util::Rng rng(18);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  test::check_param_gradients(conv, random_input({2, 2, 5, 5}, 19));
}

TEST(Conv2d, StridedGradients) {
  util::Rng rng(20);
  Conv2d conv(1, 2, 4, 2, 1, rng);
  test::check_input_gradient(conv, random_input({1, 1, 8, 8}, 21));
  test::check_param_gradients(conv, random_input({1, 1, 8, 8}, 22));
}

// Naive direct convolution: the reference the batched im2col+GEMM path must
// reproduce. Double accumulation, straight from the definition.
Tensor conv2d_direct(const Tensor& x, const Tensor& w, const Tensor& b,
                     std::int64_t oc, std::int64_t k, std::int64_t stride,
                     std::int64_t pad) {
  const std::int64_t n = x.dim(0), ic = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (wd + 2 * pad - k) / stride + 1;
  Tensor y({n, oc, oh, ow});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t o = 0; o < oc; ++o) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = b[o];
          for (std::int64_t c = 0; c < ic; ++c) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = oy * stride - pad + ky;
                const std::int64_t ix = ox * stride - pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(
                           x.at({s, c, iy, ix})) *
                       w[(o * ic + c) * k * k + ky * k + kx];
              }
            }
          }
          y.at({s, o, oy, ox}) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

// Naive transposed convolution: scatter every input pixel through the
// kernel into the upsampled output.
Tensor conv_transpose2d_direct(const Tensor& x, const Tensor& w,
                               const Tensor& b, std::int64_t oc,
                               std::int64_t k, std::int64_t stride,
                               std::int64_t pad) {
  const std::int64_t n = x.dim(0), ic = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const std::int64_t oh = (h - 1) * stride - 2 * pad + k;
  const std::int64_t ow = (wd - 1) * stride - 2 * pad + k;
  Tensor y({n, oc, oh, ow});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t o = 0; o < oc; ++o) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          y.at({s, o, oy, ox}) = b[o];
        }
      }
    }
    for (std::int64_t c = 0; c < ic; ++c) {
      for (std::int64_t iy = 0; iy < h; ++iy) {
        for (std::int64_t ix = 0; ix < wd; ++ix) {
          const float xv = x.at({s, c, iy, ix});
          for (std::int64_t o = 0; o < oc; ++o) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t oy = iy * stride - pad + ky;
                const std::int64_t ox = ix * stride - pad + kx;
                if (oy < 0 || oy >= oh || ox < 0 || ox >= ow) continue;
                // Weight layout [IC, OC*K*K].
                y.at({s, o, oy, ox}) +=
                    xv * w[(c * oc + o) * k * k + ky * k + kx];
              }
            }
          }
        }
      }
    }
  }
  return y;
}

TEST(Conv2d, BatchedForwardMatchesDirectConvolution) {
  struct Config {
    std::int64_t k, stride, pad;
  };
  constexpr Config kConfigs[] = {
      {1, 1, 0}, {3, 1, 1}, {3, 2, 1}, {4, 2, 1}, {5, 1, 2}, {3, 3, 0},
  };
  constexpr std::int64_t kBatches[] = {1, 3, 8};
  std::uint64_t seed = 200;
  for (const auto& cfg : kConfigs) {
    for (const std::int64_t batch : kBatches) {
      util::Rng rng(seed);
      Conv2d conv(2, 3, cfg.k, cfg.stride, cfg.pad, rng);
      const Tensor x = random_input({batch, 2, 9, 9}, seed + 1);
      seed += 2;
      const Tensor got = conv.forward(x);
      const Tensor want =
          conv2d_direct(x, conv.parameters()[0]->value,
                        conv.parameters()[1]->value, 3, cfg.k, cfg.stride,
                        cfg.pad);
      ASSERT_EQ(got.shape(), want.shape())
          << "k=" << cfg.k << " s=" << cfg.stride << " p=" << cfg.pad;
      EXPECT_TRUE(tensor::allclose(got, want, 1e-4f))
          << "k=" << cfg.k << " s=" << cfg.stride << " p=" << cfg.pad
          << " batch=" << batch;
    }
  }
}

TEST(Conv2d, BatchedForwardIsSampleIndependent) {
  // Each sample's output must be bitwise identical whether it is convolved
  // alone or as part of a batch (fixed accumulation order in the kernel).
  util::Rng rng(300);
  Conv2d conv(3, 5, 3, 1, 1, rng);
  const Tensor x = random_input({4, 3, 8, 8}, 301);
  const Tensor batched = conv.forward(x);
  const std::int64_t sample = 3 * 8 * 8;
  const std::int64_t out_sample = 5 * 8 * 8;
  for (std::int64_t s = 0; s < 4; ++s) {
    Tensor one({1, 3, 8, 8});
    for (std::int64_t i = 0; i < sample; ++i) one[i] = x[s * sample + i];
    const Tensor y = conv.forward(one);
    for (std::int64_t i = 0; i < out_sample; ++i) {
      EXPECT_EQ(y[i], batched[s * out_sample + i]) << "sample " << s;
    }
  }
}

TEST(Conv2d, BatchedGradients) {
  util::Rng rng(310);
  Conv2d conv(2, 3, 4, 2, 1, rng);
  test::check_input_gradient(conv, random_input({3, 2, 8, 8}, 311));
  test::check_param_gradients(conv, random_input({3, 2, 8, 8}, 312));
}

// ---------- ConvTranspose2d ----------

TEST(ConvTranspose2d, UpsamplesByStride) {
  util::Rng rng(23);
  ConvTranspose2d deconv(4, 2, 4, 2, 1, rng);
  const Tensor y = deconv.forward(random_input({2, 4, 7, 7}, 24));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 2, 14, 14}));
}

TEST(ConvTranspose2d, InputGradient) {
  util::Rng rng(25);
  ConvTranspose2d deconv(2, 2, 4, 2, 1, rng);
  test::check_input_gradient(deconv, random_input({1, 2, 4, 4}, 26));
}

TEST(ConvTranspose2d, ParameterGradients) {
  util::Rng rng(27);
  ConvTranspose2d deconv(2, 2, 4, 2, 1, rng);
  test::check_param_gradients(deconv, random_input({1, 2, 4, 4}, 28));
}

TEST(ConvTranspose2d, BatchedForwardMatchesDirectScatter) {
  struct Config {
    std::int64_t k, stride, pad;
  };
  constexpr Config kConfigs[] = {{4, 2, 1}, {3, 1, 1}, {2, 2, 0}, {5, 3, 1}};
  constexpr std::int64_t kBatches[] = {1, 3, 8};
  std::uint64_t seed = 400;
  for (const auto& cfg : kConfigs) {
    for (const std::int64_t batch : kBatches) {
      util::Rng rng(seed);
      ConvTranspose2d deconv(3, 2, cfg.k, cfg.stride, cfg.pad, rng);
      const Tensor x = random_input({batch, 3, 5, 5}, seed + 1);
      seed += 2;
      const Tensor got = deconv.forward(x);
      const Tensor want = conv_transpose2d_direct(
          x, deconv.parameters()[0]->value, deconv.parameters()[1]->value, 2,
          cfg.k, cfg.stride, cfg.pad);
      ASSERT_EQ(got.shape(), want.shape())
          << "k=" << cfg.k << " s=" << cfg.stride << " p=" << cfg.pad;
      EXPECT_TRUE(tensor::allclose(got, want, 1e-4f))
          << "k=" << cfg.k << " s=" << cfg.stride << " p=" << cfg.pad
          << " batch=" << batch;
    }
  }
}

TEST(ConvTranspose2d, BatchedGradients) {
  util::Rng rng(410);
  ConvTranspose2d deconv(2, 2, 4, 2, 1, rng);
  test::check_input_gradient(deconv, random_input({3, 2, 4, 4}, 411));
  test::check_param_gradients(deconv, random_input({3, 2, 4, 4}, 412));
}

TEST(ConvTranspose2d, AdjointOfConv2d) {
  // With shared weights, <conv(x), y> == <x, deconv(y)> when the deconv
  // mirrors the conv geometry (no bias).
  util::Rng rng(29);
  Conv2d conv(2, 3, 3, 2, 1, rng);
  ConvTranspose2d deconv(3, 2, 3, 2, 1, rng);
  // Copy conv weight [OC, IC*K*K] into deconv weight [IC=3... ] layouts:
  // conv maps 2->3; its adjoint maps 3->2 and uses weight[IC_deconv=3][...].
  // conv weight layout [3, 2*9]; deconv wants [3, 2*9] as well
  // ([in_channels=3, out*k*k=2*9]) but indexed (oc_conv, ic_conv, ky, kx) ->
  // (ic_deconv=oc_conv, oc_deconv=ic_conv, ky, kx): same ordering.
  auto cw = conv.parameters()[0]->value;
  Tensor dw({3, 2 * 9});
  for (std::int64_t oc = 0; oc < 3; ++oc) {
    for (std::int64_t ic = 0; ic < 2; ++ic) {
      for (std::int64_t k = 0; k < 9; ++k) {
        dw[oc * 18 + ic * 9 + k] = cw[oc * 18 + ic * 9 + k];
      }
    }
  }
  deconv.parameters()[0]->value = dw;
  conv.parameters()[1]->value.fill(0.0f);
  deconv.parameters()[1]->value.fill(0.0f);

  const Tensor x = random_input({1, 2, 9, 9}, 30);
  const Tensor cx = conv.forward(x);  // [1, 3, 5, 5]
  const Tensor y = random_input({1, 3, 5, 5}, 31);
  const Tensor dy = deconv.forward(y);  // [1, 2, 9, 9]
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cx.numel(); ++i) {
    lhs += static_cast<double>(cx[i]) * y[i];
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * dy[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ---------- MaxPool2d ----------

TEST(MaxPool2d, ForwardSelectsWindowMax) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  pool.forward(x);
  const Tensor g({1, 1, 1, 1}, std::vector<float>{2.5f});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 2.5f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool2d, InputGradientNumeric) {
  MaxPool2d pool(2);
  // Distinct values avoid argmax ties that break finite differences.
  Tensor x({1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>((i * 7919) % 97) / 10.0f;
  }
  test::check_input_gradient(pool, x);
}

TEST(MaxPool2d, InvalidConstruction) {
  EXPECT_THROW(MaxPool2d(0), std::invalid_argument);
}

// ---------- Activations ----------

TEST(Activations, ReLUForward) {
  ReLU relu;
  const Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Activations, ReLUGradientMasksNegative) {
  ReLU relu;
  const Tensor x({3}, std::vector<float>{-1, 2, 3});
  relu.forward(x);
  const Tensor g({3}, std::vector<float>{10, 10, 10});
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 10.0f);
}

TEST(Activations, LeakyReLUSlope) {
  LeakyReLU leaky(0.1f);
  const Tensor x({2}, std::vector<float>{-2, 2});
  const Tensor y = leaky.forward(x);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  const Tensor gx = leaky.backward(Tensor({2}, 1.0f));
  EXPECT_FLOAT_EQ(gx[0], 0.1f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
}

TEST(Activations, TanhGradient) {
  Tanh tanh_layer;
  test::check_input_gradient(tanh_layer, random_input({3, 4}, 32), 1e-3,
                             2e-2);
}

TEST(Activations, SigmoidGradient) {
  Sigmoid sigmoid;
  test::check_input_gradient(sigmoid, random_input({3, 4}, 33), 1e-3, 2e-2);
}

TEST(Activations, SigmoidRange) {
  Sigmoid sigmoid;
  const Tensor y = sigmoid.forward(random_input({100}, 34));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
}

// ---------- Flatten / Unflatten ----------

TEST(Flatten, RoundTripShapes) {
  Flatten flatten;
  const Tensor x = random_input({2, 3, 4, 5}, 35);
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  const Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Unflatten, RoundTripShapes) {
  Unflatten unflatten(3, 4, 5);
  const Tensor x = random_input({2, 60}, 36);
  const Tensor y = unflatten.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 3, 4, 5}));
  EXPECT_EQ(unflatten.backward(y).shape(), x.shape());
  EXPECT_THROW(unflatten.forward(Tensor({2, 59})), std::invalid_argument);
}

// ---------- Sequential + flat params ----------

TEST(Sequential, ChainsLayersAndCollectsParams) {
  util::Rng rng(37);
  Sequential net;
  net.emplace<Linear>(8, 6, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(6, 2, rng);
  EXPECT_EQ(net.size(), 3u);
  const Tensor y = net.forward(random_input({4, 8}, 38));
  EXPECT_EQ(y.shape(), (tensor::Shape{4, 2}));
  EXPECT_EQ(num_params(net), 8 * 6 + 6 + 6 * 2 + 2);
}

TEST(Sequential, EndToEndGradient) {
  util::Rng rng(39);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 3 * 3, 4, rng);
  test::check_param_gradients(net, random_input({2, 1, 6, 6}, 40));
}

TEST(FlatParams, RoundTrip) {
  util::Rng rng(41);
  Sequential net;
  net.emplace<Linear>(3, 2, rng);
  net.emplace<Linear>(2, 1, rng);
  const auto flat = get_flat_params(net);
  EXPECT_EQ(flat.size(), static_cast<std::size_t>(num_params(net)));

  std::vector<float> modified = flat;
  for (auto& x : modified) x += 1.0f;
  set_flat_params(net, modified);
  EXPECT_EQ(get_flat_params(net), modified);
}

TEST(FlatParams, SizeMismatchThrows) {
  util::Rng rng(42);
  Sequential net;
  net.emplace<Linear>(3, 2, rng);
  EXPECT_THROW(set_flat_params(net, std::vector<float>(3)),
               std::invalid_argument);
  EXPECT_THROW(set_flat_params(net, std::vector<float>(1000)),
               std::invalid_argument);
  EXPECT_THROW(add_to_flat_grads(net, std::vector<float>(3)),
               std::invalid_argument);
}

TEST(FlatParams, AddToGradsAccumulates) {
  util::Rng rng(43);
  Sequential net;
  net.emplace<Linear>(2, 2, rng);
  net.zero_grad();
  std::vector<float> delta(static_cast<std::size_t>(num_params(net)), 0.5f);
  add_to_flat_grads(net, delta);
  add_to_flat_grads(net, delta);
  for (const float g : get_flat_grads(net)) EXPECT_FLOAT_EQ(g, 1.0f);
}

}  // namespace
}  // namespace zka::nn
