// ZKA-G behavioural tests (Sec. IV-C / Fig. 3 of the paper).
#include "core/zka_g.h"

#include <gtest/gtest.h>

#include "analysis/pca.h"
#include "core/zka_r.h"
#include "nn/loss.h"
#include "util/stats.h"

namespace zka::core {
namespace {

attack::AttackContext context_for(const std::vector<float>& global,
                                  const std::vector<float>& prev) {
  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = prev;
  ctx.round = 1;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;
  return ctx;
}

ZkaOptions small_options() {
  ZkaOptions opts;
  opts.synthetic_size = 8;
  opts.synthesis_epochs = 4;
  opts.latent_dim = 16;
  opts.classifier.epochs = 1;
  opts.classifier.batch_size = 8;
  return opts;
}

TEST(ZkaG, IsZeroKnowledge) {
  ZkaGAttack attack(models::Task::kFashion, small_options(), 1);
  EXPECT_FALSE(attack.needs_benign_updates());
  EXPECT_EQ(attack.name(), "ZKA-G");
}

TEST(ZkaG, CraftsUpdateOfGlobalSize) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(3));
  ZkaGAttack attack(models::Task::kFashion, small_options(), 2);
  const auto update = attack.craft(context_for(global, global));
  ASSERT_EQ(update.size(), global.size());
  EXPECT_GT(util::l2_distance(update, global), 1e-4);
}

TEST(ZkaG, GeneratorTrainingIncreasesCrossEntropyVsDecoy) {
  // The generator maximizes CE(w(t)(G(Z)), Ỹ): the recorded (positive)
  // loss trajectory must trend upward.
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(4));
  ZkaOptions opts = small_options();
  opts.synthesis_epochs = 10;
  opts.synthesis_lr = 0.05f;
  ZkaGAttack attack(models::Task::kFashion, opts, 3);
  attack.craft(context_for(global, global));
  const auto& losses = attack.synthesis_loss_history();
  ASSERT_EQ(losses.size(), 10u);
  EXPECT_GT(losses.back(), losses.front());
}

TEST(ZkaG, GeneratedImagesAvoidDecoyClass) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  auto classifier = factory(5);
  const std::vector<float> global = nn::get_flat_params(*classifier);
  ZkaOptions opts = small_options();
  opts.synthesis_epochs = 15;
  opts.synthesis_lr = 0.05f;
  opts.decoy_label = 3;
  ZkaGAttack attack(models::Task::kFashion, opts, 4);
  attack.craft(context_for(global, global));

  nn::set_flat_params(*classifier, global);
  const tensor::Tensor probs =
      nn::softmax_rows(classifier->forward(attack.last_synthetic_images()));
  // Mean probability of the decoy class must be below the uniform 1/10.
  double decoy_prob = 0.0;
  for (std::int64_t i = 0; i < probs.dim(0); ++i) {
    decoy_prob += probs[i * 10 + 3];
  }
  decoy_prob /= static_cast<double>(probs.dim(0));
  EXPECT_LT(decoy_prob, 0.1);
}

TEST(ZkaG, GeneratorPersistsAcrossRounds) {
  // The same fixed Z must give evolving (trained) but related images; the
  // generator is not reinitialized between craft() calls.
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(6));
  ZkaOptions opts = small_options();
  opts.synthesis_epochs = 2;
  opts.synthesis_lr = 0.005f;
  ZkaGAttack attack(models::Task::kFashion, opts, 5);
  attack.craft(context_for(global, global));
  const tensor::Tensor round1 = attack.last_synthetic_images();
  attack.craft(context_for(global, global));
  const tensor::Tensor round2 = attack.last_synthetic_images();
  // Trained further -> images changed...
  EXPECT_FALSE(tensor::allclose(round1, round2, 1e-6f));
  // ...but not wildly (same generator, same Z).
  EXPECT_LT(util::l2_distance(round1.data(), round2.data()),
            0.5 * round1.l2_norm());
}

TEST(ZkaG, StaticVariantProducesIdenticalImagesEveryRound) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(7));
  ZkaOptions opts = small_options();
  opts.train_synthesis = false;
  ZkaGAttack attack(models::Task::kFashion, opts, 6);
  EXPECT_EQ(attack.name(), "ZKA-G-static");
  attack.craft(context_for(global, global));
  const tensor::Tensor round1 = attack.last_synthetic_images();
  attack.craft(context_for(global, global));
  EXPECT_TRUE(tensor::allclose(round1, attack.last_synthetic_images()));
  EXPECT_TRUE(attack.synthesis_loss_history().empty());
}

TEST(ZkaG, ImagesInTanhRangeAndTaskShape) {
  const auto factory = models::task_model_factory(models::Task::kCifar);
  const std::vector<float> global = nn::get_flat_params(*factory(8));
  ZkaOptions opts = small_options();
  opts.synthetic_size = 4;
  opts.synthesis_epochs = 2;
  ZkaGAttack attack(models::Task::kCifar, opts, 7);
  attack.craft(context_for(global, global));
  const tensor::Tensor& images = attack.last_synthetic_images();
  EXPECT_EQ(images.shape(), (tensor::Shape{4, 3, 32, 32}));
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    ASSERT_GE(images[i], -1.0f);
    ASSERT_LE(images[i], 1.0f);
  }
}

TEST(ZkaFig4, ZkaRSyntheticDataSpreadsWiderThanZkaG) {
  // Fig. 4's core claim: ZKA-R (random full-size images through a filter)
  // produces higher-variance synthetic data than ZKA-G (one low-dim latent
  // through a shared generator).
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(9));

  ZkaOptions opts_r = small_options();
  opts_r.synthetic_size = 12;
  opts_r.synthesis_epochs = 3;
  ZkaRAttack zka_r(models::Task::kFashion, opts_r, 10);
  zka_r.craft(context_for(global, global));

  ZkaOptions opts_g = small_options();
  opts_g.synthetic_size = 12;
  opts_g.synthesis_epochs = 3;
  ZkaGAttack zka_g(models::Task::kFashion, opts_g, 10);
  zka_g.craft(context_for(global, global));

  const double var_r =
      analysis::mean_feature_variance(zka_r.last_synthetic_images());
  const double var_g =
      analysis::mean_feature_variance(zka_g.last_synthetic_images());
  EXPECT_GT(var_r, var_g);
}

}  // namespace
}  // namespace zka::core
