#include "util/prof.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace zka::util::prof {
namespace {

// Minimal recursive-descent JSON syntax checker — enough to prove the
// exported trace is well-formed (Perfetto/chrome://tracing loadable)
// without a third-party parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  bool expect(char ch) {
    if (pos_ < s_.size() && s_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool peek(char ch) {
    if (pos_ < s_.size() && s_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiled) GTEST_SKIP() << "built with ZKA_PROF=OFF";
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    if (kCompiled) {
      set_enabled(false);
      reset();
    }
  }
};

std::uint64_t count_of(const std::vector<LabelSummary>& summaries,
                       const std::string& label) {
  for (const auto& s : summaries) {
    if (s.label == label) return s.count;
  }
  return 0;
}

TEST_F(ProfTest, DisabledRecordsNothing) {
  set_enabled(false);
  {
    ZKA_PROF_SCOPE("test/disabled");
    ZKA_PROF_COUNT("test/disabled_counter", 7);
  }
  EXPECT_TRUE(events().empty());
  EXPECT_TRUE(summary().empty());
  EXPECT_EQ(count_of(summary(), "test/disabled"), 0u);
  for (const auto& c : counters()) {
    EXPECT_NE(c.name, "test/disabled_counter");
  }
}

TEST_F(ProfTest, NestedScopesRecordBoth) {
  {
    ZKA_PROF_SCOPE("test/outer");
    for (int i = 0; i < 3; ++i) {
      ZKA_PROF_SCOPE("test/inner");
    }
  }
  const auto sums = summary();
  EXPECT_EQ(count_of(sums, "test/outer"), 1u);
  EXPECT_EQ(count_of(sums, "test/inner"), 3u);
  // The outer scope's duration covers the inner ones.
  std::uint64_t outer_total = 0;
  std::uint64_t inner_total = 0;
  for (const auto& s : sums) {
    if (s.label == "test/outer") outer_total = s.total_ns;
    if (s.label == "test/inner") inner_total = s.total_ns;
  }
  EXPECT_GE(outer_total, inner_total);
}

TEST_F(ProfTest, CountersAccumulateAndSort) {
  for (int i = 0; i < 5; ++i) {
    ZKA_PROF_COUNT("test/z_counter", 2);
    ZKA_PROF_COUNT("test/a_counter", 1);
  }
  const auto cs = counters();
  std::uint64_t a = 0;
  std::uint64_t z = 0;
  for (const auto& c : cs) {
    if (c.name == "test/a_counter") a = c.value;
    if (c.name == "test/z_counter") z = c.value;
  }
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(z, 10u);
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_LT(cs[i - 1].name, cs[i].name) << "counters must sort by name";
  }
}

TEST_F(ProfTest, SummaryPercentilesAreOrdered) {
  for (int i = 0; i < 200; ++i) {
    ZKA_PROF_SCOPE("test/percentiles");
  }
  bool found = false;
  for (const auto& s : summary()) {
    if (s.label != "test/percentiles") continue;
    found = true;
    EXPECT_EQ(s.count, 200u);
    EXPECT_LE(s.min_ns, s.p50_ns);
    EXPECT_LE(s.p50_ns, s.p99_ns);
    EXPECT_LE(s.p99_ns, s.max_ns);
    EXPECT_GE(s.total_ns, s.max_ns);
  }
  EXPECT_TRUE(found);
}

TEST_F(ProfTest, ThreadMergeIsDeterministic) {
  // The merged flush must not depend on the schedule: same per-thread work
  // -> same label counts, counter totals, and a totally ordered event list.
  auto run_workload = [] {
    reset();
    ThreadPool pool(4);
    pool.parallel_for(64, [](std::size_t i) {
      ZKA_PROF_SCOPE("test/mt_scope");
      ZKA_PROF_COUNT("test/mt_counter", i + 1);
    });
  };

  run_workload();
  const auto sums1 = summary();
  const auto ctrs1 = counters();
  run_workload();
  const auto sums2 = summary();
  const auto ctrs2 = counters();

  EXPECT_EQ(count_of(sums1, "test/mt_scope"), 64u);
  EXPECT_EQ(count_of(sums2, "test/mt_scope"), 64u);
  std::uint64_t total1 = 0;
  std::uint64_t total2 = 0;
  for (const auto& c : ctrs1) {
    if (c.name == "test/mt_counter") total1 = c.value;
  }
  for (const auto& c : ctrs2) {
    if (c.name == "test/mt_counter") total2 = c.value;
  }
  EXPECT_EQ(total1, 64u * 65u / 2u);
  EXPECT_EQ(total2, 64u * 65u / 2u);

  // Deterministic merge order: (start, tid, dur desc, label) strict order.
  const auto evs = events();
  for (std::size_t i = 1; i < evs.size(); ++i) {
    const auto& a = evs[i - 1];
    const auto& b = evs[i];
    const bool ordered =
        a.start_ns < b.start_ns ||
        (a.start_ns == b.start_ns &&
         (a.tid < b.tid ||
          (a.tid == b.tid &&
           (a.dur_ns > b.dur_ns ||
            (a.dur_ns == b.dur_ns && a.label <= b.label)))));
    EXPECT_TRUE(ordered) << "events out of deterministic order at " << i;
  }
}

TEST_F(ProfTest, RingOverflowDropsOldestAndCounts) {
  const std::size_t cap = ring_capacity();
  ASSERT_GT(cap, 0u);
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < cap + extra; ++i) {
    ZKA_PROF_SCOPE("test/overflow");
  }
  EXPECT_GE(dropped_events(), extra);
  std::uint64_t retained = 0;
  for (const auto& e : events()) {
    if (e.label == "test/overflow") ++retained;
  }
  EXPECT_LE(retained, cap);
  EXPECT_GT(retained, 0u);
}

TEST_F(ProfTest, ChromeTraceJsonIsValid) {
  {
    ZKA_PROF_SCOPE("test/json \"quoted\"\nlabel");
    ZKA_PROF_COUNT("test/json_counter", 3);
  }
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"zkaCounters\""), std::string::npos);
  EXPECT_NE(json.find("\"zkaSummary\""), std::string::npos);
}

TEST_F(ProfTest, ResetClearsEventsAndCounters) {
  {
    ZKA_PROF_SCOPE("test/reset");
    ZKA_PROF_COUNT("test/reset_counter", 9);
  }
  ASSERT_FALSE(events().empty());
  reset();
  EXPECT_TRUE(events().empty());
  EXPECT_EQ(dropped_events(), 0u);
  for (const auto& c : counters()) {
    EXPECT_NE(c.name, "test/reset_counter") << "reset must zero counters";
  }
}

TEST_F(ProfTest, WriteChromeTraceBadPathThrows) {
  EXPECT_THROW(write_chrome_trace("/nonexistent-zka-dir/trace.json"),
               ContractViolation);
}

TEST(ProfClock, NowNsIsMonotonic) {
  std::uint64_t prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(ProfDisabledByDefault, EnabledTracksCompileAndRuntimeSwitch) {
  // The ZKA_PROF *runtime* default comes from the environment; the tests
  // above opt in explicitly. Here: toggling works and respects kCompiled.
  set_enabled(true);
  EXPECT_EQ(enabled(), kCompiled);
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace zka::util::prof
