// Cross-module integration: every attack runs against every defense in a
// (very small) end-to-end FL simulation without errors, with coherent
// bookkeeping. This is the paper's full attack x defense grid in miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "fl/experiment.h"
#include "fl/metrics.h"

namespace zka::fl {
namespace {

struct GridCase {
  const char* defense;
  AttackKind attack;
};

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string name = std::string(info.param.defense) + "_" +
                     attack_kind_name(info.param.attack);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class AttackDefenseGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(AttackDefenseGrid, RunsEndToEndWithCoherentRecords) {
  SimulationConfig config;
  config.num_clients = 15;
  config.clients_per_round = 5;
  config.rounds = 3;
  config.train_size = 150;
  config.test_size = 60;
  config.malicious_fraction = 0.2;
  config.defense = GetParam().defense;
  config.defense_f = 1;
  config.seed = 11;

  Simulation sim(config);
  core::ZkaOptions zka;
  zka.synthetic_size = 4;
  zka.synthesis_epochs = 2;
  zka.latent_dim = 8;
  const auto attack = make_attack(GetParam().attack, sim, zka, 13);
  const SimulationResult result = sim.run(attack.get());

  ASSERT_EQ(result.rounds.size(), 3u);
  for (const RoundRecord& r : result.rounds) {
    EXPECT_EQ(r.malicious_selected + r.benign_selected, 5);
    EXPECT_LE(r.malicious_passed, r.malicious_selected);
    EXPECT_LE(r.benign_passed, r.benign_selected);
  }
  EXPECT_GE(result.max_accuracy, 0.0);
  EXPECT_LE(result.max_accuracy, 1.0);
  const bool selecting = result.defense_selects;
  EXPECT_EQ(selecting, config.defense == std::string("mkrum") ||
                           config.defense == std::string("bulyan") ||
                           config.defense == std::string("foolsgold") ||
                           config.defense == std::string("krum") ||
                           config.defense == std::string("dnc"));
}

constexpr AttackKind kAllAttacks[] = {
    AttackKind::kFang,          AttackKind::kLie,
    AttackKind::kMinMax,        AttackKind::kZkaR,
    AttackKind::kZkaG,          AttackKind::kRealData,
    AttackKind::kRandomWeights, AttackKind::kMinSum,
    AttackKind::kFreeRider,     AttackKind::kLabelFlip,
    AttackKind::kFangKrum,      AttackKind::kZkaGAdaptive,
};

std::vector<GridCase> full_grid() {
  std::vector<GridCase> cases;
  for (const char* defense : {"fedavg", "mkrum", "trmean", "bulyan",
                              "median", "geomedian", "centeredclip",
                              "foolsgold", "normclip", "dnc"}) {
    for (const AttackKind attack : kAllAttacks) {
      cases.push_back({defense, attack});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, AttackDefenseGrid,
                         ::testing::ValuesIn(full_grid()), grid_case_name);

TEST(Integration, ZkaAttacksDegradeAccuracyUnderPlainFedAvg) {
  // Without any defense, continuous poisoned updates must hurt accuracy.
  SimulationConfig config;
  config.num_clients = 20;
  config.clients_per_round = 6;
  config.rounds = 8;
  config.train_size = 400;
  config.test_size = 150;
  config.seed = 17;

  BaselineCache cache;
  const double natk = cache.attack_free_accuracy(config);

  config.malicious_fraction = 0.3;
  core::ZkaOptions zka;
  zka.synthetic_size = 12;
  zka.synthesis_epochs = 3;
  for (const AttackKind kind : {AttackKind::kZkaR, AttackKind::kZkaG}) {
    Simulation sim(config);
    const auto attack = make_attack(kind, sim, zka, 19);
    const auto result = sim.run(attack.get());
    EXPECT_LT(result.max_accuracy, natk)
        << attack_kind_name(kind) << " did not reduce accuracy";
  }
}

TEST(Integration, DefenseImprovesRobustnessOverFedAvg) {
  // mKrum should blunt a crude attack relative to plain averaging.
  SimulationConfig config;
  config.num_clients = 20;
  config.clients_per_round = 8;
  config.rounds = 8;
  config.train_size = 400;
  config.test_size = 150;
  config.malicious_fraction = 0.25;
  config.defense_f = 2;
  config.seed = 23;

  core::ZkaOptions zka;
  auto run_with = [&](const std::string& defense) {
    SimulationConfig c = config;
    c.defense = defense;
    Simulation sim(c);
    const auto attack = make_attack(AttackKind::kRandomWeights, sim, zka, 29);
    return sim.run(attack.get()).max_accuracy;
  };
  EXPECT_GT(run_with("mkrum"), run_with("fedavg"));
}

}  // namespace
}  // namespace zka::fl
