#include "tensor/ops.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace zka::tensor {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

// Naive triple-loop reference for C = A @ B.
Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a[i * a.dim(1) + k]) * b[k * b.dim(1) + j];
      }
      c[i * b.dim(1) + j] = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Gemm, MatmulMatchesReference) {
  const Tensor a = random_tensor({7, 5}, 1);
  const Tensor b = random_tensor({5, 9}, 2);
  EXPECT_TRUE(allclose(matmul(a, b), matmul_reference(a, b), 1e-4f));
}

TEST(Gemm, MatmulHandCase) {
  const Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, MatmulValidatesShapes) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6, 1})), std::invalid_argument);
}

TEST(Gemm, AlphaBetaSemantics) {
  const Tensor a = random_tensor({3, 4}, 3);
  const Tensor b = random_tensor({4, 2}, 4);
  Tensor c({3, 2}, 1.0f);
  // C = 2*A@B + 3*C.
  gemm(3, 2, 4, 2.0f, a.raw(), b.raw(), 3.0f, c.raw());
  const Tensor ref = matmul_reference(a, b);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-4f);
  }
}

TEST(Gemm, AtBMatchesTransposeReference) {
  const Tensor a = random_tensor({6, 3}, 5);  // [K, M]
  const Tensor b = random_tensor({6, 4}, 6);  // [K, N]
  Tensor c({3, 4});
  gemm_at_b(3, 4, 6, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  EXPECT_TRUE(allclose(c, matmul_reference(transpose2d(a), b), 1e-4f));
}

TEST(Gemm, ABtMatchesTransposeReference) {
  const Tensor a = random_tensor({3, 6}, 7);  // [M, K]
  const Tensor b = random_tensor({4, 6}, 8);  // [N, K]
  Tensor c({3, 4});
  gemm_a_bt(3, 4, 6, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  EXPECT_TRUE(allclose(c, matmul_reference(a, transpose2d(b)), 1e-4f));
}

TEST(Gemm, AccumulationWithBetaOne) {
  const Tensor a = random_tensor({4, 2}, 9);  // [K, M] for at_b
  const Tensor b = random_tensor({4, 3}, 10);
  Tensor c({2, 3}, 2.0f);
  gemm_at_b(2, 3, 4, 1.0f, a.raw(), b.raw(), 1.0f, c.raw());
  const Tensor ref = matmul_reference(transpose2d(a), b);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_NEAR(c[i], ref[i] + 2.0f, 1e-4f);
}

TEST(Transpose, RoundTrip) {
  const Tensor a = random_tensor({5, 3}, 11);
  EXPECT_TRUE(allclose(transpose2d(transpose2d(a)), a));
  EXPECT_THROW(transpose2d(Tensor({4})), std::invalid_argument);
}

TEST(ConvGeometry, OutputSizes) {
  const ConvGeometry g{3, 28, 28, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 28);
  EXPECT_EQ(g.out_w(), 28);
  EXPECT_EQ(g.patch_size(), 27);
  const ConvGeometry strided{1, 28, 28, 4, 2, 1};
  EXPECT_EQ(strided.out_h(), 14);
}

TEST(Im2Col, IdentityKernelReproducesImage) {
  // 1x1 kernel, stride 1, no padding: columns equal the image.
  const ConvGeometry g{2, 3, 3, 1, 1, 0};
  const Tensor img = random_tensor({2, 3, 3}, 12);
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 9));
  im2col(g, img.raw(), col.data());
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_FLOAT_EQ(col[static_cast<std::size_t>(i)], img[i]);
  }
}

TEST(Im2Col, PaddingProducesZeros) {
  const ConvGeometry g{1, 2, 2, 3, 1, 1};
  const Tensor img({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() *
                                                  g.out_h() * g.out_w()));
  im2col(g, img.raw(), col.data());
  // Kernel tap (0,0) at output (0,0) reads image(-1,-1) -> 0.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Center tap (1,1) at output (0,0) reads image(0,0) = 1.
  const std::int64_t spatial = g.out_h() * g.out_w();
  EXPECT_FLOAT_EQ(col[static_cast<std::size_t>(4 * spatial)], 1.0f);
}

TEST(Im2ColCol2Im, AdjointDotProductIdentity) {
  // <im2col(x), y> must equal <x, col2im(y)> since col2im = im2col^T.
  const ConvGeometry g{2, 6, 5, 3, 2, 1};
  const std::int64_t cols = g.patch_size() * g.out_h() * g.out_w();
  const Tensor x = random_tensor({2, 6, 5}, 13);
  const Tensor y = random_tensor({cols}, 14);

  std::vector<float> x_cols(static_cast<std::size_t>(cols));
  im2col(g, x.raw(), x_cols.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols; ++i) {
    lhs += static_cast<double>(x_cols[static_cast<std::size_t>(i)]) * y[i];
  }

  Tensor x_back({2, 6, 5});
  col2im(g, y.raw(), x_back.raw());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * x_back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2Im, AccumulatesOverlaps) {
  // 2x2 kernel, stride 1 on a 3x3 image: center pixel is covered by all
  // four windows; all-ones columns must sum to the coverage count.
  const ConvGeometry g{1, 3, 3, 2, 1, 0};
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 4), 1.0f);
  Tensor img({1, 3, 3});
  col2im(g, col.data(), img.raw());
  EXPECT_FLOAT_EQ(img.at({0, 1, 1}), 4.0f);  // center: 4 windows
  EXPECT_FLOAT_EQ(img.at({0, 0, 0}), 1.0f);  // corner: 1 window
  EXPECT_FLOAT_EQ(img.at({0, 0, 1}), 2.0f);  // edge: 2 windows
}

}  // namespace
}  // namespace zka::tensor
