#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/rng.h"

namespace zka::tensor {
namespace {

// Force a multi-worker pool even on single-core CI machines so the chunked
// (threaded) GEMM path is exercised by the determinism tests below. Runs at
// static init, before the global pool's first (lazy) construction; an
// explicit ZKA_THREADS in the environment still wins (overwrite = 0).
const bool kForcePoolWorkers = [] {
  setenv("ZKA_THREADS", "4", 0);
  return true;
}();

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

// Naive triple-loop reference for C = A @ B.
Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a[i * a.dim(1) + k]) * b[k * b.dim(1) + j];
      }
      c[i * b.dim(1) + j] = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Gemm, MatmulMatchesReference) {
  const Tensor a = random_tensor({7, 5}, 1);
  const Tensor b = random_tensor({5, 9}, 2);
  EXPECT_TRUE(allclose(matmul(a, b), matmul_reference(a, b), 1e-4f));
}

TEST(Gemm, MatmulHandCase) {
  const Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, MatmulValidatesShapes) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6, 1})), std::invalid_argument);
}

TEST(Gemm, AlphaBetaSemantics) {
  const Tensor a = random_tensor({3, 4}, 3);
  const Tensor b = random_tensor({4, 2}, 4);
  Tensor c({3, 2}, 1.0f);
  // C = 2*A@B + 3*C.
  gemm(3, 2, 4, 2.0f, a.raw(), b.raw(), 3.0f, c.raw());
  const Tensor ref = matmul_reference(a, b);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-4f);
  }
}

TEST(Gemm, AtBMatchesTransposeReference) {
  const Tensor a = random_tensor({6, 3}, 5);  // [K, M]
  const Tensor b = random_tensor({6, 4}, 6);  // [K, N]
  Tensor c({3, 4});
  gemm_at_b(3, 4, 6, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  EXPECT_TRUE(allclose(c, matmul_reference(transpose2d(a), b), 1e-4f));
}

TEST(Gemm, ABtMatchesTransposeReference) {
  const Tensor a = random_tensor({3, 6}, 7);  // [M, K]
  const Tensor b = random_tensor({4, 6}, 8);  // [N, K]
  Tensor c({3, 4});
  gemm_a_bt(3, 4, 6, 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  EXPECT_TRUE(allclose(c, matmul_reference(a, transpose2d(b)), 1e-4f));
}

TEST(Gemm, AccumulationWithBetaOne) {
  const Tensor a = random_tensor({4, 2}, 9);  // [K, M] for at_b
  const Tensor b = random_tensor({4, 3}, 10);
  Tensor c({2, 3}, 2.0f);
  gemm_at_b(2, 3, 4, 1.0f, a.raw(), b.raw(), 1.0f, c.raw());
  const Tensor ref = matmul_reference(transpose2d(a), b);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_NEAR(c[i], ref[i] + 2.0f, 1e-4f);
}

// ---------- blocked-kernel coverage ----------

enum class GemmRefLayout { kAB, kAtB, kABt };

// Double-precision reference for all three layouts:
// C = alpha * op(A) @ op(B) + beta * C.
void gemm_reference(GemmRefLayout layout, std::int64_t m, std::int64_t n,
                    std::int64_t k, float alpha, const float* a,
                    const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = layout == GemmRefLayout::kAtB ? a[p * m + i]
                                                       : a[i * k + p];
        const float bv = layout == GemmRefLayout::kABt ? b[j * k + p]
                                                       : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] =
          static_cast<float>(alpha * acc + static_cast<double>(beta) * c[i * n + j]);
    }
  }
}

std::vector<float> random_vec(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Shapes chosen to straddle every blocking boundary of the packed kernel:
// the 4-row register tile, the 32-column microtile, the 256-deep k panel,
// and the 256-wide cache block — plus ragged tails on each.
struct GemmShape {
  std::int64_t m, n, k;
};
constexpr GemmShape kBoundaryShapes[] = {
    {1, 1, 1},     {3, 5, 7},     {4, 32, 256},  {5, 33, 257},
    {37, 61, 129}, {70, 130, 300}, {16, 300, 72}, {100, 3, 513},
};

TEST(GemmBlocked, AllLayoutsMatchDoubleReferenceAcrossTileBoundaries) {
  int idx = 0;
  for (const auto& s : kBoundaryShapes) {
    const auto seed = static_cast<std::uint64_t>(100 + 10 * idx++);
    const auto a = random_vec(s.m * s.k, seed);
    const auto b = random_vec(s.k * s.n, seed + 1);
    for (int layout = 0; layout < 3; ++layout) {
      std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.25f);
      std::vector<float> ref = c;
      const float alpha = 1.5f, beta = 0.5f;
      switch (layout) {
        case 0:
          gemm(s.m, s.n, s.k, alpha, a.data(), b.data(), beta, c.data());
          gemm_reference(GemmRefLayout::kAB, s.m, s.n, s.k, alpha, a.data(),
                         b.data(), beta, ref.data());
          break;
        case 1:  // A is [K, M]
          gemm_at_b(s.m, s.n, s.k, alpha, a.data(), b.data(), beta, c.data());
          gemm_reference(GemmRefLayout::kAtB, s.m, s.n, s.k, alpha, a.data(),
                         b.data(), beta, ref.data());
          break;
        default:  // B is [N, K]
          gemm_a_bt(s.m, s.n, s.k, alpha, a.data(), b.data(), beta, c.data());
          gemm_reference(GemmRefLayout::kABt, s.m, s.n, s.k, alpha, a.data(),
                         b.data(), beta, ref.data());
          break;
      }
      float max_err = 0.0f;
      for (std::size_t i = 0; i < c.size(); ++i) {
        max_err = std::max(max_err, std::abs(c[i] - ref[i]));
      }
      EXPECT_LT(max_err, 1e-3f) << "shape (" << s.m << "," << s.n << ","
                                << s.k << ") layout " << layout;
    }
  }
}

TEST(GemmBlocked, BackendNameIsReported) {
  const char* name = gemm_backend_name();
  ASSERT_NE(name, nullptr);
  EXPECT_GT(std::strlen(name), 0u);
}

TEST(GemmBlocked, BitwiseIdenticalWithAndWithoutKernelParallelism) {
  // Large enough to cross the flop threshold and split into several chunks
  // (the pool is forced to 4 workers above). The unified accumulation
  // policy guarantees bitwise-equal output for every partition.
  const std::int64_t m = 193, n = 517, k = 301;
  const auto a = random_vec(m * k, 900);
  const auto b = random_vec(k * n, 901);
  std::vector<float> c_par(static_cast<std::size_t>(m * n));
  std::vector<float> c_seq(c_par.size());
  std::vector<float> c_par2(c_par.size());

  ASSERT_TRUE(kernel_parallelism_enabled());
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_par.data());
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_par2.data());
  set_kernel_parallelism(false);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_seq.data());
  set_kernel_parallelism(true);

  EXPECT_EQ(std::memcmp(c_par.data(), c_par2.data(),
                        c_par.size() * sizeof(float)),
            0)
      << "repeated threaded runs differ";
  EXPECT_EQ(std::memcmp(c_par.data(), c_seq.data(),
                        c_par.size() * sizeof(float)),
            0)
      << "threaded and sequential runs differ";
}

TEST(GemmBlocked, SkinnyMatricesChunkColumnsDeterministically) {
  // m = 8 gives only two 4-row tiles, so the driver chunks columns instead;
  // exercise that branch and its bitwise reproducibility.
  const std::int64_t m = 8, n = 4096, k = 200;
  const auto a = random_vec(m * k, 902);
  const auto b = random_vec(k * n, 903);
  std::vector<float> c_par(static_cast<std::size_t>(m * n));
  std::vector<float> c_seq(c_par.size());
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_par.data());
  set_kernel_parallelism(false);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_seq.data());
  set_kernel_parallelism(true);
  EXPECT_EQ(std::memcmp(c_par.data(), c_seq.data(),
                        c_par.size() * sizeof(float)),
            0);
}

TEST(Im2ColBatched, MatchesPerSampleLowering) {
  const ConvGeometry g{3, 9, 7, 3, 2, 1};
  const std::int64_t batch = 5;
  const std::int64_t spatial = g.out_h() * g.out_w();
  const std::int64_t patch = g.patch_size();
  const std::int64_t image_size = g.in_channels * g.in_h * g.in_w;
  const auto images = random_vec(batch * image_size, 950);

  std::vector<float> batched(static_cast<std::size_t>(patch * batch * spatial));
  im2col_batched(g, images.data(), batch, batched.data());

  std::vector<float> single(static_cast<std::size_t>(patch * spatial));
  for (std::int64_t s = 0; s < batch; ++s) {
    im2col(g, images.data() + s * image_size, single.data());
    for (std::int64_t r = 0; r < patch; ++r) {
      for (std::int64_t i = 0; i < spatial; ++i) {
        EXPECT_EQ(batched[static_cast<std::size_t>(r * batch * spatial +
                                                   s * spatial + i)],
                  single[static_cast<std::size_t>(r * spatial + i)])
            << "sample " << s << " row " << r << " col " << i;
      }
    }
  }
}

TEST(Col2ImBatched, MatchesPerSampleScatter) {
  const ConvGeometry g{2, 8, 6, 4, 2, 1};
  const std::int64_t batch = 4;
  const std::int64_t spatial = g.out_h() * g.out_w();
  const std::int64_t patch = g.patch_size();
  const std::int64_t image_size = g.in_channels * g.in_h * g.in_w;
  const auto col = random_vec(patch * batch * spatial, 960);

  std::vector<float> batched(static_cast<std::size_t>(batch * image_size));
  col2im_batched(g, col.data(), batch, batched.data());

  for (std::int64_t s = 0; s < batch; ++s) {
    // Repack sample s's column slab into the single-sample layout.
    std::vector<float> slab(static_cast<std::size_t>(patch * spatial));
    for (std::int64_t r = 0; r < patch; ++r) {
      std::memcpy(slab.data() + r * spatial,
                  col.data() + r * batch * spatial + s * spatial,
                  static_cast<std::size_t>(spatial) * sizeof(float));
    }
    std::vector<float> image(static_cast<std::size_t>(image_size), 0.0f);
    col2im(g, slab.data(), image.data());
    for (std::int64_t i = 0; i < image_size; ++i) {
      EXPECT_EQ(batched[static_cast<std::size_t>(s * image_size + i)],
                image[static_cast<std::size_t>(i)])
          << "sample " << s << " element " << i;
    }
  }
}

TEST(Im2Col, StridedAndPaddedMatchesDirectIndexing) {
  // Cross-check the span-based fast path against naive per-element
  // bounds-checked indexing on an awkward geometry (stride 3, pad 2).
  const ConvGeometry g{2, 10, 11, 5, 3, 2};
  const std::int64_t spatial = g.out_h() * g.out_w();
  const auto image = random_vec(g.in_channels * g.in_h * g.in_w, 970);
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * spatial),
                         -7.0f);
  im2col(g, image.data(), col.data());
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        for (std::int64_t y = 0; y < g.out_h(); ++y) {
          for (std::int64_t x = 0; x < g.out_w(); ++x) {
            const std::int64_t iy = y * g.stride - g.pad + ky;
            const std::int64_t ix = x * g.stride - g.pad + kx;
            const float want =
                (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                    ? image[static_cast<std::size_t>(
                          (c * g.in_h + iy) * g.in_w + ix)]
                    : 0.0f;
            EXPECT_EQ(col[static_cast<std::size_t>(
                          row * spatial + y * g.out_w() + x)],
                      want)
                << "row " << row << " y " << y << " x " << x;
          }
        }
      }
    }
  }
}

TEST(Transpose, RoundTrip) {
  const Tensor a = random_tensor({5, 3}, 11);
  EXPECT_TRUE(allclose(transpose2d(transpose2d(a)), a));
  EXPECT_THROW(transpose2d(Tensor({4})), std::invalid_argument);
}

TEST(ConvGeometry, OutputSizes) {
  const ConvGeometry g{3, 28, 28, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 28);
  EXPECT_EQ(g.out_w(), 28);
  EXPECT_EQ(g.patch_size(), 27);
  const ConvGeometry strided{1, 28, 28, 4, 2, 1};
  EXPECT_EQ(strided.out_h(), 14);
}

TEST(Im2Col, IdentityKernelReproducesImage) {
  // 1x1 kernel, stride 1, no padding: columns equal the image.
  const ConvGeometry g{2, 3, 3, 1, 1, 0};
  const Tensor img = random_tensor({2, 3, 3}, 12);
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 9));
  im2col(g, img.raw(), col.data());
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_FLOAT_EQ(col[static_cast<std::size_t>(i)], img[i]);
  }
}

TEST(Im2Col, PaddingProducesZeros) {
  const ConvGeometry g{1, 2, 2, 3, 1, 1};
  const Tensor img({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() *
                                                  g.out_h() * g.out_w()));
  im2col(g, img.raw(), col.data());
  // Kernel tap (0,0) at output (0,0) reads image(-1,-1) -> 0.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Center tap (1,1) at output (0,0) reads image(0,0) = 1.
  const std::int64_t spatial = g.out_h() * g.out_w();
  EXPECT_FLOAT_EQ(col[static_cast<std::size_t>(4 * spatial)], 1.0f);
}

TEST(Im2ColCol2Im, AdjointDotProductIdentity) {
  // <im2col(x), y> must equal <x, col2im(y)> since col2im = im2col^T.
  const ConvGeometry g{2, 6, 5, 3, 2, 1};
  const std::int64_t cols = g.patch_size() * g.out_h() * g.out_w();
  const Tensor x = random_tensor({2, 6, 5}, 13);
  const Tensor y = random_tensor({cols}, 14);

  std::vector<float> x_cols(static_cast<std::size_t>(cols));
  im2col(g, x.raw(), x_cols.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols; ++i) {
    lhs += static_cast<double>(x_cols[static_cast<std::size_t>(i)]) * y[i];
  }

  Tensor x_back({2, 6, 5});
  col2im(g, y.raw(), x_back.raw());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * x_back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2Im, AccumulatesOverlaps) {
  // 2x2 kernel, stride 1 on a 3x3 image: center pixel is covered by all
  // four windows; all-ones columns must sum to the coverage count.
  const ConvGeometry g{1, 3, 3, 2, 1, 0};
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 4), 1.0f);
  Tensor img({1, 3, 3});
  col2im(g, col.data(), img.raw());
  EXPECT_FLOAT_EQ(img.at({0, 1, 1}), 4.0f);  // center: 4 windows
  EXPECT_FLOAT_EQ(img.at({0, 0, 0}), 1.0f);  // corner: 1 window
  EXPECT_FLOAT_EQ(img.at({0, 0, 1}), 2.0f);  // edge: 2 windows
}

}  // namespace
}  // namespace zka::tensor
