#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace zka::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "asr"});
  t.add_row({"ZKA-R", "35.85"});
  t.add_row({"LIE", "11.34"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | asr   |"), std::string::npos);
  EXPECT_NE(s.find("| ZKA-R | 35.85 |"), std::string::npos);
  EXPECT_NE(s.find("| LIE   | 11.34 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(csv.find("\"plain\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 1), "3.0");
  EXPECT_EQ(Table::fmt(-0.5, 3), "-0.500");
}

TEST(Table, WriteCsvRoundtrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const auto path =
      std::filesystem::temp_directory_path() / "zka_table_test.csv";
  t.write_csv(path.string());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"a"});
  t.add_row({"1"});
  // ZKA_CHECK-style failure: a ContractViolation (an invalid_argument), so
  // an unopenable output path can never silently drop results.
  EXPECT_THROW(t.write_csv("/nonexistent-dir-zka/x.csv"), ContractViolation);
  EXPECT_THROW(t.write_csv("/nonexistent-dir-zka/x.csv"),
               std::invalid_argument);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace zka::util
