#include "fl/client.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/loss.h"
#include "util/stats.h"

namespace zka::fl {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::make_synthetic_dataset(models::Task::kFashion, 40, 11);
    factory_ = models::task_model_factory(models::Task::kFashion);
    global_ = nn::get_flat_params(*factory_(99));
  }

  std::vector<std::int64_t> all_indices() const {
    std::vector<std::int64_t> idx(static_cast<std::size_t>(dataset_.size()));
    for (std::int64_t i = 0; i < dataset_.size(); ++i) {
      idx[static_cast<std::size_t>(i)] = i;
    }
    return idx;
  }

  data::Dataset dataset_;
  models::ModelFactory factory_;
  std::vector<float> global_;
};

TEST_F(ClientTest, TrainIsDeterministicGivenSeed) {
  Client client(0, dataset_, all_indices(), factory_, {});
  EXPECT_EQ(client.train(global_, 123), client.train(global_, 123));
  EXPECT_NE(client.train(global_, 123), client.train(global_, 124));
}

TEST_F(ClientTest, TrainImprovesLocalFit) {
  ClientOptions opts;
  opts.local_epochs = 3;
  opts.learning_rate = 0.05f;
  Client client(0, dataset_, all_indices(), factory_, opts);
  const auto update = client.train(global_, 5);

  auto model = factory_(0);
  nn::SoftmaxCrossEntropy ce;
  nn::set_flat_params(*model, global_);
  const double loss_before =
      ce.forward(model->forward(dataset_.images), dataset_.labels);
  nn::set_flat_params(*model, update);
  const double loss_after =
      ce.forward(model->forward(dataset_.images), dataset_.labels);
  EXPECT_LT(loss_after, loss_before);
}

TEST_F(ClientTest, EmptyShardReturnsGlobalUnchanged) {
  Client client(1, dataset_, {}, factory_, {});
  EXPECT_EQ(client.train(global_, 1), global_);
  EXPECT_EQ(client.num_samples(), 0);
}

TEST_F(ClientTest, UpdateStaysNearGlobalForOneEpoch) {
  Client client(2, dataset_, all_indices(), factory_, {});
  const auto update = client.train(global_, 7);
  EXPECT_GT(util::l2_distance(update, global_), 1e-5);
  EXPECT_LT(util::l2_distance(update, global_), 50.0);
}

TEST_F(ClientTest, IdAndIndicesAccessors) {
  Client client(42, dataset_, {1, 2, 3}, factory_, {});
  EXPECT_EQ(client.id(), 42);
  EXPECT_EQ(client.num_samples(), 3);
  EXPECT_EQ(client.indices(), (std::vector<std::int64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace zka::fl
