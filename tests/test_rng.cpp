#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace zka::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.split(3);
  Rng child2 = parent2.split(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());

  Rng parent3(7);
  Rng other = parent3.split(4);
  Rng base = Rng(7).split(3);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (base() == other()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    counts[static_cast<std::size_t>(k)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 5000, 350);  // ~5 sigma for a fair die
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalMeanStddevParameters) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(16);
  for (const double shape : {0.5, 1.0, 2.0, 5.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double g = rng.gamma(shape);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, 0.08 * shape + 0.02) << "shape " << shape;
  }
}

class DirichletTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletTest, SumsToOneAndNonNegative) {
  Rng rng(17);
  const double alpha = GetParam();
  for (int rep = 0; rep < 50; ++rep) {
    const auto p = rng.dirichlet(alpha, 8);
    ASSERT_EQ(p.size(), 8u);
    double sum = 0.0;
    for (const double x : p) {
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletTest,
                         ::testing::Values(0.1, 0.5, 0.9, 5.0, 50.0));

TEST(Rng, DirichletConcentrationControlsSpread) {
  // Small alpha -> spiky samples (high max); large alpha -> near uniform.
  Rng rng(18);
  double max_small = 0.0;
  double max_large = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    const auto a = rng.dirichlet(0.1, 10);
    const auto b = rng.dirichlet(50.0, 10);
    max_small += *std::max_element(a.begin(), a.end());
    max_large += *std::max_element(b.begin(), b.end());
  }
  EXPECT_GT(max_small / reps, 0.5);
  EXPECT_LT(max_large / reps, 0.25);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(19);
  for (int rep = 0; rep < 20; ++rep) {
    const auto s = rng.sample_without_replacement(100, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (const auto i : s) EXPECT_LT(i, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(20);
  auto s = rng.sample_without_replacement(8, 8);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(21);
  std::vector<int> counts(20, 0);
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    for (const auto k : rng.sample_without_replacement(20, 5)) {
      counts[k]++;
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, reps / 4, 400);  // each index appears w.p. 5/20
  }
}

TEST(Rng, FloydSampleDistinctInRangeAndDeterministic) {
  // Above kDenseSampleMax the sampler switches to Floyd's O(k) algorithm;
  // the contract (k distinct indices < n, deterministic in the seed) is
  // identical even though the draw sequence differs from the dense regime.
  const std::size_t n = 1u << 20;  // ~1e6, way past the dense cutoff
  Rng a(23);
  Rng b(23);
  const auto s = a.sample_without_replacement(n, 500);
  ASSERT_EQ(s.size(), 500u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 500u);
  for (const auto i : s) EXPECT_LT(i, n);
  EXPECT_EQ(s, b.sample_without_replacement(n, 500));
  EXPECT_NE(s, a.sample_without_replacement(n, 500));  // stream advances
}

TEST(Rng, FloydSampleFullSetIsPermutation) {
  const std::size_t n = Rng::kDenseSampleMax + 100;
  Rng rng(24);
  auto s = rng.sample_without_replacement(n, n);
  std::sort(s.begin(), s.end());
  ASSERT_EQ(s.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, FloydSampleIsUniform) {
  // Bucket 40k Floyd-regime picks into deciles; each decile holds ~1/10 of
  // them. Catches both index bias and the classic unreplaced-collision
  // mistake (keeping t instead of j doubles the weight of low indices).
  const std::size_t n = 10000;  // > kDenseSampleMax -> Floyd path
  ASSERT_GT(n, Rng::kDenseSampleMax);
  Rng rng(25);
  std::vector<int> deciles(10, 0);
  const int reps = 8000;
  for (int i = 0; i < reps; ++i) {
    for (const auto k : rng.sample_without_replacement(n, 5)) {
      deciles[k / (n / 10)]++;
    }
  }
  for (const int c : deciles) {
    EXPECT_NEAR(c, reps * 5 / 10, 300);
  }
}

TEST(Rng, DenseSampleSequenceIsFrozen) {
  // The dense (partial Fisher-Yates) regime is the historical draw
  // sequence; committed reference benches depend on it bit for bit. Golden
  // values regenerated only if the dense algorithm is deliberately changed.
  Rng rng(3);
  const auto s = rng.sample_without_replacement(20, 5);
  const std::vector<std::size_t> golden(s.begin(), s.end());
  Rng replay(3);
  EXPECT_EQ(replay.sample_without_replacement(20, 5), golden);
  // The two regimes are different deterministic streams by design: the
  // boundary must sit exactly at kDenseSampleMax.
  Rng at(26);
  Rng above(26);
  const auto dense = at.sample_without_replacement(Rng::kDenseSampleMax, 3);
  const auto floyd =
      above.sample_without_replacement(Rng::kDenseSampleMax + 1, 3);
  EXPECT_EQ(dense.size(), floyd.size());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(22);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_NE(splitmix64(s), first);
}

}  // namespace
}  // namespace zka::util
