#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "data/loader.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::data {
namespace {

TEST(Synthetic, ShapesLabelsAndRange) {
  for (const models::Task task :
       {models::Task::kFashion, models::Task::kCifar}) {
    const Dataset d = make_synthetic_dataset(task, 50, 42);
    const models::ImageSpec spec = models::task_spec(task);
    EXPECT_EQ(d.size(), 50);
    EXPECT_EQ(d.images.shape(),
              (tensor::Shape{50, spec.channels, spec.height, spec.width}));
    for (const auto y : d.labels) {
      ASSERT_GE(y, 0);
      ASSERT_LT(y, spec.num_classes);
    }
    for (std::int64_t i = 0; i < d.images.numel(); ++i) {
      ASSERT_GE(d.images[i], -1.0f);
      ASSERT_LE(d.images[i], 1.0f);
    }
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const Dataset a = make_synthetic_dataset(models::Task::kFashion, 20, 7);
  const Dataset b = make_synthetic_dataset(models::Task::kFashion, 20, 7);
  const Dataset c = make_synthetic_dataset(models::Task::kFashion, 20, 8);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_TRUE(tensor::allclose(a.images, b.images));
  EXPECT_FALSE(tensor::allclose(a.images, c.images));
}

TEST(Synthetic, AllClassesAppearInLargeSample) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 500, 3);
  std::set<std::int64_t> seen(d.labels.begin(), d.labels.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Synthetic, PrototypesDifferAcrossClasses) {
  for (const models::Task task :
       {models::Task::kFashion, models::Task::kCifar}) {
    for (std::int64_t a = 0; a < 10; ++a) {
      for (std::int64_t b = a + 1; b < 10; ++b) {
        const auto pa = class_prototype(task, a);
        const auto pb = class_prototype(task, b);
        const double dist = util::l2_distance(pa.data(), pb.data());
        EXPECT_GT(dist, 1.0) << "classes " << a << " vs " << b;
      }
    }
  }
}

TEST(Synthetic, SamplesClusterAroundTheirPrototype) {
  // A noisy sample must be closer (on average) to its own prototype than
  // to other prototypes — otherwise the classification task is ill-posed.
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 100, 11);
  int own_closest = 0;
  std::vector<tensor::Tensor> protos;
  for (std::int64_t k = 0; k < 10; ++k) {
    protos.push_back(class_prototype(models::Task::kFashion, k));
  }
  for (std::int64_t i = 0; i < d.size(); ++i) {
    const tensor::Tensor img = d.image(i);
    double best = 1e300;
    std::int64_t best_class = -1;
    for (std::int64_t k = 0; k < 10; ++k) {
      const double dist = util::l2_distance(img.data(), protos[k].data());
      if (dist < best) {
        best = dist;
        best_class = k;
      }
    }
    if (best_class == d.labels[static_cast<std::size_t>(i)]) ++own_closest;
  }
  // Shift/noise blur this, but most samples should match (chance = 10%).
  EXPECT_GT(own_closest, 50);
}

TEST(Synthetic, NoiseOptionIncreasesVariance) {
  SyntheticOptions quiet;
  quiet.noise_stddev = 0.05f;
  quiet.max_shift = 0;
  SyntheticOptions loud;
  loud.noise_stddev = 0.8f;
  loud.max_shift = 0;
  const Dataset dq = make_synthetic_dataset(models::Task::kFashion, 50, 5,
                                            quiet);
  const Dataset dl = make_synthetic_dataset(models::Task::kFashion, 50, 5,
                                            loud);
  // Compare per-pixel squared deviation from the class prototype.
  auto residual = [](const Dataset& d) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < d.size(); ++i) {
      const auto proto = class_prototype(
          models::Task::kFashion, d.labels[static_cast<std::size_t>(i)]);
      const auto img = d.image(i);
      acc += util::l2_distance(img.data(), proto.data());
    }
    return acc / static_cast<double>(d.size());
  };
  EXPECT_GT(residual(dl), residual(dq) * 1.5);
}

TEST(Dataset, SubsetCopiesRows) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 10, 1);
  const std::vector<std::int64_t> idx{0, 5, 9};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[1], d.labels[5]);
  EXPECT_TRUE(tensor::allclose(s.image(2), d.image(9)));
}

TEST(Dataset, TrainTestSplit) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 10, 2);
  const auto [train, test] = train_test_split(d, 7);
  EXPECT_EQ(train.size(), 7);
  EXPECT_EQ(test.size(), 3);
  EXPECT_EQ(test.labels[0], d.labels[7]);
  EXPECT_THROW(train_test_split(d, 11), std::invalid_argument);
}

TEST(Dataset, ClassHistogramCounts) {
  Dataset d;
  d.spec = models::fashion_spec();
  d.spec.num_classes = 3;
  d.labels = {0, 1, 1, 2, 2, 2};
  d.images = tensor::Tensor({6, 1, 1, 1});
  const auto hist = class_histogram(d);
  EXPECT_EQ(hist, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Loader, BatchesCoverEverySampleOnce) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 25, 3);
  DataLoader loader(d, 8);
  EXPECT_EQ(loader.num_batches(), 4);
  std::multiset<std::int64_t> seen;
  for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
    const Batch batch = loader.batch(b);
    EXPECT_EQ(batch.images.dim(0),
              static_cast<std::int64_t>(batch.labels.size()));
    for (const auto y : batch.labels) seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 25u);
}

TEST(Loader, LastBatchIsSmaller) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 10, 4);
  DataLoader loader(d, 4);
  EXPECT_EQ(loader.batch(2).labels.size(), 2u);
  EXPECT_THROW(loader.batch(3), std::out_of_range);
}

TEST(Loader, SubsetViewAndValidation) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 10, 5);
  DataLoader loader(d, {1, 3, 5}, 2);
  EXPECT_EQ(loader.size(), 3);
  EXPECT_EQ(loader.batch(0).labels[0], d.labels[1]);
  EXPECT_THROW(DataLoader(d, {42}, 2), std::out_of_range);
  EXPECT_THROW(DataLoader(d, 0), std::invalid_argument);
}

TEST(Loader, ShufflePermutesButPreservesMultiset) {
  const Dataset d = make_synthetic_dataset(models::Task::kFashion, 32, 6);
  DataLoader loader(d, 32);
  util::Rng rng(9);
  const auto before = loader.batch(0).labels;
  loader.shuffle(rng);
  const auto after = loader.batch(0).labels;
  EXPECT_EQ(std::multiset<std::int64_t>(before.begin(), before.end()),
            std::multiset<std::int64_t>(after.begin(), after.end()));
}

}  // namespace
}  // namespace zka::data
