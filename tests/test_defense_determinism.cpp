// Bitwise thread-count invariance of every aggregator.
//
// The parallel helpers under the defenses (weighted_sum, the Gram packing,
// the coordinate-block transpose) split work along fixed block grids, so
// the aggregate must be bitwise identical no matter how many workers the
// pool has. Two enforcement layers:
//   1. In-process: each aggregator runs with kernel parallelism enabled
//      and again with it forced off (pure serial reference); models must
//      be bitwise equal and selections identical.
//   2. Cross-process: CMake registers this binary three times with
//      ZKA_THREADS = 1, 4 and 8 (the pool reads the variable once at
//      startup), so layer 1's "parallel" leg itself runs under three
//      different worker counts, and any divergence fails one of the runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "defense/aggregator.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace zka::defense {
namespace {

// Big enough to cross every parallel threshold (n*dim >= 2^18, dim spans
// many coordinate blocks, Gram fast path active).
constexpr std::size_t kNumClients = 12;
constexpr std::size_t kDim = 25000;

std::vector<Update> round_updates(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t k = 0; k + 2 < kNumClients; ++k) {
    Update u(kDim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.5));
    updates.push_back(std::move(u));
  }
  // Two colluding near-duplicates so the distance correction pass and the
  // Sybil logic participate.
  Update colluder(kDim);
  for (auto& x : colluder) x = static_cast<float>(rng.normal(1.0, 0.5));
  Update near_copy = colluder;
  for (auto& x : near_copy) x += static_cast<float>(rng.normal(0.0, 1e-5));
  updates.push_back(std::move(colluder));
  updates.push_back(std::move(near_copy));
  return updates;
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, ParallelMatchesSerialBitwise) {
  const std::vector<Update> updates = round_updates(2024);
  const std::vector<std::int64_t> weights(kNumClients, 3);

  // Fresh aggregator per mode: stateful rules (CenteredClip's center, DnC's
  // RNG stream) must see identical histories in both legs.
  tensor::set_kernel_parallelism(true);
  const auto parallel_agg = make_aggregator(GetParam(), 2);
  const AggregationResult parallel = parallel_agg->aggregate(updates, weights);

  tensor::set_kernel_parallelism(false);
  const auto serial_agg = make_aggregator(GetParam(), 2);
  const AggregationResult serial = serial_agg->aggregate(updates, weights);
  tensor::set_kernel_parallelism(true);

  EXPECT_EQ(parallel.selected, serial.selected);
  ASSERT_EQ(parallel.model.size(), serial.model.size());
  for (std::size_t i = 0; i < parallel.model.size(); ++i) {
    ASSERT_EQ(parallel.model[i], serial.model[i])
        << GetParam() << " diverges at coordinate " << i << " (ZKA_THREADS="
        << (std::getenv("ZKA_THREADS") ? std::getenv("ZKA_THREADS") : "unset")
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregators, DeterminismTest,
    ::testing::Values("fedavg", "median", "trmean", "krum", "mkrum", "bulyan",
                      "foolsgold", "normclip", "geomedian", "centeredclip",
                      "dnc"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// The sketched fast path (JL projection kernel, blocked Gram scorer,
// exact band re-check) must hold the same invariance: the block grids it
// parallelizes over are pure functions of (n, k), never of the worker
// count. kDim = 25000 >> 2 * sketch_dim, so the sketch path is active.
TEST(SketchedDeterminism, SketchedMkrumParallelMatchesSerialBitwise) {
  const std::vector<Update> updates = round_updates(2025);
  const std::vector<std::int64_t> weights(kNumClients, 3);
  AggregatorOptions options;
  options.num_byzantine = 2;
  options.sketch_dim = 256;

  tensor::set_kernel_parallelism(true);
  const AggregationResult parallel =
      make_aggregator("mkrum", options)->aggregate(updates, weights);
  tensor::set_kernel_parallelism(false);
  const AggregationResult serial =
      make_aggregator("mkrum", options)->aggregate(updates, weights);
  tensor::set_kernel_parallelism(true);

  EXPECT_EQ(parallel.selected, serial.selected);
  ASSERT_EQ(parallel.model.size(), serial.model.size());
  for (std::size_t i = 0; i < parallel.model.size(); ++i) {
    ASSERT_EQ(parallel.model[i], serial.model[i])
        << "sketched mkrum diverges at coordinate " << i;
  }
}

// Tree aggregation (approximate streaming median/trmean) promises
// bitwise determinism for a fixed arrival order and budget — including
// across worker counts, since its per-node reducers run on fixed
// coordinate blocks.
class TreeStreamDeterminismTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TreeStreamDeterminismTest, StreamingParallelMatchesSerialBitwise) {
  const std::vector<Update> updates = round_updates(2026);
  const std::vector<std::int64_t> weights(kNumClients, 3);
  AggregatorOptions options;
  options.num_byzantine = 2;
  // A wave of 5 forces a multi-level tree (12 arrivals, 3+ nodes).
  options.memory_budget_bytes = 5 * kDim * sizeof(float);

  const auto stream_round = [&] {
    auto agg = make_aggregator(GetParam(), options);
    agg->begin_stream(kDim, weights);
    for (const auto& u : updates) agg->stream_update(u);
    return agg->finish_stream();
  };

  tensor::set_kernel_parallelism(true);
  const AggregationResult parallel = stream_round();
  tensor::set_kernel_parallelism(false);
  const AggregationResult serial = stream_round();
  tensor::set_kernel_parallelism(true);

  ASSERT_EQ(parallel.model.size(), serial.model.size());
  for (std::size_t i = 0; i < parallel.model.size(); ++i) {
    ASSERT_EQ(parallel.model[i], serial.model[i])
        << GetParam() << " tree streaming diverges at coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeRules, TreeStreamDeterminismTest,
                         ::testing::Values("median", "trmean"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace zka::defense
