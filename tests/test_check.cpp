// Tests for the contract layer (util/check.h): ZKA_CHECK throws the
// documented exception hierarchy with the formatted context, ZKA_DCHECK
// is a no-op in release builds and aborts under ZKA_CONTRACTS, and the
// tensor accessors enforce their bounds contracts.

#include "util/check.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace zka {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(ZKA_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ZKA_CHECK(true, "context %d", 7));
}

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(ZKA_CHECK(false), util::ContractViolation);
}

TEST(Check, ContractViolationDerivesFromInvalidArgument) {
  // Pre-contract code threw std::invalid_argument / std::logic_error;
  // callers catching either must keep working.
  EXPECT_THROW(ZKA_CHECK(false), std::invalid_argument);
  EXPECT_THROW(ZKA_CHECK(false), std::logic_error);
}

TEST(Check, MessageCarriesConditionAndContext) {
  try {
    const int n = 3;
    const int f = 5;
    ZKA_CHECK(f < n, "Krum: f=%d must be < n=%d", f, n);
    FAIL() << "ZKA_CHECK did not throw";
  } catch (const util::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("f < n"), std::string::npos) << what;
    EXPECT_NE(what.find("Krum: f=5 must be < n=3"), std::string::npos) << what;
  }
}

TEST(Check, MessageWithoutContextStillNamesCondition) {
  try {
    ZKA_CHECK(2 < 1);
    FAIL() << "ZKA_CHECK did not throw";
  } catch (const util::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(Check, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  ZKA_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(CheckShape, EqualShapesPass) {
  const std::vector<std::int64_t> a{2, 3};
  const std::vector<std::int64_t> b{2, 3};
  EXPECT_NO_THROW(ZKA_CHECK_SHAPE(a, b));
}

TEST(CheckShape, MismatchFormatsBothShapes) {
  const std::vector<std::int64_t> a{2, 3};
  const std::vector<std::int64_t> b{4};
  try {
    ZKA_CHECK_SHAPE(a, b, "conv2d input");
    FAIL() << "ZKA_CHECK_SHAPE did not throw";
  } catch (const util::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[2, 3] vs [4]"), std::string::npos) << what;
    EXPECT_NE(what.find("conv2d input"), std::string::npos) << what;
  }
}

TEST(Dcheck, PassingDcheckIsSilent) {
  EXPECT_NO_THROW(ZKA_DCHECK(true, "never printed"));
}

TEST(Dcheck, ConditionCompilesButOnlyFiresWithContracts) {
  // The condition expression stays compiled either way (so it cannot
  // bit-rot), but without ZKA_CONTRACTS a false condition is a no-op.
  if constexpr (!util::kContractsEnabled) {
    EXPECT_NO_THROW(ZKA_DCHECK(false, "release build: must not fire"));
  } else {
    EXPECT_DEATH(ZKA_DCHECK(false, "contract build: fires %d", 1),
                 "ZKA_DCHECK");
  }
}

#ifdef ZKA_CONTRACTS
TEST(DcheckDeathTest, AbortMessageCarriesContext) {
  EXPECT_DEATH(ZKA_DCHECK(1 > 2, "ctx value %d", 42), "ctx value 42");
}

TEST(TensorContractsDeathTest, FlatIndexOutOfBounds) {
  tensor::Tensor t({2, 3});
  EXPECT_DEATH((void)t[6], "flat index 6");
  EXPECT_DEATH((void)t[-1], "flat index -1");
}

TEST(TensorContractsDeathTest, AtAxisOutOfBounds) {
  tensor::Tensor t({2, 3});
  EXPECT_DEATH((void)t.at({0, 3}), "axis 1");
  EXPECT_DEATH((void)t.at({2, 0}), "axis 0");
}

TEST(TensorContractsDeathTest, AtRankMismatch) {
  tensor::Tensor t({2, 3});
  EXPECT_DEATH((void)t.at({0}), "rank");
}
#endif  // ZKA_CONTRACTS

// The shape-changing accessors are always-on checks (cold path), so the
// bad-argument behavior is identical in every build mode.
TEST(TensorContracts, BadReshapeThrows) {
  const tensor::Tensor t({2, 4});
  EXPECT_THROW((void)t.reshape({5, 2}), std::invalid_argument);
  EXPECT_THROW((void)t.reshape({3, 3}), std::invalid_argument);
}

TEST(TensorContracts, BadSlice0Throws) {
  const tensor::Tensor t({4, 2});
  EXPECT_THROW((void)t.slice0(-1, 2), std::out_of_range);
  EXPECT_THROW((void)t.slice0(2, 1), std::out_of_range);
  EXPECT_THROW((void)t.slice0(0, 5), std::out_of_range);
}

TEST(TensorContracts, BadIndexSelect0Throws) {
  const tensor::Tensor t({4, 2});
  const std::vector<std::int64_t> past_end{4};
  const std::vector<std::int64_t> negative{-1};
  EXPECT_THROW((void)t.index_select0(past_end), std::out_of_range);
  EXPECT_THROW((void)t.index_select0(negative), std::out_of_range);
}

}  // namespace
}  // namespace zka
