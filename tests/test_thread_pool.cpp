#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace zka::util {
namespace {

TEST(ThreadPool, SubmitRunsJob) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter.fetch_add(1); });
  f.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyJobsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(97, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::logic_error("x"); });
  } catch (const std::logic_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
  EXPECT_GE(global_thread_pool().size(), 1u);
}

// Regression: parallel_for from inside a worker used to enqueue helper jobs
// behind the already-running outer tasks and block on them — a guaranteed
// deadlock with one worker. The fix runs re-entrant calls inline; these
// tests hang (and trip the ctest timeout) if it regresses.
TEST(ThreadPool, NestedParallelForDoesNotDeadlockWithOneWorker) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, NestedParallelForCoversFullProduct) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(6 * 5);
  pool.parallel_for(6, [&](std::size_t i) {
    pool.parallel_for(5, [&](std::size_t j) { hits[i * 5 + j].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TriplyNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(2, [&](std::size_t) {
    pool.parallel_for(3, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { counter.fetch_add(1); });
    });
  });
  EXPECT_EQ(counter.load(), 2 * 3 * 4);
}

TEST(ThreadPool, NestedParallelForFromSubmittedJob) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.submit([&] {
        pool.parallel_for(16, [&](std::size_t) { counter.fetch_add(1); });
      })
      .wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(3,
                        [&](std::size_t) {
                          pool.parallel_for(3, [&](std::size_t j) {
                            if (j == 2) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, InWorkerThreadDetection) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.in_worker_thread());
  std::atomic<bool> inside_own{false};
  std::atomic<bool> inside_other{true};
  pool.submit([&] {
        inside_own.store(pool.in_worker_thread());
        inside_other.store(other.in_worker_thread());
      })
      .wait();
  EXPECT_TRUE(inside_own.load());    // a worker knows its own pool
  EXPECT_FALSE(inside_other.load());  // ...and is not a worker of another
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> out(1000);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<long>(i) * 2; });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 999L * 1000L);
}

}  // namespace
}  // namespace zka::util
