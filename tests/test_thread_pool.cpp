#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace zka::util {
namespace {

TEST(ThreadPool, SubmitRunsJob) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter.fetch_add(1); });
  f.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyJobsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(97, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::logic_error("x"); });
  } catch (const std::logic_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
  EXPECT_GE(global_thread_pool().size(), 1u);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> out(1000);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<long>(i) * 2; });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 999L * 1000L);
}

}  // namespace
}  // namespace zka::util
