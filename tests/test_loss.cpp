#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace zka::nn {
namespace {

using tensor::Tensor;

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, -1, -2, -3});
  const Tensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) sum += p[r * 3 + c];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[3], p[4]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, std::vector<float>{1000.0f, 990.0f});
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0], 1.0 / (1.0 + std::exp(-10.0)), 1e-5);
}

TEST(Softmax, RequiresRank2) {
  EXPECT_THROW(softmax_rows(Tensor({4})), std::invalid_argument);
}

TEST(CrossEntropy, HandComputedHardLabel) {
  Tensor logits({1, 3}, std::vector<float>{0.0f, 0.0f, 0.0f});
  SoftmaxCrossEntropy loss;
  const std::vector<std::int64_t> label{1};
  EXPECT_NEAR(loss.forward(logits, label), std::log(3.0), 1e-6);
}

TEST(CrossEntropy, PerfectPredictionHasLowLoss) {
  Tensor logits({1, 3}, std::vector<float>{0.0f, 20.0f, 0.0f});
  SoftmaxCrossEntropy loss;
  const std::vector<std::int64_t> label{1};
  EXPECT_LT(loss.forward(logits, label), 1e-6);
}

TEST(CrossEntropy, MeanOverBatch) {
  Tensor logits({2, 2}, std::vector<float>{0, 0, 0, 0});
  SoftmaxCrossEntropy loss;
  const std::vector<std::int64_t> labels{0, 1};
  EXPECT_NEAR(loss.forward(logits, labels), std::log(2.0), 1e-6);
}

TEST(CrossEntropy, GradientIsProbsMinusTargetsOverN) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, 0, 0, 0});
  SoftmaxCrossEntropy loss;
  const std::vector<std::int64_t> labels{2, 0};
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const Tensor p = softmax_rows(logits);
  EXPECT_NEAR(grad[0], p[0] / 2.0f, 1e-6);
  EXPECT_NEAR(grad[2], (p[2] - 1.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(grad[3], (p[3] - 1.0f) / 2.0f, 1e-6);
}

TEST(CrossEntropy, SoftTargetUniformMatchesZkaRObjective) {
  // ZKA-R's ambiguity target: uniform distribution over classes.
  Tensor logits({1, 4}, std::vector<float>{0, 0, 0, 0});
  Tensor uniform({1, 4}, 0.25f);
  SoftmaxCrossEntropy loss;
  // Uniform logits against uniform target: CE = H(uniform) = log 4, and
  // gradient must vanish (loss is at its minimum).
  EXPECT_NEAR(loss.forward(logits, uniform), std::log(4.0), 1e-6);
  const Tensor grad = loss.backward();
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(grad[i], 0.0f, 1e-7);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  Tensor logits = Tensor::uniform({3, 5}, rng, -1.0f, 1.0f);
  const std::vector<std::int64_t> labels{0, 3, 4};
  SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); i += 2) {
    Tensor plus = logits;
    Tensor minus = logits;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    SoftmaxCrossEntropy l2;
    const double numeric =
        (l2.forward(plus, labels) - l2.forward(minus, labels)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-4) << "logit " << i;
  }
}

TEST(CrossEntropy, NegativeScaleFlipsGradient) {
  // scale = -1 turns descent into ascent: ZKA-G's maximization trick.
  Tensor logits({1, 3}, std::vector<float>{0.5f, -0.2f, 0.1f});
  const std::vector<std::int64_t> label{1};
  SoftmaxCrossEntropy min_loss(1.0f);
  SoftmaxCrossEntropy max_loss(-1.0f);
  min_loss.forward(logits, label);
  max_loss.forward(logits, label);
  const Tensor g_min = min_loss.backward();
  const Tensor g_max = max_loss.backward();
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(g_max[i], -g_min[i], 1e-7);
  }
  EXPECT_LT(max_loss.forward(logits, label), 0.0);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits({1, 3});
  SoftmaxCrossEntropy loss;
  const std::vector<std::int64_t> bad{3};
  EXPECT_THROW(loss.forward(logits, bad), std::invalid_argument);
  const std::vector<std::int64_t> negative{-1};
  EXPECT_THROW(loss.forward(logits, negative), std::invalid_argument);
}

TEST(CrossEntropy, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.backward(), std::logic_error);
}

TEST(Accuracy, CountsArgmaxHits) {
  Tensor logits({3, 2}, std::vector<float>{2, 1, 0, 5, 1, 0});
  const std::vector<std::int64_t> labels{0, 1, 1};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(accuracy(logits, {}), 0.0);
}

}  // namespace
}  // namespace zka::nn
