#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace zka::tensor {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0, 5}), 0);
  EXPECT_THROW(shape_numel({-1, 2}), std::invalid_argument);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
  Tensor f({2, 2}, 3.5f);
  EXPECT_FLOAT_EQ(f[3], 3.5f);
  f.fill(-1.0f);
  EXPECT_FLOAT_EQ(f[0], -1.0f);
}

TEST(Tensor, DataVectorConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
  t.at({1, 2}) = 42.0f;
  EXPECT_FLOAT_EQ(t[5], 42.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at({2, 1}), 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, Slice0) {
  Tensor t({3, 2}, std::vector<float>{0, 1, 2, 3, 4, 5});
  const Tensor s = t.slice0(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[3], 5.0f);
  EXPECT_THROW(t.slice0(2, 4), std::out_of_range);
  EXPECT_THROW(t.slice0(-1, 2), std::out_of_range);
}

TEST(Tensor, IndexSelect0) {
  Tensor t({3, 2}, std::vector<float>{0, 1, 2, 3, 4, 5});
  const std::vector<std::int64_t> idx{2, 0, 2};
  const Tensor s = t.index_select0(idx);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_FLOAT_EQ(s[0], 4.0f);
  EXPECT_FLOAT_EQ(s[2], 0.0f);
  EXPECT_FLOAT_EQ(s[4], 4.0f);
  const std::vector<std::int64_t> bad{3};
  EXPECT_THROW(t.index_select0(bad), std::out_of_range);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{3, 5});
  const Tensor sum = a + b;
  EXPECT_FLOAT_EQ(sum[0], 4.0f);
  const Tensor diff = b - a;
  EXPECT_FLOAT_EQ(diff[1], 3.0f);
  const Tensor prod = a * b;
  EXPECT_FLOAT_EQ(prod[1], 10.0f);
  const Tensor scaled = a * 2.0f;
  EXPECT_FLOAT_EQ(scaled[1], 4.0f);
  const Tensor scaled2 = 3.0f * a;
  EXPECT_FLOAT_EQ(scaled2[0], 3.0f);
  a += 1.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 2, 7, 0});
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 7.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(1.0 + 4.0 + 49.0), 1e-6);
}

TEST(Tensor, ArgmaxRows) {
  Tensor t({2, 3}, std::vector<float>{0, 5, 1, 9, 2, 3});
  const auto idx = t.argmax_rows();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  Tensor bad({3});
  EXPECT_THROW(bad.argmax_rows(), std::invalid_argument);
}

TEST(Tensor, UniformFillWithinBounds) {
  util::Rng rng(5);
  const Tensor t = Tensor::uniform({100}, rng, -2.0f, 3.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Tensor, NormalFillHasApproxMoments) {
  util::Rng rng(6);
  const Tensor t = Tensor::normal({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
}

TEST(Tensor, Allclose) {
  Tensor a({2}, std::vector<float>{1.0f, 2.0f});
  Tensor b({2}, std::vector<float>{1.0f + 1e-6f, 2.0f});
  Tensor c({2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_TRUE(allclose(a, b));
  EXPECT_FALSE(allclose(a, c));
  EXPECT_FALSE(allclose(a, Tensor({3})));
}

TEST(Tensor, EmptyReductionsThrow) {
  Tensor empty;
  EXPECT_THROW(empty.min(), std::logic_error);
  EXPECT_THROW(empty.max(), std::logic_error);
  EXPECT_THROW(empty.argmax(), std::logic_error);
}

}  // namespace
}  // namespace zka::tensor
