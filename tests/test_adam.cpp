#include "nn/adam.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace zka::nn {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Parameter p(tensor::Tensor({2}, std::vector<float>{1.0f, -1.0f}));
  p.grad[0] = 0.3f;
  p.grad[1] = -7.0f;
  Adam opt({&p}, {.learning_rate = 0.1f});
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f, 1e-4f);
  EXPECT_NEAR(p.value[1], -1.0f + 0.1f, 1e-4f);
  EXPECT_EQ(opt.steps_taken(), 1);
}

TEST(Adam, ZeroGradientDoesNotMove) {
  Parameter p(tensor::Tensor({3}, 2.0f));
  Adam opt({&p}, {});
  opt.step();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.value[i], 2.0f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Parameter p(tensor::Tensor({1}, std::vector<float>{4.0f}));
  Adam opt({&p}, {.learning_rate = 0.1f, .weight_decay = 0.5f});
  for (int i = 0; i < 5; ++i) {
    opt.zero_grad();
    opt.step();
  }
  EXPECT_LT(p.value[0], 4.0f);
}

TEST(Adam, ZeroGradClears) {
  Parameter p(tensor::Tensor({2}));
  p.grad.fill(3.0f);
  Adam opt({&p}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize 0.5 * ||w - target||^2 directly via parameter gradients.
  Parameter p(tensor::Tensor({4}, std::vector<float>{5.0f, -3.0f, 2.0f, 9.0f}));
  const std::vector<float> target{1.0f, 1.0f, -1.0f, 0.0f};
  Adam opt({&p}, {.learning_rate = 0.05f});
  for (int step = 0; step < 800; ++step) {
    opt.zero_grad();
    for (std::int64_t i = 0; i < 4; ++i) {
      p.grad[i] = p.value[i] - target[static_cast<std::size_t>(i)];
    }
    opt.step();
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(p.value[i], target[static_cast<std::size_t>(i)], 0.05f);
  }
}

TEST(Adam, TrainsFasterThanTinyLrSgdOnRegression) {
  util::Rng rng(1);
  const tensor::Tensor x = tensor::Tensor::uniform({32, 5}, rng, -1.0f, 1.0f);
  tensor::Tensor target({32, 1});
  for (std::int64_t i = 0; i < 32; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < 5; ++j) acc += x[i * 5 + j];
    target[i] = acc;
  }
  Sequential net;
  net.emplace<Linear>(5, 1, rng);
  Adam opt(net, {.learning_rate = 0.05f});
  auto loss_of = [&] {
    const tensor::Tensor y = net.forward(x);
    double acc = 0.0;
    for (std::int64_t i = 0; i < 32; ++i) {
      const double d = y[i] - target[i];
      acc += 0.5 * d * d;
    }
    return acc;
  };
  const double before = loss_of();
  for (int step = 0; step < 100; ++step) {
    opt.zero_grad();
    tensor::Tensor grad = net.forward(x);
    grad -= target;
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss_of(), before * 0.1);
}

TEST(Adam, LearningRateMutable) {
  Parameter p(tensor::Tensor({1}));
  Adam opt({&p}, {.learning_rate = 0.5f});
  opt.set_learning_rate(0.25f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.25f);
}

}  // namespace
}  // namespace zka::nn
