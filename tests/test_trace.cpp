#include "fl/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/check.h"

namespace zka::fl {
namespace {

SimulationResult sample_result() {
  SimulationResult result;
  RoundRecord r0;
  r0.round = 0;
  r0.accuracy = 0.5;
  r0.malicious_selected = 2;
  r0.malicious_passed = 1;
  r0.benign_selected = 8;
  r0.benign_passed = 7;
  RoundRecord r1;
  r1.round = 1;
  r1.accuracy = std::nan("");  // not evaluated this round
  r1.malicious_selected = 1;
  result.rounds = {r0, r1};
  return result;
}

TEST(Trace, TableHasOneRowPerRound) {
  const util::Table table = trace_table(sample_result());
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("round,accuracy,malicious_selected"), std::string::npos);
  EXPECT_NE(csv.find("0,0.5000,2,1,8,7"), std::string::npos);
}

TEST(Trace, NanAccuracyBecomesEmptyCell) {
  const std::string csv = trace_table(sample_result()).to_csv();
  EXPECT_NE(csv.find("1,,1,0,0,0"), std::string::npos);
}

TEST(Trace, WriteCsvRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "zka_trace_test.csv";
  write_trace_csv(sample_result(), path.string());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "round,accuracy,malicious_selected,malicious_passed,"
            "benign_selected,benign_passed");
  std::filesystem::remove(path);
}

TEST(Trace, WriteCsvBadPathThrows) {
  // Regression: an unwritable path used to leave a half-reported run with
  // no diagnostic; the failure must surface as a contract violation.
  EXPECT_THROW(
      write_trace_csv(sample_result(), "/nonexistent-zka-dir/trace.csv"),
      util::ContractViolation);
  EXPECT_THROW(
      write_trace_csv(sample_result(), "/nonexistent-zka-dir/trace.csv"),
      std::invalid_argument);
}

TEST(Trace, EmptyResultGivesHeaderOnly) {
  SimulationResult empty;
  EXPECT_EQ(trace_table(empty).num_rows(), 0u);
}

}  // namespace
}  // namespace zka::fl
