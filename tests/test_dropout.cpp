#include "nn/dropout.h"

#include <gtest/gtest.h>

namespace zka::nn {
namespace {

TEST(Dropout, InvalidRateRejected) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0f));
}

TEST(Dropout, EvalModePassesThrough) {
  Dropout dropout(0.5f);
  dropout.set_training(false);
  const tensor::Tensor x({100}, 2.0f);
  EXPECT_TRUE(tensor::allclose(dropout.forward(x), x));
  const tensor::Tensor g({100}, 1.0f);
  EXPECT_TRUE(tensor::allclose(dropout.backward(g), g));
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  Dropout dropout(0.0f);
  const tensor::Tensor x({50}, -1.5f);
  EXPECT_TRUE(tensor::allclose(dropout.forward(x), x));
}

TEST(Dropout, DropsApproximatelyRateFraction) {
  Dropout dropout(0.3f, 7);
  const tensor::Tensor x({10000}, 1.0f);
  const tensor::Tensor y = dropout.forward(x);
  std::int64_t dropped = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / y.numel(), 0.3, 0.02);
}

TEST(Dropout, SurvivorsScaledToPreserveExpectation) {
  Dropout dropout(0.5f, 8);
  const tensor::Tensor x({20000}, 1.0f);
  const tensor::Tensor y = dropout.forward(x);
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y[i] == 0.0f || std::abs(y[i] - 2.0f) < 1e-6f);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout dropout(0.5f, 9);
  const tensor::Tensor x({1000}, 1.0f);
  const tensor::Tensor y = dropout.forward(x);
  const tensor::Tensor g = dropout.backward(tensor::Tensor({1000}, 1.0f));
  // Gradient must be zero exactly where the activation was dropped.
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(g[i], y[i]);
  }
}

TEST(Dropout, BackwardShapeMismatchThrows) {
  Dropout dropout(0.5f, 10);
  dropout.forward(tensor::Tensor({8}, 1.0f));
  EXPECT_THROW(dropout.backward(tensor::Tensor({9}, 1.0f)),
               std::invalid_argument);
}

TEST(Dropout, TrainingFlagAccessors) {
  Dropout dropout(0.25f);
  EXPECT_TRUE(dropout.training());
  EXPECT_FLOAT_EQ(dropout.rate(), 0.25f);
  dropout.set_training(false);
  EXPECT_FALSE(dropout.training());
}

}  // namespace
}  // namespace zka::nn
