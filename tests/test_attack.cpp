#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attack/fang.h"
#include "attack/label_flip.h"
#include "attack/lie.h"
#include "attack/minmax.h"
#include "attack/random_weights.h"
#include "data/synthetic.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::attack {
namespace {

struct Fixture {
  std::vector<float> global;
  std::vector<float> prev;
  std::vector<Update> benign;

  Fixture(std::size_t dim, std::size_t n_benign, std::uint64_t seed,
          double spread = 0.1) {
    util::Rng rng(seed);
    global.resize(dim);
    for (auto& x : global) x = static_cast<float>(rng.normal(0.0, 0.3));
    prev = global;
    benign.assign(n_benign, Update(dim));
    for (auto& u : benign) {
      for (std::size_t i = 0; i < dim; ++i) {
        u[i] = global[i] + static_cast<float>(rng.normal(0.05, spread));
      }
    }
  }

  AttackContext context() const {
    AttackContext ctx;
    ctx.global_model = global;
    ctx.prev_global_model = prev;
    ctx.benign_updates = &benign;
    ctx.round = 3;
    ctx.num_selected = 10;
    ctx.num_malicious_selected = 2;
    return ctx;
  }
};

TEST(ValidateContext, OmniscientAttackRequiresBenignUpdates) {
  LieAttack lie;
  Fixture fx(8, 5, 1);
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  EXPECT_THROW(lie.craft(ctx), std::invalid_argument);
  EXPECT_TRUE(lie.needs_benign_updates());
}

TEST(ValidateContext, RejectsSizeMismatches) {
  LieAttack lie;
  Fixture fx(8, 5, 2);
  AttackContext ctx = fx.context();
  std::vector<float> short_prev(4);
  ctx.prev_global_model = short_prev;
  EXPECT_THROW(lie.craft(ctx), std::invalid_argument);
}

// ---------- LIE ----------

TEST(Lie, ZFormulaMatchesQuantile) {
  // n=10, m=2: s = 10/2 + 1 - 2 = 4, benign = 8, p = (8-4)/8 = 0.5 -> z=0.
  EXPECT_NEAR(LieAttack::compute_z(10, 2), 0.0, 1e-9);
  // n=50, m=10: s = 16, benign = 40, p = 24/40 = 0.6.
  EXPECT_NEAR(LieAttack::compute_z(50, 10), util::inverse_normal_cdf(0.6),
              1e-9);
}

TEST(Lie, CraftedEqualsMeanPlusZStd) {
  Fixture fx(16, 6, 3);
  LieAttack lie(0.74);  // fixed z
  const Update crafted = lie.craft(fx.context());
  ASSERT_EQ(crafted.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    std::vector<float> col;
    for (const auto& u : fx.benign) col.push_back(u[i]);
    const double expected =
        util::mean(std::span<const float>(col)) +
        0.74 * util::stddev(std::span<const float>(col));
    EXPECT_NEAR(crafted[i], expected, 1e-5);
  }
  EXPECT_DOUBLE_EQ(lie.last_z(), 0.74);
}

TEST(Lie, DerivedZUsedWhenNoOverride) {
  Fixture fx(8, 8, 4);
  LieAttack lie;
  AttackContext ctx = fx.context();
  ctx.num_selected = 50;
  ctx.num_malicious_selected = 10;
  lie.craft(ctx);
  EXPECT_NEAR(lie.last_z(), util::inverse_normal_cdf(0.6), 1e-9);
}

TEST(Lie, StaysCloseToBenignMeanForSmallZ) {
  Fixture fx(32, 8, 5);
  LieAttack lie(0.3);
  const Update crafted = lie.craft(fx.context());
  // A small-z LIE update must sit inside the benign cloud's envelope.
  for (std::size_t i = 0; i < crafted.size(); ++i) {
    float lo = fx.benign[0][i];
    float hi = lo;
    for (const auto& u : fx.benign) {
      lo = std::min(lo, u[i]);
      hi = std::max(hi, u[i]);
    }
    EXPECT_GE(crafted[i], lo - 0.5f);
    EXPECT_LE(crafted[i], hi + 0.5f);
  }
}

// ---------- Fang ----------

TEST(Fang, PushesOppositeToBenignDirection) {
  Fixture fx(12, 6, 6);
  FangAttack fang(99);
  const Update crafted = fang.craft(fx.context());
  ASSERT_EQ(crafted.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    std::vector<float> col;
    for (const auto& u : fx.benign) col.push_back(u[i]);
    const double mean = util::mean(std::span<const float>(col));
    const float lo = *std::min_element(col.begin(), col.end());
    const float hi = *std::max_element(col.begin(), col.end());
    if (mean >= fx.global[i]) {
      EXPECT_LE(crafted[i], lo + 1e-6f) << "coord " << i;
    } else {
      EXPECT_GE(crafted[i], hi - 1e-6f) << "coord " << i;
    }
  }
}

TEST(Fang, DeterministicInSeed) {
  Fixture fx(8, 5, 7);
  FangAttack a(5);
  FangAttack b(5);
  EXPECT_EQ(a.craft(fx.context()), b.craft(fx.context()));
}

// ---------- Min-Max ----------

TEST(MinMax, RespectsMaxPairwiseDistanceBudget) {
  Fixture fx(24, 8, 8);
  MinMaxAttack attack(Perturbation::kInverseStd);
  const Update crafted = attack.craft(fx.context());

  double budget = 0.0;
  for (std::size_t i = 0; i < fx.benign.size(); ++i) {
    for (std::size_t j = i + 1; j < fx.benign.size(); ++j) {
      budget = std::max(budget,
                        util::l2_distance(fx.benign[i], fx.benign[j]));
    }
  }
  double worst = 0.0;
  for (const auto& u : fx.benign) {
    worst = std::max(worst, util::l2_distance(crafted, u));
  }
  EXPECT_LE(worst, budget * 1.05);
  EXPECT_GT(attack.last_gamma(), 0.0);
}

TEST(MinMax, MovesAwayFromBenignMean) {
  Fixture fx(24, 8, 9);
  MinMaxAttack attack(Perturbation::kInverseUnit);
  const Update crafted = attack.craft(fx.context());
  Update mean(24, 0.0f);
  for (const auto& u : fx.benign) {
    for (std::size_t i = 0; i < 24; ++i) mean[i] += u[i] / 8.0f;
  }
  EXPECT_GT(util::l2_distance(crafted, mean), 1e-4);
}

class PerturbationTest : public ::testing::TestWithParam<Perturbation> {};

TEST_P(PerturbationTest, AllVariantsProduceFiniteBoundedUpdates) {
  Fixture fx(16, 6, 10);
  MinMaxAttack attack(GetParam());
  const Update crafted = attack.craft(fx.context());
  for (const float v : crafted) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Variants, PerturbationTest,
                         ::testing::Values(Perturbation::kInverseUnit,
                                           Perturbation::kInverseStd,
                                           Perturbation::kInverseSign),
                         [](const auto& info) {
                           std::string name = perturbation_name(info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(MinMax, IdenticalBenignUpdatesGiveZeroGamma) {
  Fixture fx(8, 5, 11, 0.0);
  for (auto& u : fx.benign) u = fx.benign[0];
  MinMaxAttack attack;
  const Update crafted = attack.craft(fx.context());
  // Budget is zero: the crafted update must collapse onto the mean.
  EXPECT_NEAR(util::l2_distance(crafted, fx.benign[0]), 0.0, 1e-4);
}

// ---------- RandomWeights ----------

TEST(RandomWeights, WithinRangeAndNotNeedingBenign) {
  Fixture fx(64, 3, 12);
  RandomWeightsAttack attack(0.25f, 77);
  EXPECT_FALSE(attack.needs_benign_updates());
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  const Update crafted = attack.craft(ctx);
  for (const float v : crafted) {
    EXPECT_GE(v, -0.25f);
    EXPECT_LT(v, 0.25f);
  }
}

TEST(RandomWeights, FreshDrawEachRound) {
  Fixture fx(32, 3, 13);
  RandomWeightsAttack attack(0.5f, 78);
  AttackContext ctx = fx.context();
  ctx.benign_updates = nullptr;
  EXPECT_NE(attack.craft(ctx), attack.craft(ctx));
}

// ---------- LabelFlip ----------

TEST(LabelFlip, ProducesPlausibleButDifferentUpdate) {
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 24, 21);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  auto global_model = factory(3);
  const std::vector<float> global = nn::get_flat_params(*global_model);

  LabelFlipAttack attack(dataset, factory, {.local_epochs = 1}, 5);
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  const Update crafted = attack.craft(ctx);
  ASSERT_EQ(crafted.size(), global.size());
  EXPECT_GT(util::l2_distance(crafted, global), 1e-4);
  // One epoch of SGD must not fling weights far away.
  EXPECT_LT(util::l2_distance(crafted, global), 100.0);
}

}  // namespace
}  // namespace zka::attack
