// Extension defenses: geometric median, centered clipping, FLTrust.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "defense/centered_clip.h"
#include "defense/fltrust.h"
#include "defense/geometric_median.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/sgd.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

// ---------- Geometric median ----------

TEST(GeoMedianRule, MatchesMedianInOneDimension) {
  GeometricMedian gm;
  const std::vector<Update> updates{{1.0f}, {2.0f}, {100.0f}};
  const auto result = gm.aggregate(updates, unit_weights(3));
  // The 1-D geometric median is the (coordinate) median.
  EXPECT_NEAR(result.model[0], 2.0f, 0.05f);
}

TEST(GeoMedianRule, RobustToMinorityOutliers) {
  GeometricMedian gm;
  util::Rng rng(1);
  std::vector<Update> updates;
  for (int i = 0; i < 7; ++i) {
    Update u(16);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }
  for (int i = 0; i < 3; ++i) updates.push_back(Update(16, 1000.0f));
  const auto result = gm.aggregate(updates, unit_weights(10));
  EXPECT_LT(util::l2_norm(result.model), 2.0);
}

TEST(GeoMedianRule, ExactOnSymmetricConfiguration) {
  GeometricMedian gm;
  // Four points symmetric around (1, 1): geometric median = (1, 1).
  const std::vector<Update> updates{
      {0.0f, 1.0f}, {2.0f, 1.0f}, {1.0f, 0.0f}, {1.0f, 2.0f}};
  const auto result = gm.aggregate(updates, unit_weights(4));
  EXPECT_NEAR(result.model[0], 1.0f, 1e-3f);
  EXPECT_NEAR(result.model[1], 1.0f, 1e-3f);
}

TEST(GeoMedianRule, ConvergesQuickly) {
  GeometricMedian gm(100, 1e-8);
  util::Rng rng(2);
  std::vector<Update> updates(9, Update(8));
  for (auto& u : updates) {
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  gm.aggregate(updates, unit_weights(9));
  EXPECT_LT(gm.last_iterations(), 100);
}

// ---------- Centered clipping ----------

TEST(CenteredClipRule, FirstRoundSeedsFromMedian) {
  CenteredClipping cc;
  const std::vector<Update> updates{{1.0f}, {2.0f}, {3.0f}};
  const auto result = cc.aggregate(updates, unit_weights(3));
  // Center = median = 2; all deviations within tau=median norm -> mean.
  EXPECT_NEAR(result.model[0], 2.0f, 0.5f);
}

TEST(CenteredClipRule, StateDampsSingleRoundOutlier) {
  CenteredClipping cc;
  // Round 1: clean cluster around 1.0.
  const std::vector<Update> clean{{0.9f}, {1.0f}, {1.1f}};
  cc.aggregate(clean, unit_weights(3));
  // Round 2: an attacker fires a huge update.
  const std::vector<Update> attacked{{1.0f}, {1.05f}, {1e6f}};
  const auto result = cc.aggregate(attacked, unit_weights(3));
  EXPECT_LT(result.model[0], 2.0f);
  EXPECT_GT(result.model[0], 0.5f);
}

TEST(CenteredClipRule, FixedTauRespected) {
  CenteredClipping cc(0.1);
  const std::vector<Update> updates{{0.0f}, {0.0f}, {100.0f}};
  cc.aggregate(updates, unit_weights(3));
  EXPECT_DOUBLE_EQ(cc.last_tau(), 0.1);
}

TEST(CenteredClipRule, TracksDriftingHonestFederation) {
  CenteredClipping cc;
  Update honest{0.0f};
  for (int round = 0; round < 20; ++round) {
    honest[0] += 0.1f;
    const std::vector<Update> updates{{honest[0] - 0.01f},
                                      {honest[0]},
                                      {honest[0] + 0.01f}};
    const auto result = cc.aggregate(updates, unit_weights(3));
    EXPECT_NEAR(result.model[0], honest[0], 0.15f) << "round " << round;
  }
}

// ---------- FLTrust ----------

class FlTrustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    factory_ = models::task_model_factory(models::Task::kFashion);
    root_ = data::make_synthetic_dataset(models::Task::kFashion, 64, 33);
    global_ = nn::get_flat_params(*factory_(5));
  }

  FlTrust make() {
    return FlTrust(root_, factory_, {}, 11);
  }

  /// A plausible benign update: short local training on fresh data.
  Update benign_update(std::uint64_t seed) {
    const auto shard =
        data::make_synthetic_dataset(models::Task::kFashion, 24, seed);
    auto model = factory_(seed);
    nn::set_flat_params(*model, global_);
    // One crude gradient step toward the data.
    nn::SoftmaxCrossEntropy loss;
    nn::Sgd opt(*model, {.learning_rate = 0.05f});
    opt.zero_grad();
    loss.forward(model->forward(shard.images), shard.labels);
    model->backward(loss.backward());
    opt.step();
    return nn::get_flat_params(*model);
  }

  models::ModelFactory factory_;
  data::Dataset root_;
  Update global_;
};

TEST_F(FlTrustTest, EmptyRootRejected) {
  data::Dataset empty;
  empty.spec = models::fashion_spec();
  empty.images = tensor::Tensor({0, 1, 28, 28});
  EXPECT_THROW(FlTrust(empty, factory_, {}, 1), std::invalid_argument);
}

TEST_F(FlTrustTest, AggregateWithoutBeginRoundThrows) {
  FlTrust trust = make();
  const std::vector<Update> updates{global_, global_};
  EXPECT_THROW(trust.aggregate(updates, unit_weights(2)), std::logic_error);
}

TEST_F(FlTrustTest, TrustsAlignedUpdatesAndDropsReversedOnes) {
  FlTrust trust = make();
  trust.begin_round(global_, 0);

  std::vector<Update> updates;
  for (std::uint64_t s = 0; s < 4; ++s) updates.push_back(benign_update(s));
  // A reversed update: global - (benign - global), i.e. anti-aligned.
  Update reversed(global_.size());
  for (std::size_t i = 0; i < global_.size(); ++i) {
    reversed[i] = 2.0f * global_[i] - updates[0][i];
  }
  updates.push_back(reversed);

  const auto result = trust.aggregate(updates, unit_weights(5));
  const auto& scores = trust.last_trust_scores();
  ASSERT_EQ(scores.size(), 5u);
  // The anti-aligned update must get (near-)zero trust; benign ones more.
  double benign_mean = 0.0;
  for (int k = 0; k < 4; ++k) benign_mean += scores[k] / 4.0;
  EXPECT_GT(benign_mean, scores[4] + 0.1);
  for (const auto idx : result.selected) EXPECT_LT(idx, 5u);
  EXPECT_TRUE(trust.selects_clients());
}

TEST_F(FlTrustTest, AllDistrustedLeavesModelUnchanged) {
  FlTrust trust = make();
  trust.begin_round(global_, 0);
  // Every client anti-aligned.
  Update reversed(global_.size());
  const Update b = benign_update(9);
  for (std::size_t i = 0; i < global_.size(); ++i) {
    reversed[i] = 2.0f * global_[i] - b[i];
  }
  const std::vector<Update> updates(3, reversed);
  const auto result = trust.aggregate(updates, unit_weights(3));
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.model, global_);
}

TEST_F(FlTrustTest, NormalizationBoundsScaledContributions) {
  FlTrust trust = make();
  trust.begin_round(global_, 0);
  // A hugely scaled benign-direction update must not dominate: FLTrust
  // rescales every accepted delta to the server delta's norm.
  Update big(global_.size());
  const Update b = benign_update(3);
  for (std::size_t i = 0; i < global_.size(); ++i) {
    big[i] = global_[i] + 1000.0f * (b[i] - global_[i]);
  }
  const std::vector<Update> updates{b, big};
  const auto result = trust.aggregate(updates, unit_weights(2));
  EXPECT_LT(util::l2_distance(result.model, global_), 10.0);
}

}  // namespace
}  // namespace zka::defense
