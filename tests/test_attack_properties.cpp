// Properties that hold for every attack kind: correct update size, finite
// values, determinism in the construction seed.
#include <gtest/gtest.h>

#include <cmath>

#include "fl/experiment.h"

namespace zka::fl {
namespace {

class AttackProperty : public ::testing::TestWithParam<AttackKind> {
 protected:
  static SimulationConfig config() {
    SimulationConfig c;
    c.num_clients = 15;
    c.clients_per_round = 5;
    c.rounds = 2;
    c.train_size = 150;
    c.test_size = 60;
    c.malicious_fraction = 0.2;
    c.seed = 41;
    return c;
  }

  static core::ZkaOptions zka() {
    core::ZkaOptions z;
    z.synthetic_size = 4;
    z.synthesis_epochs = 2;
    z.latent_dim = 8;
    return z;
  }

  struct Crafted {
    std::vector<float> update;
    std::size_t model_size = 0;
  };

  static Crafted craft_once(std::uint64_t seed) {
    Simulation sim(config());
    const auto attack = make_attack(GetParamStatic(), sim, zka(), seed);
    const auto factory = models::task_model_factory(config().task);
    const std::vector<float> global = nn::get_flat_params(*factory(9));
    std::vector<float> prev = global;
    prev[0] += 0.01f;

    // Synthesize plausible benign updates for omniscient attacks.
    std::vector<std::vector<float>> benign(4, global);
    util::Rng rng(99);
    for (auto& u : benign) {
      for (auto& w : u) w += static_cast<float>(rng.normal(0.001, 0.01));
    }
    attack::AttackContext ctx;
    ctx.global_model = global;
    ctx.prev_global_model = prev;
    ctx.benign_updates = &benign;
    ctx.num_selected = 5;
    ctx.num_malicious_selected = 1;
    Crafted crafted;
    crafted.update = attack->craft(ctx);
    crafted.model_size = global.size();
    return crafted;
  }

  static AttackKind GetParamStatic() { return current_param_; }
  void SetUp() override { current_param_ = GetParam(); }
  static AttackKind current_param_;
};

AttackKind AttackProperty::current_param_ = AttackKind::kLie;

TEST_P(AttackProperty, UpdateHasModelSizeAndFiniteValues) {
  const Crafted crafted = craft_once(7);
  ASSERT_EQ(crafted.update.size(), crafted.model_size);
  for (const float v : crafted.update) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(AttackProperty, DeterministicInConstructionSeed) {
  const Crafted a = craft_once(7);
  const Crafted b = craft_once(7);
  EXPECT_EQ(a.update, b.update);
}

TEST_P(AttackProperty, NameIsNonEmptyAndStable) {
  Simulation sim(config());
  const auto attack = make_attack(GetParam(), sim, zka(), 3);
  EXPECT_FALSE(attack->name().empty());
  EXPECT_EQ(attack->name(), attack->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AttackProperty,
    ::testing::Values(AttackKind::kFang, AttackKind::kLie,
                      AttackKind::kMinMax, AttackKind::kMinSum,
                      AttackKind::kZkaR, AttackKind::kZkaG,
                      AttackKind::kZkaRStatic, AttackKind::kZkaGStatic,
                      AttackKind::kRealData, AttackKind::kRandomWeights,
                      AttackKind::kLabelFlip, AttackKind::kFreeRider,
                      AttackKind::kFangKrum, AttackKind::kZkaRAdaptive,
                      AttackKind::kZkaGAdaptive),
    [](const ::testing::TestParamInfo<AttackKind>& info) {
      std::string name = attack_kind_name(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace zka::fl
