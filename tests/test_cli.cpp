#include "util/cli.h"

#include <gtest/gtest.h>

namespace zka::util {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, KeyValuePairs) {
  const auto args = parse({"prog", "--rounds", "30", "--beta", "0.5"});
  EXPECT_EQ(args.get_int("rounds", 0), 30);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.5);
}

TEST(Cli, EqualsSyntax) {
  const auto args = parse({"prog", "--rounds=42", "--name=zka"});
  EXPECT_EQ(args.get_int("rounds", 0), 42);
  EXPECT_EQ(args.get_string("name", ""), "zka");
}

TEST(Cli, Fallbacks) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_string("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(args.get_bool("missing", true));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BooleanFlagForms) {
  const auto args = parse({"prog", "--full", "--verbose=false", "--quick=1"});
  EXPECT_TRUE(args.get_bool("full", false));
  EXPECT_FALSE(args.get_bool("verbose", true));
  EXPECT_TRUE(args.get_bool("quick", false));
}

TEST(Cli, BadBooleanThrows) {
  const auto args = parse({"prog", "--flag=maybe"});
  EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, FlagFollowedByFlagHasEmptyValue) {
  const auto args = parse({"prog", "--a", "--b", "value"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_string("b", ""), "value");
}

TEST(Cli, PositionalArguments) {
  const auto args = parse({"prog", "one", "--k", "v", "two"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, Int64Values) {
  const auto args = parse({"prog", "--big", "9000000000"});
  EXPECT_EQ(args.get_int64("big", 0), 9000000000LL);
}

}  // namespace
}  // namespace zka::util
