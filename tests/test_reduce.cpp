#include "tensor/reduce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "tensor/ops.h"
#include "util/rng.h"

namespace zka::tensor {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              double scale = 1.0) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

// Sequential double reference; the lane-split kernels must match it to
// normal double round-off (identical tail handling keeps small sizes exact).
double ref_dot(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

TEST(Reduce, BackendIsSelected) {
  EXPECT_STREQ(reduce_backend_name(), gemm_backend_name());
}

TEST(Reduce, DotMatchesReferenceAcrossSizes) {
  // Cover the lane loop, the tail, and the tail-only path.
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{1000},
                              std::size_t{4096}, std::size_t{100003}}) {
    const auto a = random_vec(n, 11 + n);
    const auto b = random_vec(n, 17 + n);
    const double ref = ref_dot(a, b);
    EXPECT_NEAR(dot(a, b), ref, 1e-12 * (std::abs(ref) + n)) << "n=" << n;
  }
}

TEST(Reduce, DoubleDotMatchesReference) {
  const std::size_t n = 10007;
  util::Rng rng(3);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.normal(0.0, 1.0);
    b[i] = rng.normal(0.0, 1.0);
  }
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) ref += a[i] * b[i];
  EXPECT_NEAR(dot(std::span<const double>(a), std::span<const double>(b)), ref,
              1e-10 * n);
}

TEST(Reduce, SquaredNormAndDistance) {
  const std::size_t n = 5000;
  const auto a = random_vec(n, 5);
  const auto b = random_vec(n, 6);
  double ref_n = 0.0;
  double ref_d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ref_n += static_cast<double>(a[i]) * a[i];
    const double diff = static_cast<double>(a[i]) - b[i];
    ref_d += diff * diff;
  }
  EXPECT_NEAR(squared_norm(a), ref_n, 1e-10 * ref_n);
  EXPECT_NEAR(squared_distance(a, b), ref_d, 1e-10 * ref_d);
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

TEST(Reduce, MixedPrecisionDistanceMatchesDoubleIterate) {
  const std::size_t n = 3000;
  const auto a = random_vec(n, 7);
  std::vector<double> center(n);
  util::Rng rng(8);
  for (auto& c : center) c = rng.normal(0.0, 1.0);
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - center[i];
    ref += diff * diff;
  }
  EXPECT_NEAR(squared_distance(a, std::span<const double>(center)), ref,
              1e-10 * ref);
}

TEST(Reduce, AxpyAccumulates) {
  const std::size_t n = 2049;
  const auto x = random_vec(n, 9);
  std::vector<double> y(n, 0.5);
  std::vector<double> ref = y;
  axpy(2.5, x, y);
  for (std::size_t i = 0; i < n; ++i) ref[i] += 2.5 * x[i];
  EXPECT_EQ(y, ref);  // elementwise FMA-or-not is the only wiggle room
}

TEST(Reduce, WeightedSumMatchesReference) {
  const std::size_t n = 7;
  const std::size_t dim = 9001;
  std::vector<std::vector<float>> rows;
  std::vector<std::span<const float>> views;
  std::vector<double> coeffs;
  for (std::size_t k = 0; k < n; ++k) {
    rows.push_back(random_vec(dim, 100 + k));
    coeffs.push_back(0.1 * static_cast<double>(k + 1));
  }
  for (const auto& r : rows) views.emplace_back(r);
  std::vector<double> out(dim);
  weighted_sum(views, coeffs, out);
  for (const std::size_t i : {std::size_t{0}, std::size_t{4096},
                              std::size_t{dim - 1}}) {
    double ref = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      ref += coeffs[k] * static_cast<double>(rows[k][i]);
    }
    EXPECT_NEAR(out[i], ref, 1e-12 * (std::abs(ref) + 1.0)) << i;
  }
}

TEST(Reduce, WeightedSumIsThreadCountInvariant) {
  // The parallel split must not change the result: compare pool execution
  // against the forced-serial path bit for bit.
  const std::size_t n = 12;
  const std::size_t dim = 50000;  // over the parallel threshold
  std::vector<std::vector<float>> rows;
  std::vector<std::span<const float>> views;
  std::vector<double> coeffs;
  for (std::size_t k = 0; k < n; ++k) {
    rows.push_back(random_vec(dim, 200 + k));
    coeffs.push_back(1.0 / static_cast<double>(k + 1));
  }
  for (const auto& r : rows) views.emplace_back(r);
  std::vector<double> parallel_out(dim);
  weighted_sum(views, coeffs, parallel_out);
  set_kernel_parallelism(false);
  std::vector<double> serial_out(dim);
  weighted_sum(views, coeffs, serial_out);
  set_kernel_parallelism(true);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(Reduce, SortColumnsSortsEveryColumn) {
  // Odd, non-multiple-of-vector-width tile; 11 real rows padded to 16
  // with +inf, the caller-side contract of for_each_sorted_coordinate.
  const std::size_t real_rows = 11;
  const std::size_t rows = 16;
  const std::size_t width = 37;
  std::vector<float> tile(rows * width,
                          std::numeric_limits<float>::infinity());
  util::Rng rng(77);
  for (std::size_t r = 0; r < real_rows; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      tile[r * width + c] = static_cast<float>(rng.normal(0.0, 1.0));
    }
  }
  std::vector<float> original = tile;
  sort_columns(tile.data(), rows, width);
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<float> column;
    std::vector<float> expected;
    for (std::size_t r = 0; r < rows; ++r) {
      column.push_back(tile[r * width + c]);
      expected.push_back(original[r * width + c]);
    }
    std::sort(expected.begin(), expected.end());
    // Ascending, same multiset, padding at the bottom.
    EXPECT_EQ(column, expected) << "column " << c;
    EXPECT_TRUE(std::isinf(column[real_rows])) << "column " << c;
  }
}

TEST(Reduce, GramMatrixMatchesPairwiseDots) {
  const std::size_t n = 10;
  const std::size_t dim = 513;
  std::vector<std::vector<float>> rows;
  std::vector<std::span<const float>> views;
  for (std::size_t k = 0; k < n; ++k) rows.push_back(random_vec(dim, 300 + k));
  for (const auto& r : rows) views.emplace_back(r);
  std::vector<float> gram(n * n);
  std::vector<double> sqnorms(n);
  gram_matrix(views, gram, sqnorms);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sqnorms[i], ref_dot(rows[i], rows[i]), 1e-8 * dim) << i;
    for (std::size_t j = 0; j < n; ++j) {
      const double ref = ref_dot(rows[i], rows[j]);
      // float32 GEMM accumulation: relative tolerance scaled by the norms.
      const double tol =
          1e-5 * std::sqrt(sqnorms[i] * sqnorms[j]) + 1e-6;
      EXPECT_NEAR(gram[i * n + j], ref, tol) << i << "," << j;
      EXPECT_FLOAT_EQ(gram[i * n + j], gram[j * n + i]);
    }
  }
}

}  // namespace
}  // namespace zka::tensor
