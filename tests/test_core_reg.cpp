// Distance regularizer (Eq. 3) and adversarial trainer unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adversarial_trainer.h"
#include "core/distance_reg.h"
#include "models/models.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::core {
namespace {

TEST(DistanceReg, ValueMatchesDefinition) {
  const std::vector<float> w{1.0f, 2.0f};
  const std::vector<float> global{1.0f, 0.0f};
  const std::vector<float> prev{0.0f, 0.0f};
  // ||w - g|| = 2, ||g - prev|| = 1.
  EXPECT_NEAR(DistanceRegularizer::value(w, global, prev), 1.0, 1e-6);
}

TEST(DistanceReg, ValueZeroWhenDriftMatchesHistory) {
  const std::vector<float> w{2.0f, 0.0f};
  const std::vector<float> global{1.0f, 0.0f};
  const std::vector<float> prev{0.0f, 0.0f};
  EXPECT_NEAR(DistanceRegularizer::value(w, global, prev), 0.0, 1e-6);
}

TEST(DistanceReg, SizeMismatchThrows) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(DistanceRegularizer::value(a, b, b), std::invalid_argument);
}

TEST(DistanceReg, GradientMatchesFiniteDifference) {
  util::Rng rng(1);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 2, rng);
  const std::vector<float> w0 = nn::get_flat_params(net);
  std::vector<float> global = w0;
  for (auto& g : global) g += 0.3f;
  std::vector<float> prev = global;
  for (auto& p : prev) p -= 0.1f;

  const double lambda = 0.7;
  DistanceRegularizer reg(lambda);
  net.zero_grad();
  const double value = reg.apply(net, global, prev);
  EXPECT_NEAR(value,
              lambda * DistanceRegularizer::value(w0, global, prev), 1e-5);

  const auto grads = nn::get_flat_grads(net);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < w0.size(); i += 2) {
    std::vector<float> plus = w0;
    std::vector<float> minus = w0;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double numeric =
        lambda *
        (DistanceRegularizer::value(plus, global, prev) -
         DistanceRegularizer::value(minus, global, prev)) /
        (2.0 * eps);
    EXPECT_NEAR(grads[i], numeric, 1e-3) << "coordinate " << i;
  }
}

TEST(DistanceReg, ZeroLambdaIsNoOp) {
  util::Rng rng(2);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 2, rng);
  net.zero_grad();
  const std::vector<float> global(static_cast<std::size_t>(nn::num_params(net)),
                                  1.0f);
  DistanceRegularizer reg(0.0);
  EXPECT_DOUBLE_EQ(reg.apply(net, global, global), 0.0);
  for (const float g : nn::get_flat_grads(net)) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(DistanceReg, NoGradientAtZeroDistance) {
  // w == w(t): the norm is non-differentiable there; apply() must not
  // produce NaNs or any gradient.
  util::Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 2, rng);
  net.zero_grad();
  const std::vector<float> global = nn::get_flat_params(net);
  DistanceRegularizer reg(1.0);
  const double v = reg.apply(net, global, global);
  EXPECT_TRUE(std::isfinite(v));
  for (const float g : nn::get_flat_grads(net)) EXPECT_FLOAT_EQ(g, 0.0f);
}

// ---------- AdversarialTrainer ----------

TEST(AdversarialTrainer, PullsPredictionsTowardDecoyLabel) {
  util::Rng rng(4);
  const auto factory = zka::models::task_model_factory(zka::models::Task::kFashion);
  auto model = factory(10);
  const std::vector<float> global = nn::get_flat_params(*model);

  const tensor::Tensor images =
      tensor::Tensor::uniform({16, 1, 28, 28}, rng, -1.0f, 1.0f);
  const std::int64_t decoy = 4;
  const std::vector<std::int64_t> decoys(16, decoy);

  nn::SoftmaxCrossEntropy ce;
  const double before = ce.forward(model->forward(images), decoys);

  AdversarialTrainer trainer({.epochs = 5, .batch_size = 8,
                              .learning_rate = 0.05f, .lambda = 0.0});
  const auto losses =
      trainer.train(*model, images, decoy, global, global, rng);
  EXPECT_EQ(losses.size(), 5u);
  const double after = ce.forward(model->forward(images), decoys);
  EXPECT_LT(after, before);
  // Loss trajectory must be decreasing overall.
  EXPECT_LT(losses.back(), losses.front());
}

TEST(AdversarialTrainer, RegularizerKeepsUpdateCloser) {
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const auto factory = zka::models::task_model_factory(zka::models::Task::kFashion);
  const tensor::Tensor images =
      tensor::Tensor::uniform({16, 1, 28, 28}, rng_a, -1.0f, 1.0f);

  auto run = [&](double lambda, util::Rng& rng) {
    auto model = factory(10);
    const std::vector<float> global = nn::get_flat_params(*model);
    // Pretend the global model barely moved last round.
    std::vector<float> prev = global;
    prev[0] += 0.01f;
    AdversarialTrainer trainer({.epochs = 8, .batch_size = 8,
                                .learning_rate = 0.1f, .lambda = lambda});
    trainer.train(*model, images, 2, global, prev, rng);
    return util::l2_distance(nn::get_flat_params(*model), global);
  };
  const double dist_plain = run(0.0, rng_a);
  const double dist_reg = run(1.0, rng_b);
  EXPECT_LT(dist_reg, dist_plain);
}

TEST(AdversarialTrainer, RejectsBadImages) {
  util::Rng rng(6);
  const auto factory = zka::models::task_model_factory(zka::models::Task::kFashion);
  auto model = factory(1);
  const std::vector<float> global = nn::get_flat_params(*model);
  AdversarialTrainer trainer({});
  EXPECT_THROW(trainer.train(*model, tensor::Tensor({4, 4}), 0, global,
                             global, rng),
               std::invalid_argument);
  EXPECT_THROW(trainer.train(*model, tensor::Tensor({0, 1, 28, 28}), 0,
                             global, global, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace zka::core
