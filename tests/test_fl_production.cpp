// Production cross-device engine: lazy registry, O(k) sampling, streaming
// ingestion under a memory budget, and the bitwise-determinism contracts
// that hold the whole construction together. Registered at ZKA_THREADS
// 1/4/8 (tests/CMakeLists.txt) so the parallel legs are thread-count
// invariant, not just seed-stable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "attack/random_weights.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/registry.h"
#include "fl/simulation.h"
#include "util/rng.h"

namespace zka::fl {
namespace {

SimulationConfig production_config() {
  SimulationConfig config;
  config.task = models::Task::kFashion;
  config.population = 500;
  config.clients_per_round = 12;
  config.samples_per_client = 16;
  config.malicious_fraction = 0.0;
  config.rounds = 3;
  config.train_size = 256;
  config.test_size = 96;
  config.seed = 7;
  return config;
}

void expect_same_result(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].malicious_selected, b.rounds[i].malicious_selected);
    EXPECT_EQ(a.rounds[i].benign_selected, b.rounds[i].benign_selected);
    if (std::isnan(a.rounds[i].accuracy)) {
      EXPECT_TRUE(std::isnan(b.rounds[i].accuracy));
    } else {
      EXPECT_DOUBLE_EQ(a.rounds[i].accuracy, b.rounds[i].accuracy);
    }
  }
  // Bitwise: float vectors compare exactly, no tolerance.
  EXPECT_EQ(a.final_model, b.final_model);
}

TEST(HashedShardSpec, DeterministicAndWithinBounds) {
  const data::HashedShardSpec spec(1000, 100000, 24, 42);
  EXPECT_EQ(spec.shard_size(), 24);
  const auto a = spec.shard(12345);
  const auto b = spec.shard(12345);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 24u);
  std::set<std::int64_t> seen(a.begin(), a.end());
  EXPECT_EQ(seen.size(), a.size());  // distinct indices
  for (const std::int64_t i : a) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 1000);
  }
  EXPECT_NE(spec.shard(0), spec.shard(1));
  const data::HashedShardSpec other(1000, 100000, 24, 43);
  EXPECT_NE(other.shard(12345), a);  // seed changes every shard
}

TEST(HashedShardSpec, ShardSizeClampedToDataset) {
  const data::HashedShardSpec spec(10, 1000, 64, 1);
  EXPECT_EQ(spec.shard_size(), 10);
  EXPECT_EQ(spec.shard(3).size(), 10u);
}

TEST(ClientRegistry, LazyMatchesEagerMaterialization) {
  util::Rng rng(5);
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 200, 99);
  const data::HashedShardSpec spec(dataset.size(), 5000, 8, 77);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const ClientRegistry lazy(dataset, spec, factory, ClientOptions{});
  const ClientRegistry eager(dataset, spec, factory, ClientOptions{}, true);
  EXPECT_TRUE(lazy.lazy());
  EXPECT_FALSE(eager.lazy());
  EXPECT_EQ(lazy.population(), 5000);
  EXPECT_EQ(eager.population(), 5000);
  for (const std::int64_t id : {std::int64_t{0}, std::int64_t{4999},
                                std::int64_t{123}}) {
    EXPECT_EQ(lazy.shard(id), eager.shard(id));
    EXPECT_EQ(lazy.num_samples(id), eager.num_samples(id));
  }
  EXPECT_THROW(lazy.shard(5000), std::invalid_argument);
  EXPECT_THROW(lazy.shard(-1), std::invalid_argument);
}

TEST(ProductionSimulation, RunsAndLearnsAtSmallScale) {
  SimulationConfig config = production_config();
  config.rounds = 6;
  Simulation sim(config);
  EXPECT_EQ(sim.population(), 500);
  EXPECT_TRUE(sim.registry().lazy());
  const auto result = sim.run(nullptr);
  ASSERT_EQ(result.rounds.size(), 6u);
  EXPECT_GT(result.max_accuracy, 0.3);
  EXPECT_GT(result.peak_update_bytes, 0u);
}

TEST(ProductionSimulation, ParallelAndSerialBitwiseEqual) {
  SimulationConfig config = production_config();
  config.parallel_clients = true;
  Simulation par(config);
  config.parallel_clients = false;
  Simulation ser(config);
  expect_same_result(par.run(nullptr), ser.run(nullptr));
}

TEST(ProductionSimulation, LazyAndEagerRegistryBitwiseEqual) {
  SimulationConfig config = production_config();
  config.eager_registry = false;
  Simulation lazy(config);
  config.eager_registry = true;
  Simulation eager(config);
  EXPECT_TRUE(lazy.registry().lazy());
  EXPECT_FALSE(eager.registry().lazy());
  expect_same_result(lazy.run(nullptr), eager.run(nullptr));
}

TEST(ProductionSimulation, StreamingBitwiseEqualsBufferedAndBoundsMemory) {
  SimulationConfig config = production_config();
  config.malicious_fraction = 0.01;  // floor(0.01 * 500) = 5 sybils
  const std::size_t update_bytes = [&] {
    // One probe run to learn the model size (dim * sizeof(float)).
    SimulationConfig probe = production_config();
    probe.rounds = 1;
    probe.eval_every = 0;
    Simulation sim(probe);
    return sim.run(nullptr).final_model.size() * sizeof(float);
  }();

  attack::RandomWeightsAttack attack_a(0.5f, 21);
  Simulation buffered(config);
  const auto buffered_result = buffered.run(&attack_a);
  // Buffered peak: one slot per trained benign client plus the shared
  // crafted buffer, up to clients_per_round live updates.
  EXPECT_LE(buffered_result.peak_update_bytes,
            static_cast<std::size_t>(config.clients_per_round) * update_bytes);
  EXPECT_GE(buffered_result.peak_update_bytes,
            static_cast<std::size_t>(config.clients_per_round - 4) *
                update_bytes);

  // A budget of 4 updates forces waves of 3 training slots + the crafted
  // buffer; the fold order still matches the buffered path bit for bit.
  config.memory_budget_bytes = 4 * update_bytes;
  attack::RandomWeightsAttack attack_b(0.5f, 21);
  Simulation streaming(config);
  const auto streaming_result = streaming.run(&attack_b);
  expect_same_result(buffered_result, streaming_result);
  EXPECT_LE(streaming_result.peak_update_bytes, config.memory_budget_bytes);
  EXPECT_LT(streaming_result.peak_update_bytes,
            buffered_result.peak_update_bytes);
}

TEST(ProductionSimulation, NonStreamingDefenseRejectsTinyBudget) {
  SimulationConfig config = production_config();
  config.defense = "mkrum";
  config.memory_budget_bytes = 1;  // below one update — cannot be honored
  Simulation sim(config);
  EXPECT_THROW(sim.run(nullptr), std::invalid_argument);
}

TEST(ProductionSimulation, SamplesPerClientValidated) {
  SimulationConfig config = production_config();
  config.samples_per_client = 0;
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
}

TEST(ProductionSimulation, MaliciousSelectionMatchesHypergeometric) {
  // At population 1e5 with 1% sybils and K = 200, the per-round malicious
  // selection count is hypergeometric with mean K*m/N = 2 and variance
  // ~1.98; over 600 rounds the sample mean lands within ~4 sigma of 2.0
  // (sigma_mean ~ 0.057). Mirrors Simulation::run's exact derivation (run
  // rng = seed ^ 0xf00d, per-round stream split(0x1000 + round)) without
  // paying for training.
  const std::size_t population = 100000;
  const std::size_t k = 200;
  const std::int64_t num_malicious = 1000;
  const std::int64_t rounds = 600;
  util::Rng rng(std::uint64_t{9} ^ 0xf00dULL);
  double total = 0.0;
  for (std::int64_t round = 0; round < rounds; ++round) {
    util::Rng round_rng =
        rng.split(0x1000 + static_cast<std::uint64_t>(round));
    const auto sampled = round_rng.sample_without_replacement(population, k);
    EXPECT_EQ(sampled.size(), k);
    std::int64_t malicious = 0;
    for (const std::size_t c : sampled) {
      if (static_cast<std::int64_t>(c) < num_malicious) ++malicious;
    }
    total += static_cast<double>(malicious);
  }
  const double mean = total / static_cast<double>(rounds);
  const double expected = static_cast<double>(k) *
                          static_cast<double>(num_malicious) /
                          static_cast<double>(population);
  EXPECT_NEAR(mean, expected, 0.25);
}

}  // namespace
}  // namespace zka::fl
