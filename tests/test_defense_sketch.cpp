// Sketched selection layer (defense/sketch.h, tensor/sketch.h) and the
// budget-aware coordinate-wise tree streaming (defense/statistic.h).
//
// The contracts under test, in order:
//   * JlSketch determinism (seed-pure sign pattern) and the JL norm
//     guarantee the selection layer leans on;
//   * plan_sketched_selection's replay set: ascending, unique, bounded;
//   * sketched-vs-exact selection agreement for mKrum / Bulyan under
//     ZKA-R sybils at n = 32 and n = 256 (the acceptance bar is >= 95%);
//   * bitwise equality of the buffered and streaming sketched-mKrum
//     paths through the full replay protocol;
//   * tree median / trimmed-mean: exact when one wave holds the round,
//     deterministic (and honestly labelled approximate) otherwise.
#include "defense/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/zka_r.h"
#include "defense/bulyan.h"
#include "defense/krum.h"
#include "defense/statistic.h"
#include "models/models.h"
#include "nn/module.h"
#include "tensor/sketch.h"
#include "util/rng.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

// One ZKA-R craft against the Fashion classifier, shared by every test
// in this binary (the attack itself has its own suite; here it only
// supplies realistic sybil updates).
struct ZkaRound {
  std::vector<float> global;
  Update crafted;
};

const ZkaRound& zka_round() {
  static const ZkaRound round = [] {
    const auto factory = models::task_model_factory(models::Task::kFashion);
    ZkaRound r;
    r.global = nn::get_flat_params(*factory(21));
    core::ZkaOptions opts;
    opts.synthetic_size = 6;
    opts.synthesis_epochs = 4;
    opts.classifier.epochs = 1;
    opts.classifier.batch_size = 6;
    core::ZkaRAttack attack(models::Task::kFashion, opts, 3);
    attack::AttackContext ctx;
    ctx.global_model = r.global;
    ctx.prev_global_model = r.global;
    ctx.round = 1;
    ctx.num_selected = 10;
    ctx.num_malicious_selected = 2;
    r.crafted = attack.craft(ctx);
    return r;
  }();
  return round;
}

// A round with three client populations, appended in order:
//   * core benign clients clustered tightly around the global model;
//   * `stragglers` benign clients with 5x the noise (non-IID shards,
//     stale devices) — the updates a distance-based rule excludes, with
//     a distance margin an O(1/sqrt(k)) sketch preserves;
//   * `sybils` identical ZKA-R updates at the tail (one crafted buffer,
//     many views — the server's real sybil shape, which also exercises
//     the near-duplicate cancellation guard in the scorers). ZKA-R is
//     deliberately stealthy (||crafted - global|| is far below the
//     benign spread), so the sybils rank *central* and survive —
//     exactly the paper's point, and it makes "agree with the exact
//     rule" mean "exclude the same stragglers, keep the same sybils".
//
// Agreement on exchangeable updates is not testable: when every benign
// client is IID, the exact rule's "most eccentric" picks are decided by
// noise-level margins that no approximation (or re-seeded exact run)
// could reproduce. The stragglers give the cut a real margin.
std::vector<Update> zka_round_updates(std::size_t n, std::size_t sybils,
                                      std::size_t stragglers,
                                      std::uint64_t seed) {
  const ZkaRound& zr = zka_round();
  util::Rng rng(seed);
  std::vector<Update> updates;
  updates.reserve(n);
  for (std::size_t i = 0; i + sybils < n; ++i) {
    const double sigma = (i + sybils + stragglers < n) ? 0.05 : 0.25;
    Update u(zr.global.size());
    for (std::size_t j = 0; j < u.size(); ++j) {
      u[j] = zr.global[j] + static_cast<float>(rng.normal(0.0, sigma));
    }
    updates.push_back(std::move(u));
  }
  for (std::size_t s = 0; s < sybils; ++s) updates.push_back(zr.crafted);
  return updates;
}

double selection_agreement(const std::vector<std::size_t>& exact,
                           const std::vector<std::size_t>& sketched) {
  std::size_t overlap = 0;
  for (const std::size_t i : sketched) {
    overlap += std::binary_search(exact.begin(), exact.end(), i) ? 1 : 0;
  }
  return exact.empty() ? 1.0
                       : static_cast<double>(overlap) /
                             static_cast<double>(exact.size());
}

TEST(JlSketch, SameSeedIsBitwiseIdenticalAcrossInstances) {
  const std::size_t dim = 3000, k = 64;
  util::Rng rng(1);
  std::vector<float> x(dim);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));

  const tensor::JlSketch a(dim, k, 42), b(dim, k, 42), c(dim, k, 43);
  std::vector<float> pa(k), pb(k), pc(k);
  a.project(x, pa);
  b.project(x, pb);
  c.project(x, pc);
  EXPECT_EQ(pa, pb) << "same (seed, dim, k) must give identical projections";
  EXPECT_NE(pa, pc) << "a different seed must change the sign pattern";
}

TEST(JlSketch, PreservesSquaredNormsApproximately) {
  // E||Px||^2 = ||x||^2 with relative error O(1/sqrt(k)): every single
  // projection lands in a wide window and the mean ratio lands in a
  // tight one.
  const std::size_t dim = 4096, k = 256;
  const tensor::JlSketch sketch(dim, k, 7);
  util::Rng rng(2);
  double ratio_sum = 0.0;
  const int trials = 32;
  std::vector<float> x(dim), p(k);
  for (int t = 0; t < trials; ++t) {
    double norm = 0.0;
    for (auto& v : x) {
      v = static_cast<float>(rng.normal(0.0, 1.0));
      norm += static_cast<double>(v) * v;
    }
    sketch.project(x, p);
    double pnorm = 0.0;
    for (const float v : p) pnorm += static_cast<double>(v) * v;
    const double ratio = pnorm / norm;
    EXPECT_GT(ratio, 0.5) << "trial " << t;
    EXPECT_LT(ratio, 1.5) << "trial " << t;
    ratio_sum += ratio;
  }
  const double mean_ratio = ratio_sum / trials;
  EXPECT_GT(mean_ratio, 0.9);
  EXPECT_LT(mean_ratio, 1.1);
}

TEST(JlSketch, RejectsSketchWiderThanInput) {
  EXPECT_THROW(tensor::JlSketch(8, 16, 1), std::exception);
  EXPECT_THROW(tensor::JlSketch(8, 0, 1), std::exception);
}

TEST(SketchedSelection, ReplaySetIsAscendingUniqueAndBounded) {
  const std::size_t n = 100, f = 10, band = 16;
  const std::size_t m = n - f;
  std::vector<std::size_t> order(n);
  // A scrambled-but-deterministic ranking (not identity, so rank != index).
  for (std::size_t i = 0; i < n; ++i) order[i] = (i * 37) % n;
  const auto plan = plan_sketched_selection(order, n, f, m, band);

  ASSERT_EQ(plan.order.size(), n);
  EXPECT_TRUE(std::is_sorted(plan.replay.begin(), plan.replay.end()));
  EXPECT_EQ(std::adjacent_find(plan.replay.begin(), plan.replay.end()),
            plan.replay.end());
  // O(f + band), never O(n): the whole point of the streaming second pass.
  EXPECT_LE(plan.replay.size(), 2 * band + 2 * f + 2);
  // Every band rank and every rank outside the centroid pool must be
  // replayable — the re-check reads those rows at full dimension.
  for (std::size_t r = plan.m - plan.band_lo; r < plan.m + plan.band_hi;
       ++r) {
    EXPECT_TRUE(std::binary_search(plan.replay.begin(), plan.replay.end(),
                                   plan.order[r]))
        << "band rank " << r << " not replayable";
  }
  for (std::size_t r = plan.pool; r < n; ++r) {
    EXPECT_TRUE(std::binary_search(plan.replay.begin(), plan.replay.end(),
                                   plan.order[r]))
        << "pool-complement rank " << r << " not replayable";
  }
}

TEST(SketchedSelection, WholeRoundSelectedNeedsNoReplay) {
  // m == n: nothing is rejected, no band, the mean is sum_all / n.
  const std::size_t n = 64;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  const auto plan = plan_sketched_selection(order, n, 0, n, 16);
  EXPECT_TRUE(plan.replay.empty());
  EXPECT_EQ(plan.band_lo + plan.band_hi, 0u);
}

class SketchAgreementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SketchAgreementTest, MkrumSketchedMatchesExactSelection) {
  const auto [n, sybils] = GetParam();
  // m = n - f: the f excluded slots land on the f stragglers.
  const auto updates = zka_round_updates(n, sybils, sybils, 0xA0 + n);
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 16};
  ASSERT_TRUE(sketch.enabled_for(n, updates.front().size()));

  const MultiKrum exact(sybils, 0, /*iterative=*/false);
  const MultiKrum sketched(sybils, 0, /*iterative=*/false, sketch);
  const auto exact_sel = exact.select(updates);
  const auto sketched_sel = sketched.select(updates);
  ASSERT_EQ(exact_sel.size(), n - sybils);
  ASSERT_EQ(sketched_sel.size(), n - sybils);
  EXPECT_GE(selection_agreement(exact_sel, sketched_sel), 0.95)
      << "sketched mKrum drifted from the exact selection at n = " << n;
}

INSTANTIATE_TEST_SUITE_P(
    RoundSizes, SketchAgreementTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{32, 4},
                      std::pair<std::size_t, std::size_t>{256, 16}),
    [](const ::testing::TestParamInfo<std::pair<std::size_t, std::size_t>>&
           info) { return "n" + std::to_string(info.param.first); });

TEST(SketchedKrum, WinnerIsBenignUnderAmplifiedZkaRSybils) {
  // Plain Krum (m = 1) with the ZKA-R direction boosted the way a
  // visibility-unconstrained attacker would scale it — to 4x the benign
  // spread, well outside the cluster: the sketched rule must still hand
  // the round to a benign update.
  const std::size_t n = 32, sybils = 4;
  auto updates = zka_round_updates(n, sybils, 0, 0xB1);
  const ZkaRound& zr = zka_round();
  double delta_sq = 0.0;
  for (std::size_t j = 0; j < zr.global.size(); ++j) {
    const double d = zr.crafted[j] - zr.global[j];
    delta_sq += d * d;
  }
  const double spread =
      0.05 * std::sqrt(static_cast<double>(zr.global.size()));
  const float amp =
      static_cast<float>(4.0 * spread / std::sqrt(delta_sq));
  for (std::size_t s = n - sybils; s < n; ++s) {
    for (std::size_t j = 0; j < updates[s].size(); ++j) {
      updates[s][j] = zr.global[j] + amp * (zr.crafted[j] - zr.global[j]);
    }
  }
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 8};
  const MultiKrum krum(sybils, 1, /*iterative=*/false, sketch);
  const auto selected = krum.select(updates);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_LT(selected.front(), n - sybils)
      << "sketched Krum elected a sybil";
}

TEST(SketchedBulyan, SketchedMatchesExactSelection) {
  // n >= 4f + 3; theta = n - 2f = 24 slots land exactly on the 20 core
  // clients + 4 central sybils, rejecting the 8 stragglers with margin.
  const std::size_t n = 32, f = 4;
  const auto updates = zka_round_updates(n, f, 2 * f, 0xC2);
  const auto weights = unit_weights(n);
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 16};

  Bulyan exact(f);
  Bulyan sketched(f, sketch);
  const auto exact_sel = exact.aggregate(updates, weights).selected;
  const auto sketched_sel = sketched.aggregate(updates, weights).selected;
  ASSERT_FALSE(exact_sel.empty());
  ASSERT_EQ(exact_sel.size(), sketched_sel.size());
  EXPECT_GE(selection_agreement(exact_sel, sketched_sel), 0.95)
      << "sketched Bulyan drifted from the exact selection";
}

TEST(SketchedMkrumStreaming, BitwiseEqualsBufferedAggregate) {
  const std::size_t n = 32, sybils = 4;
  const auto updates = zka_round_updates(n, sybils, sybils, 0xD3);
  const auto weights = unit_weights(n);
  const std::size_t dim = updates.front().size();
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 16};

  MultiKrum buffered(sybils, 0, /*iterative=*/false, sketch);
  const AggregationResult batch = buffered.aggregate(updates, weights);

  MultiKrum streaming(sybils, 0, /*iterative=*/false, sketch);
  ASSERT_TRUE(streaming.supports_streaming());
  EXPECT_TRUE(streaming.streaming_exact());
  streaming.begin_stream(dim, weights);
  for (const auto& u : updates) streaming.stream_update(u);
  const auto request = streaming.stream_replay_request();
  EXPECT_FALSE(request.empty());
  EXPECT_LT(request.size(), n);  // bounded second pass, not a re-send of all
  const std::vector<std::size_t> replay(request.begin(), request.end());
  for (const std::size_t i : replay) streaming.stream_replay(i, updates[i]);
  const AggregationResult streamed = streaming.finish_stream();

  EXPECT_EQ(batch.selected, streamed.selected);
  ASSERT_EQ(batch.model.size(), streamed.model.size());
  for (std::size_t i = 0; i < batch.model.size(); ++i) {
    ASSERT_EQ(batch.model[i], streamed.model[i])
        << "streaming diverged at coordinate " << i;
  }
}

TEST(SketchedMkrumStreaming, DegenerateSmallRoundBuffersAndStaysExact) {
  // n < 8 disables sketching; the streaming interface must still work by
  // buffering internally and running the exact rule.
  const std::size_t n = 6, dim = 700;
  util::Rng rng(4);
  std::vector<Update> updates(n, Update(dim));
  for (auto& u : updates) {
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  const auto weights = unit_weights(n);
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 16};

  MultiKrum buffered(2, 0, /*iterative=*/false, sketch);
  const AggregationResult batch = buffered.aggregate(updates, weights);

  MultiKrum streaming(2, 0, /*iterative=*/false, sketch);
  streaming.begin_stream(dim, weights);
  for (const auto& u : updates) streaming.stream_update(u);
  EXPECT_TRUE(streaming.stream_replay_request().empty());
  const AggregationResult streamed = streaming.finish_stream();
  EXPECT_EQ(batch.selected, streamed.selected);
  EXPECT_EQ(batch.model, streamed.model);
}

TEST(SketchedMkrumStreaming, RejectsOutOfOrderReplay) {
  const std::size_t n = 32, sybils = 4;
  const auto updates = zka_round_updates(n, sybils, sybils, 0xE4);
  const SketchOptions sketch{.sketch_dim = 256, .recheck_band = 16};
  MultiKrum streaming(sybils, 0, /*iterative=*/false, sketch);
  streaming.begin_stream(updates.front().size(), unit_weights(n));
  for (const auto& u : updates) streaming.stream_update(u);
  const auto request = streaming.stream_replay_request();
  ASSERT_GT(request.size(), 1u);
  const std::size_t wrong = request[1];  // ascending contract: [0] first
  EXPECT_THROW(streaming.stream_replay(wrong, updates[wrong]),
               std::exception);
}

TEST(CoordTree, WaveSizeClampsToUsefulRange) {
  const std::size_t dim = 1000, n = 64;
  // Tiny budget: floor at 2 (a 1-ary tree never reduces).
  EXPECT_EQ(coord_tree_wave(1, dim, n), 2u);
  // Exactly 5 updates of dim floats per wave.
  EXPECT_EQ(coord_tree_wave(5 * dim * sizeof(float), dim, n), 5u);
  // Unbounded-ish budget: cap at n (one wave = exact batch rule).
  EXPECT_EQ(coord_tree_wave(1000 * dim * sizeof(float), dim, n), n);
}

std::vector<Update> noisy_round(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> updates(n, Update(dim));
  for (auto& u : updates) {
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return updates;
}

template <typename MakeAgg>
AggregationResult stream_all(MakeAgg make, const std::vector<Update>& updates,
                             const std::vector<std::int64_t>& weights) {
  auto agg = make();
  agg->begin_stream(updates.front().size(), weights);
  for (const auto& u : updates) agg->stream_update(u);
  return agg->finish_stream();
}

TEST(TreeMedian, SingleWaveStreamingEqualsBatchBitwise) {
  const std::size_t n = 9, dim = 513;
  const auto updates = noisy_round(n, dim, 5);
  const auto weights = unit_weights(n);
  const std::size_t budget = n * dim * sizeof(float);  // one wave holds all

  Median batch(budget);
  const auto exact = batch.aggregate(updates, weights);
  const auto streamed = stream_all(
      [&] { return std::make_unique<Median>(budget); }, updates, weights);
  EXPECT_EQ(exact.model, streamed.model);
}

TEST(TreeMedian, MultiWaveIsDeterministicAndBounded) {
  const std::size_t n = 10, dim = 257;
  const auto updates = noisy_round(n, dim, 6);
  const auto weights = unit_weights(n);
  const std::size_t budget = 4 * dim * sizeof(float);  // wave of 4 -> 3 levels

  Median median(budget);
  EXPECT_TRUE(median.supports_streaming());
  EXPECT_FALSE(median.streaming_exact());  // documented approximation

  const auto a = stream_all([&] { return std::make_unique<Median>(budget); },
                            updates, weights);
  const auto b = stream_all([&] { return std::make_unique<Median>(budget); },
                            updates, weights);
  EXPECT_EQ(a.model, b.model) << "same arrival order must be bitwise stable";

  // Median-of-medians stays inside the per-coordinate value envelope.
  for (std::size_t j = 0; j < dim; ++j) {
    float lo = updates[0][j], hi = updates[0][j];
    for (const auto& u : updates) {
      lo = std::min(lo, u[j]);
      hi = std::max(hi, u[j]);
    }
    ASSERT_GE(a.model[j], lo) << "coordinate " << j;
    ASSERT_LE(a.model[j], hi) << "coordinate " << j;
  }
}

TEST(TreeTrimmedMean, SingleWaveStreamingEqualsBatchBitwise) {
  const std::size_t n = 11, dim = 400;
  const auto updates = noisy_round(n, dim, 7);
  const auto weights = unit_weights(n);
  const std::size_t budget = n * dim * sizeof(float);

  TrimmedMean batch(2, budget);
  const auto exact = batch.aggregate(updates, weights);
  const auto streamed = stream_all(
      [&] { return std::make_unique<TrimmedMean>(2, budget); }, updates,
      weights);
  EXPECT_EQ(exact.model, streamed.model);
}

TEST(Factory, SketchAndBudgetKnobsReachTheRules) {
  AggregatorOptions options;
  options.num_byzantine = 2;
  options.sketch_dim = 128;
  const auto mkrum = make_aggregator("mkrum", options);
  EXPECT_TRUE(mkrum->supports_streaming());
  EXPECT_TRUE(mkrum->streaming_exact());

  AggregatorOptions budgeted;
  budgeted.memory_budget_bytes = 1 << 20;
  const auto median = make_aggregator("median", budgeted);
  EXPECT_TRUE(median->supports_streaming());
  EXPECT_FALSE(median->streaming_exact());

  // Legacy signature keeps the exact batch-only behaviour.
  EXPECT_FALSE(make_aggregator("mkrum", 2)->supports_streaming());
  EXPECT_FALSE(make_aggregator("median", 2)->supports_streaming());
}

}  // namespace
}  // namespace zka::defense
