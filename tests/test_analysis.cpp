#include "analysis/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace zka::analysis {
namespace {

using tensor::Tensor;

TEST(Pca, RecoversDominantAxisOfAnisotropicCloud) {
  // Points spread along (1, 1)/sqrt(2) with small orthogonal noise.
  util::Rng rng(1);
  const std::int64_t n = 200;
  Tensor rows({n, 2});
  for (std::int64_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 3.0);
    const double s = rng.normal(0.0, 0.1);
    rows[i * 2] = static_cast<float>((t + s) / std::numbers::sqrt2);
    rows[i * 2 + 1] = static_cast<float>((t - s) / std::numbers::sqrt2);
  }
  const PcaResult result = pca_project(rows, 2);
  ASSERT_EQ(result.component_variance.size(), 2u);
  // First component carries nearly all variance.
  EXPECT_GT(result.component_variance[0],
            50.0 * result.component_variance[1]);
  EXPECT_NEAR(result.component_variance[0] + result.component_variance[1],
              result.total_variance, 0.05 * result.total_variance);
}

TEST(Pca, ProjectionShapeAndCentering) {
  util::Rng rng(2);
  const Tensor rows = Tensor::uniform({30, 7}, rng, -1.0f, 1.0f);
  const PcaResult result = pca_project(rows, 2);
  EXPECT_EQ(result.projection.shape(), (tensor::Shape{30, 2}));
  // Projections of centered data have (near) zero mean.
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < 30; ++i) {
      mean += result.projection[i * 2 + c];
    }
    EXPECT_NEAR(mean / 30.0, 0.0, 1e-3);
  }
}

TEST(Pca, ComponentsOrderedByVariance) {
  util::Rng rng(3);
  Tensor rows({50, 4});
  for (std::int64_t i = 0; i < 50; ++i) {
    rows[i * 4] = static_cast<float>(rng.normal(0.0, 5.0));
    rows[i * 4 + 1] = static_cast<float>(rng.normal(0.0, 2.0));
    rows[i * 4 + 2] = static_cast<float>(rng.normal(0.0, 0.5));
    rows[i * 4 + 3] = static_cast<float>(rng.normal(0.0, 0.1));
  }
  const PcaResult result = pca_project(rows, 3);
  EXPECT_GT(result.component_variance[0], result.component_variance[1]);
  EXPECT_GT(result.component_variance[1], result.component_variance[2]);
}

TEST(Pca, FlattensHighRankSamples) {
  util::Rng rng(4);
  const Tensor rows = Tensor::uniform({10, 2, 3, 3}, rng, -1.0f, 1.0f);
  const PcaResult result = pca_project(rows, 2);
  EXPECT_EQ(result.projection.shape(), (tensor::Shape{10, 2}));
}

TEST(Pca, Validation) {
  EXPECT_THROW(pca_project(Tensor({1, 5}), 1), std::invalid_argument);
  EXPECT_THROW(pca_project(Tensor({5}), 1), std::invalid_argument);
  EXPECT_THROW(pca_project(Tensor({5, 3}), 0), std::invalid_argument);
  EXPECT_THROW(pca_project(Tensor({5, 3}), 4), std::invalid_argument);
}

TEST(Pca, DegenerateConstantDataGivesZeroVariance) {
  const Tensor rows({6, 3}, 2.5f);
  const PcaResult result = pca_project(rows, 2);
  EXPECT_NEAR(result.total_variance, 0.0, 1e-9);
  EXPECT_NEAR(result.component_variance[0], 0.0, 1e-9);
}

TEST(MeanFeatureVariance, HandComputedCase) {
  // Two features: variance 2 and 0 -> mean 1.
  const Tensor rows({3, 2},
                    std::vector<float>{1.0f, 5.0f, 3.0f, 5.0f, -1.0f, 5.0f});
  EXPECT_NEAR(mean_feature_variance(rows), 2.0, 1e-6);
}

TEST(MeanFeatureVariance, ScalesQuadratically) {
  util::Rng rng(5);
  Tensor rows = Tensor::normal({100, 8}, rng);
  const double v1 = mean_feature_variance(rows);
  rows *= 3.0f;
  EXPECT_NEAR(mean_feature_variance(rows), 9.0 * v1, 0.01 * 9.0 * v1);
}

TEST(MeanFeatureVariance, Validation) {
  EXPECT_THROW(mean_feature_variance(Tensor({1, 4})), std::invalid_argument);
}

}  // namespace
}  // namespace zka::analysis
