#include "util/logging.h"

#include <gtest/gtest.h>

namespace zka::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelIsSettable) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacrosCompileAndRespectLevel) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  ZKA_LOG_DEBUG() << "invisible " << 1;
  ZKA_LOG_INFO() << "invisible " << 2;
  ZKA_LOG_ERROR() << "visible " << 3;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("invisible"), std::string::npos);
  EXPECT_NE(err.find("visible 3"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, InfoVisibleAtDefaultLevel) {
  testing::internal::CaptureStderr();
  ZKA_LOG_INFO() << "hello";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO ] hello"), std::string::npos);
}

TEST_F(LoggingTest, WarnPrefix) {
  testing::internal::CaptureStderr();
  ZKA_LOG_WARN() << "careful";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN ] careful"), std::string::npos);
}

}  // namespace
}  // namespace zka::util
