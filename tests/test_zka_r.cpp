// ZKA-R behavioural tests (Sec. IV-B / Fig. 2 of the paper).
#include "core/zka_r.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::core {
namespace {

attack::AttackContext context_for(const std::vector<float>& global,
                                  const std::vector<float>& prev) {
  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = prev;
  ctx.round = 1;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;
  return ctx;
}

ZkaOptions small_options() {
  ZkaOptions opts;
  opts.synthetic_size = 6;
  opts.synthesis_epochs = 4;
  opts.classifier.epochs = 1;
  opts.classifier.batch_size = 6;
  return opts;
}

TEST(ZkaR, IsZeroKnowledge) {
  ZkaRAttack attack(models::Task::kFashion, small_options(), 1);
  EXPECT_FALSE(attack.needs_benign_updates());
  EXPECT_EQ(attack.name(), "ZKA-R");
}

TEST(ZkaR, CraftsUpdateOfGlobalSizeDifferentFromGlobal) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(7));
  ZkaRAttack attack(models::Task::kFashion, small_options(), 2);
  const auto update = attack.craft(context_for(global, global));
  ASSERT_EQ(update.size(), global.size());
  EXPECT_GT(util::l2_distance(update, global), 1e-4);
}

TEST(ZkaR, SynthesisLossDecreasesOverEpochs) {
  // Fig. 6: the filter training converges within few epochs.
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(8));
  ZkaOptions opts = small_options();
  opts.synthesis_epochs = 8;
  opts.synthesis_lr = 0.1f;
  ZkaRAttack attack(models::Task::kFashion, opts, 3);
  attack.craft(context_for(global, global));
  const auto& losses = attack.synthesis_loss_history();
  ASSERT_EQ(losses.size(), 8u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(ZkaR, TrainedImagesAreMoreAmbiguousThanStatic) {
  // The trained filter must push the global model's prediction on B toward
  // the uniform distribution Y_D (lower CE against uniform than random
  // images achieve).
  const auto factory = models::task_model_factory(models::Task::kFashion);
  auto classifier = factory(9);
  const std::vector<float> global = nn::get_flat_params(*classifier);

  ZkaOptions trained_opts = small_options();
  trained_opts.synthesis_epochs = 10;
  trained_opts.synthesis_lr = 0.1f;
  ZkaRAttack trained(models::Task::kFashion, trained_opts, 4);
  trained.craft(context_for(global, global));

  ZkaOptions static_opts = small_options();
  static_opts.train_synthesis = false;
  ZkaRAttack untrained(models::Task::kFashion, static_opts, 4);
  untrained.craft(context_for(global, global));
  EXPECT_EQ(untrained.name(), "ZKA-R-static");

  auto ambiguity = [&](const tensor::Tensor& images) {
    nn::set_flat_params(*classifier, global);
    const tensor::Tensor logits = classifier->forward(images);
    tensor::Tensor uniform(logits.shape(), 0.1f);
    nn::SoftmaxCrossEntropy ce;
    return ce.forward(logits, uniform);
  };
  EXPECT_LT(ambiguity(trained.last_synthetic_images()),
            ambiguity(untrained.last_synthetic_images()));
}

TEST(ZkaR, StaticVariantSkipsTraining) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const std::vector<float> global = nn::get_flat_params(*factory(10));
  ZkaOptions opts = small_options();
  opts.train_synthesis = false;
  ZkaRAttack attack(models::Task::kFashion, opts, 5);
  attack.craft(context_for(global, global));
  EXPECT_TRUE(attack.synthesis_loss_history().empty());
}

TEST(ZkaR, DecoyLabelFixedAndWithinRange) {
  ZkaRAttack attack(models::Task::kFashion, small_options(), 6);
  EXPECT_GE(attack.decoy_label(), 0);
  EXPECT_LT(attack.decoy_label(), 10);
  ZkaOptions opts = small_options();
  opts.decoy_label = 7;
  ZkaRAttack fixed(models::Task::kFashion, opts, 6);
  EXPECT_EQ(fixed.decoy_label(), 7);
}

TEST(ZkaR, SyntheticImageShapesMatchTask) {
  const auto factory = models::task_model_factory(models::Task::kCifar);
  const std::vector<float> global = nn::get_flat_params(*factory(11));
  ZkaOptions opts = small_options();
  opts.synthetic_size = 3;
  opts.synthesis_epochs = 2;
  ZkaRAttack attack(models::Task::kCifar, opts, 7);
  attack.craft(context_for(global, global));
  EXPECT_EQ(attack.last_synthetic_images().shape(),
            (tensor::Shape{3, 3, 32, 32}));
}

TEST(ZkaR, RejectsWrongGlobalSize) {
  ZkaRAttack attack(models::Task::kFashion, small_options(), 8);
  const std::vector<float> bogus(17, 0.0f);
  EXPECT_THROW(attack.craft(context_for(bogus, bogus)), std::exception);
}

}  // namespace
}  // namespace zka::core
