#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace zka::util {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(std::span<const double>(xs)), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, VarianceIsUnbiasedSampleVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(variance(std::span<const double>(xs)), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::span<const double>(std::vector<double>{3.0})),
                   0.0);
}

TEST(Stats, StddevFloatOverload) {
  const std::vector<float> xs{1.0f, 3.0f};
  EXPECT_NEAR(stddev(std::span<const float>(xs)), std::sqrt(2.0), 1e-6);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_FLOAT_EQ(median(std::vector<float>{5.0f}), 5.0f);
}

TEST(Stats, MedianRobustToOutlier) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 1e9}), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_NEAR(quantile(xs, 0.25), 17.5, 1e-12);
}

TEST(Stats, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.999), 3.090232, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.001), -3.090232, 1e-5);
}

class InverseCdfRoundtrip : public ::testing::TestWithParam<double> {};

TEST_P(InverseCdfRoundtrip, MatchesForwardCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, InverseCdfRoundtrip,
                         ::testing::Values(0.001, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.9, 0.99, 0.999));

TEST(Stats, L2NormAndDistance) {
  const std::vector<float> a{3.0f, 4.0f};
  const std::vector<float> b{0.0f, 0.0f};
  EXPECT_NEAR(l2_norm(a), 5.0, 1e-6);
  EXPECT_NEAR(l2_distance(a, b), 5.0, 1e-6);
  EXPECT_NEAR(l2_distance(a, a), 0.0, 1e-9);
}

TEST(Stats, CosineSimilarity) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 2.0f};
  const std::vector<float> c{3.0f, 0.0f};
  const std::vector<float> zero{0.0f, 0.0f};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-7);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0, 1e-7);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);
}

TEST(Stats, RunningStatMatchesBatchFormulas) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat rs;
  for (const double x : xs) rs.push(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(std::span<const double>(xs)), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(std::span<const double>(xs)), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatEmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.push(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace zka::util
