// Targeted backdoor extension: trigger stamping, local poisoned training,
// model-replacement boosting, and the backdoor-success metric.
#include "attack/backdoor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "util/stats.h"

namespace zka::attack {
namespace {

TEST(Trigger, StampsCornerPatchOnAllChannels) {
  tensor::Tensor images({2, 3, 8, 8}, -0.5f);
  apply_trigger(images, 3);
  for (std::int64_t s = 0; s < 2; ++s) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(images.at({s, c, 0, 0}), 1.0f);
      EXPECT_FLOAT_EQ(images.at({s, c, 2, 2}), 1.0f);
      EXPECT_FLOAT_EQ(images.at({s, c, 3, 3}), -0.5f);
      EXPECT_FLOAT_EQ(images.at({s, c, 0, 3}), -0.5f);
    }
  }
}

TEST(Trigger, ClampsToImageSize) {
  tensor::Tensor images({1, 1, 2, 2}, 0.0f);
  apply_trigger(images, 10);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    EXPECT_FLOAT_EQ(images[i], 1.0f);
  }
  tensor::Tensor not_nchw({4});
  EXPECT_THROW(apply_trigger(not_nchw, 2), std::invalid_argument);
}

TEST(BackdoorAttackTest, Validation) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  data::Dataset empty;
  empty.spec = models::fashion_spec();
  empty.images = tensor::Tensor({0, 1, 28, 28});
  EXPECT_THROW(BackdoorAttack(empty, factory, {}, 1),
               std::invalid_argument);
  const auto data =
      data::make_synthetic_dataset(models::Task::kFashion, 10, 2);
  BackdoorOptions bad;
  bad.target_label = 99;
  EXPECT_THROW(BackdoorAttack(data, factory, bad, 1), std::invalid_argument);
}

TEST(BackdoorAttackTest, BoostAmplifiesDelta) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const auto data =
      data::make_synthetic_dataset(models::Task::kFashion, 32, 3);
  const std::vector<float> global = nn::get_flat_params(*factory(5));
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;

  BackdoorOptions plain;
  plain.boost = 1.0f;
  BackdoorAttack a(data, factory, plain, 7);
  BackdoorOptions boosted = plain;
  boosted.boost = 5.0f;
  BackdoorAttack b(data, factory, boosted, 7);

  const double d_plain = util::l2_distance(a.craft(ctx), global);
  const double d_boost = util::l2_distance(b.craft(ctx), global);
  EXPECT_NEAR(d_boost, 5.0 * d_plain, 0.2 * 5.0 * d_plain);
}

TEST(BackdoorAttackTest, ImplantsBackdoorUnderFedAvg) {
  fl::SimulationConfig config;
  config.num_clients = 20;
  config.clients_per_round = 8;
  config.rounds = 8;
  config.train_size = 500;
  config.test_size = 200;
  config.malicious_fraction = 0.25;
  config.seed = 13;

  fl::Simulation sim(config);
  BackdoorOptions options;
  options.target_label = 6;
  options.poison_fraction = 0.6;
  options.boost = 4.0f;  // model replacement against 8-client averaging
  BackdoorAttack attack(sim.malicious_data(),
                        models::task_model_factory(config.task), options,
                        17);
  const auto result = sim.run(&attack);

  // The model must still mostly work on clean data (targeted attack)...
  EXPECT_GT(result.max_accuracy, 0.35);

  // ...but the trigger must flip predictions to the target class far more
  // often than for the attack-free model.
  const auto factory = models::task_model_factory(config.task);
  fl::SimulationConfig clean_config = config;
  clean_config.malicious_fraction = 0.0;
  fl::Simulation clean_sim(clean_config);
  const auto clean_result = clean_sim.run(nullptr);

  const double rate_attacked = fl::backdoor_success_rate(
      factory, result.final_model, sim.test_data(), options.target_label,
      options.trigger_size);
  const double rate_clean = fl::backdoor_success_rate(
      factory, clean_result.final_model, clean_sim.test_data(),
      options.target_label, options.trigger_size);
  EXPECT_GT(rate_attacked, rate_clean + 0.15);
  EXPECT_GT(rate_attacked, 0.3);
}

TEST(BackdoorMetric, PerfectBackdoorDetected) {
  // A "model" that always answers the target class gives rate 1.
  const auto test_set =
      data::make_synthetic_dataset(models::Task::kFashion, 60, 29);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  auto model = factory(2);
  // Drive the final layer bias to a huge value for class 4.
  auto params = nn::get_flat_params(*model);
  // Final bias is the last 10 entries of the flat vector.
  for (std::size_t i = params.size() - 10; i < params.size(); ++i) {
    params[i] = -100.0f;
  }
  params[params.size() - 10 + 4] = 100.0f;
  const double rate =
      fl::backdoor_success_rate(factory, params, test_set, 4, 4);
  EXPECT_NEAR(rate, 1.0, 1e-9);
}

TEST(BackdoorMetric, ExcludesTargetClassImages) {
  // Dataset containing only the target class -> NaN (no eligible images).
  data::Dataset only_target;
  only_target.spec = models::fashion_spec();
  only_target.images = tensor::Tensor({3, 1, 28, 28});
  only_target.labels = {5, 5, 5};
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const auto params = nn::get_flat_params(*factory(3));
  EXPECT_TRUE(std::isnan(
      fl::backdoor_success_rate(factory, params, only_target, 5, 4)));
}

}  // namespace
}  // namespace zka::attack
