// DnC spectral defense tests.
#include "defense/dnc.h"

#include <gtest/gtest.h>

#include "attack/fang.h"
#include "defense/krum.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

std::vector<Update> cluster_plus_outliers(std::size_t benign,
                                          std::size_t mal, std::size_t dim,
                                          float offset, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t i = 0; i < benign; ++i) {
    Update u(dim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }
  for (std::size_t i = 0; i < mal; ++i) {
    Update u(dim);
    for (auto& x : u) {
      x = offset + static_cast<float>(rng.normal(0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(DncRule, FiltersSpectralOutliers) {
  DncOptions options;
  options.num_byzantine = 2;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 64, 5.0f, 1);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) {
    EXPECT_LT(idx, 8u) << "outlier survived DnC";
  }
  for (const float v : result.model) EXPECT_LT(std::abs(v), 1.0f);
  EXPECT_TRUE(dnc.selects_clients());
  EXPECT_EQ(dnc.name(), "DnC");
}

TEST(DncRule, KeepsExpectedCountPerIteration) {
  DncOptions options;
  options.num_byzantine = 2;
  options.iterations = 1;
  options.filter_fraction = 1.0;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 32, 3.0f, 2);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 8u);
}

TEST(DncRule, MultipleIterationsIntersect) {
  DncOptions options;
  options.num_byzantine = 1;
  options.iterations = 4;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(9, 1, 48, 10.0f, 3);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  // At most 9 survive, outlier never does; intersection can remove more.
  EXPECT_LE(result.selected.size(), 9u);
  for (const auto idx : result.selected) EXPECT_LT(idx, 9u);
}

TEST(DncRule, SubsamplingStillCatchesOutliers) {
  DncOptions options;
  options.num_byzantine = 2;
  options.subsample_dim = 16;  // far fewer than dim
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 256, 4.0f, 4);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) EXPECT_LT(idx, 8u);
}

TEST(DncRule, IdenticalUpdatesDegenerateGracefully) {
  DncOptions options;
  options.num_byzantine = 2;
  Dnc dnc(options);
  const Update u{1.0f, -2.0f, 0.5f};
  const std::vector<Update> updates(8, u);
  const auto result = dnc.aggregate(updates, unit_weights(8));
  ASSERT_FALSE(result.selected.empty());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(result.model[i], u[i], 1e-5);
  }
}

TEST(DncRule, FactoryConstructs) {
  const auto agg = make_aggregator("dnc", 2);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->name(), "DnC");
}

}  // namespace
}  // namespace zka::defense

namespace zka::attack {
namespace {

TEST(FangKrum, FoolsKrumOnClusteredBenignUpdates) {
  util::Rng rng(5);
  const std::size_t dim = 32;
  std::vector<float> global(dim);
  for (auto& x : global) x = static_cast<float>(rng.normal(0.0, 0.3));
  std::vector<Update> benign(8, Update(dim));
  for (auto& u : benign) {
    for (std::size_t i = 0; i < dim; ++i) {
      u[i] = global[i] + 0.05f + static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.benign_updates = &benign;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;

  FangKrumAttack attack(2);
  const Update crafted = attack.craft(ctx);
  ASSERT_EQ(crafted.size(), dim);
  EXPECT_GT(attack.last_lambda(), 0.0);

  // Verify the attacker's simulation: Krum over {crafted x2, benign...}
  // picks the crafted update.
  defense::MultiKrum krum(2, 1);
  std::vector<Update> pool{crafted, crafted};
  pool.insert(pool.end(), benign.begin(), benign.end());
  const auto selected = krum.select(pool);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_LT(selected.front(), 2u);
}

TEST(FangKrum, PushesOppositeToConsensusDirection) {
  util::Rng rng(6);
  const std::size_t dim = 16;
  std::vector<float> global(dim, 0.0f);
  std::vector<Update> benign(6, Update(dim));
  for (auto& u : benign) {
    for (auto& x : u) x = 0.1f + static_cast<float>(rng.normal(0.0, 0.01));
  }
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.benign_updates = &benign;
  ctx.num_malicious_selected = 1;
  FangKrumAttack attack(1);
  const Update crafted = attack.craft(ctx);
  // Benign direction is +; crafted must sit at or below the global model.
  for (const float v : crafted) EXPECT_LE(v, 0.0f);
}

TEST(FangKrum, RequiresBenignUpdates) {
  FangKrumAttack attack(2);
  EXPECT_TRUE(attack.needs_benign_updates());
  EXPECT_EQ(attack.name(), "Fang-Krum");
}

}  // namespace
}  // namespace zka::attack
