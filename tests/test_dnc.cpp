// DnC spectral defense tests.
#include "defense/dnc.h"

#include <gtest/gtest.h>

#include "attack/fang.h"
#include "defense/krum.h"
#include "util/rng.h"
#include "util/stats.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

std::vector<Update> cluster_plus_outliers(std::size_t benign,
                                          std::size_t mal, std::size_t dim,
                                          float offset, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t i = 0; i < benign; ++i) {
    Update u(dim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }
  for (std::size_t i = 0; i < mal; ++i) {
    Update u(dim);
    for (auto& x : u) {
      x = offset + static_cast<float>(rng.normal(0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(DncRule, FiltersSpectralOutliers) {
  DncOptions options;
  options.num_byzantine = 2;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 64, 5.0f, 1);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) {
    EXPECT_LT(idx, 8u) << "outlier survived DnC";
  }
  for (const float v : result.model) EXPECT_LT(std::abs(v), 1.0f);
  EXPECT_TRUE(dnc.selects_clients());
  EXPECT_EQ(dnc.name(), "DnC");
}

TEST(DncRule, KeepsExpectedCountPerIteration) {
  DncOptions options;
  options.num_byzantine = 2;
  options.iterations = 1;
  options.filter_fraction = 1.0;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 32, 3.0f, 2);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 8u);
}

TEST(DncRule, MultipleIterationsIntersect) {
  DncOptions options;
  options.num_byzantine = 1;
  options.iterations = 4;
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(9, 1, 48, 10.0f, 3);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  // At most 9 survive, outlier never does; intersection can remove more.
  EXPECT_LE(result.selected.size(), 9u);
  for (const auto idx : result.selected) EXPECT_LT(idx, 9u);
}

TEST(DncRule, SubsamplingStillCatchesOutliers) {
  DncOptions options;
  options.num_byzantine = 2;
  options.subsample_dim = 16;  // far fewer than dim
  Dnc dnc(options);
  const auto updates = cluster_plus_outliers(8, 2, 256, 4.0f, 4);
  const auto result = dnc.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) EXPECT_LT(idx, 8u);
}

TEST(DncRule, IdenticalUpdatesDegenerateGracefully) {
  DncOptions options;
  options.num_byzantine = 2;
  Dnc dnc(options);
  const Update u{1.0f, -2.0f, 0.5f};
  const std::vector<Update> updates(8, u);
  const auto result = dnc.aggregate(updates, unit_weights(8));
  ASSERT_FALSE(result.selected.empty());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(result.model[i], u[i], 1e-5);
  }
}

TEST(DncRule, FactoryConstructs) {
  const auto agg = make_aggregator("dnc", 2);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->name(), "DnC");
}

// Regression: iterations must score and discard over the *currently
// accepted* set. Scoring all n rows every iteration lets one extreme
// outlier absorb every iteration's filter budget — it is re-discarded
// again and again while a milder outlier sails through.
TEST(DncRule, FilterBudgetTargetsSurvivorsNotRejectedRows) {
  DncOptions options;
  options.num_byzantine = 1;   // discard 1 per iteration
  options.filter_fraction = 1.0;
  options.iterations = 3;
  Dnc dnc(options);

  // 8 benign at the origin, a mild outlier (index 8) and an extreme one
  // (index 9). The extreme row dominates the spectral direction of the
  // full set in every iteration; only survivor-set scoring ever gets the
  // filter budget onto the mild outlier.
  auto updates = cluster_plus_outliers(8, 1, 32, 2.0f, 11);
  Update extreme(32);
  util::Rng rng(12);
  for (auto& x : extreme) {
    x = 100.0f + static_cast<float>(rng.normal(0.0, 0.1));
  }
  updates.push_back(std::move(extreme));

  const auto result = dnc.aggregate(updates, unit_weights(10));
  // Iteration 1 discards the extreme row, iteration 2 the mild outlier,
  // iteration 3 one benign row: 7 survivors, neither outlier among them.
  EXPECT_EQ(result.selected.size(), 7u);
  for (const auto idx : result.selected) {
    EXPECT_LT(idx, 8u) << "outlier " << idx << " absorbed no filter budget";
  }
}

// Regression: when tiny rounds filter everything, the fallback promises
// the single lowest-score update of the last iteration — not
// unconditionally index 0, which here is the extreme outlier itself.
TEST(DncRule, EmptySelectionFallsBackToLowestScoreUpdate) {
  DncOptions options;
  options.num_byzantine = 3;   // discard 3 of n=4 per iteration
  options.filter_fraction = 1.0;
  options.iterations = 6;
  options.subsample_dim = 16;  // coords vary per iteration
  Dnc dnc(options);

  util::Rng rng(13);
  std::vector<Update> updates;
  Update outlier(256);
  for (auto& x : outlier) {
    x = 50.0f + static_cast<float>(rng.normal(0.0, 0.1));
  }
  updates.push_back(std::move(outlier));  // index 0
  for (std::size_t i = 0; i < 3; ++i) {
    Update u(256);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }

  // Iteration 1 discards the outlier plus two benign rows; iteration 2
  // empties the survivor set, so the fallback must return the last scored
  // candidate set's lowest-score update — a benign index, never
  // unconditionally index 0, which is the extreme outlier itself. (The
  // unfixed rule re-scores all four rows with fresh coordinate subsets
  // each iteration; the benign argmin drifts with the subset, the kill
  // sets' union empties the selection, and a blind `push_back(0)` hands
  // the round to the outlier.)
  const auto result = dnc.aggregate(updates, unit_weights(4));
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_NE(result.selected.front(), 0u)
      << "fallback handed the round to the extreme outlier";
  for (const float v : result.model) EXPECT_LT(std::abs(v), 1.0f);
}

}  // namespace
}  // namespace zka::defense

namespace zka::attack {
namespace {

TEST(FangKrum, FoolsKrumOnClusteredBenignUpdates) {
  util::Rng rng(5);
  const std::size_t dim = 32;
  std::vector<float> global(dim);
  for (auto& x : global) x = static_cast<float>(rng.normal(0.0, 0.3));
  std::vector<Update> benign(8, Update(dim));
  for (auto& u : benign) {
    for (std::size_t i = 0; i < dim; ++i) {
      u[i] = global[i] + 0.05f + static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.benign_updates = &benign;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;

  FangKrumAttack attack(2);
  const Update crafted = attack.craft(ctx);
  ASSERT_EQ(crafted.size(), dim);
  EXPECT_GT(attack.last_lambda(), 0.0);

  // Verify the attacker's simulation: Krum over {crafted x2, benign...}
  // picks the crafted update.
  defense::MultiKrum krum(2, 1);
  std::vector<Update> pool{crafted, crafted};
  pool.insert(pool.end(), benign.begin(), benign.end());
  const auto selected = krum.select(pool);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_LT(selected.front(), 2u);
}

TEST(FangKrum, PushesOppositeToConsensusDirection) {
  util::Rng rng(6);
  const std::size_t dim = 16;
  std::vector<float> global(dim, 0.0f);
  std::vector<Update> benign(6, Update(dim));
  for (auto& u : benign) {
    for (auto& x : u) x = 0.1f + static_cast<float>(rng.normal(0.0, 0.01));
  }
  AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = global;
  ctx.benign_updates = &benign;
  ctx.num_malicious_selected = 1;
  FangKrumAttack attack(1);
  const Update crafted = attack.craft(ctx);
  // Benign direction is +; crafted must sit at or below the global model.
  for (const float v : crafted) EXPECT_LE(v, 0.0f);
}

TEST(FangKrum, RequiresBenignUpdates) {
  FangKrumAttack attack(2);
  EXPECT_TRUE(attack.needs_benign_updates());
  EXPECT_EQ(attack.name(), "Fang-Krum");
}

}  // namespace
}  // namespace zka::attack
