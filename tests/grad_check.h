// Finite-difference gradient checking for nn::Module implementations.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/module.h"

namespace zka::test {

/// Scalar objective used for gradient checks: sum of 0.5 * y^2 over the
/// module output. dLoss/dy = y.
inline double half_sq_sum(const tensor::Tensor& y) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    acc += 0.5 * static_cast<double>(y[i]) * y[i];
  }
  return acc;
}

/// Checks the module's input gradient against central finite differences
/// of the half-square-sum objective. Verifies a sample of `probes`
/// coordinates spread over the input.
inline void check_input_gradient(nn::Module& module, tensor::Tensor input,
                                 double eps = 1e-3, double tol = 2e-2,
                                 std::int64_t probes = 24) {
  tensor::Tensor y = module.forward(input);
  module.zero_grad();
  const tensor::Tensor analytic = module.backward(y);  // dL/dy = y

  const std::int64_t n = input.numel();
  const std::int64_t stride = std::max<std::int64_t>(1, n / probes);
  for (std::int64_t i = 0; i < n; i += stride) {
    tensor::Tensor plus = input;
    tensor::Tensor minus = input;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double f_plus = half_sq_sum(module.forward(plus));
    const double f_minus = half_sq_sum(module.forward(minus));
    const double numeric = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "input coordinate " << i;
  }
}

/// Checks all parameter gradients against central finite differences.
inline void check_param_gradients(nn::Module& module,
                                  const tensor::Tensor& input,
                                  double eps = 1e-3, double tol = 2e-2,
                                  std::int64_t probes = 16) {
  tensor::Tensor y = module.forward(input);
  module.zero_grad();
  module.backward(y);

  for (nn::Parameter* p : module.parameters()) {
    const std::int64_t n = p->value.numel();
    const std::int64_t stride = std::max<std::int64_t>(1, n / probes);
    for (std::int64_t i = 0; i < n; i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double f_plus = half_sq_sum(module.forward(input));
      p->value[i] = saved - static_cast<float>(eps);
      const double f_minus = half_sq_sum(module.forward(input));
      p->value[i] = saved;
      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "parameter coordinate " << i;
    }
  }
}

}  // namespace zka::test
