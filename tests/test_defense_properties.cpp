// Property-style checks that hold for every aggregation rule.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "defense/aggregator.h"
#include "util/rng.h"

namespace zka::defense {
namespace {

struct Case {
  const char* name;
  std::size_t f;
};

class DefenseProperty : public ::testing::TestWithParam<Case> {
 protected:
  std::unique_ptr<Aggregator> make() const {
    return make_aggregator(GetParam().name, GetParam().f);
  }
};

std::vector<Update> random_updates(std::size_t n, std::size_t dim,
                                   std::uint64_t seed, double spread = 1.0) {
  util::Rng rng(seed);
  std::vector<Update> updates(n, Update(dim));
  for (auto& u : updates) {
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, spread));
  }
  return updates;
}

TEST_P(DefenseProperty, IdenticalUpdatesAggregateToThemselves) {
  auto agg = make();
  const Update u{1.5f, -2.0f, 0.25f};
  const std::vector<Update> updates(7, u);
  const auto result = agg->aggregate(updates, std::vector<std::int64_t>(7, 1));
  ASSERT_EQ(result.model.size(), u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(result.model[i], u[i], 1e-5) << agg->name();
  }
}

TEST_P(DefenseProperty, OutputWithinCoordinatewiseEnvelope) {
  auto agg = make();
  const auto updates = random_updates(9, 16, 7);
  const auto result =
      agg->aggregate(updates, std::vector<std::int64_t>(9, 1));
  for (std::size_t i = 0; i < 16; ++i) {
    float lo = updates[0][i];
    float hi = updates[0][i];
    for (const auto& u : updates) {
      lo = std::min(lo, u[i]);
      hi = std::max(hi, u[i]);
    }
    EXPECT_GE(result.model[i], lo - 1e-5f) << agg->name() << " coord " << i;
    EXPECT_LE(result.model[i], hi + 1e-5f) << agg->name() << " coord " << i;
  }
}

TEST_P(DefenseProperty, DeterministicAcrossCalls) {
  auto agg1 = make();
  auto agg2 = make();
  const auto updates = random_updates(8, 12, 11);
  const std::vector<std::int64_t> w(8, 1);
  EXPECT_EQ(agg1->aggregate(updates, w).model,
            agg2->aggregate(updates, w).model);
}

TEST_P(DefenseProperty, SelectionIndicesAreValidAndUnique) {
  auto agg = make();
  const auto updates = random_updates(10, 8, 13);
  const auto result =
      agg->aggregate(updates, std::vector<std::int64_t>(10, 1));
  std::vector<bool> seen(10, false);
  for (const auto idx : result.selected) {
    ASSERT_LT(idx, 10u) << agg->name();
    EXPECT_FALSE(seen[idx]) << agg->name() << " selected twice";
    seen[idx] = true;
  }
  if (!agg->selects_clients()) {
    EXPECT_TRUE(result.selected.empty()) << agg->name();
  } else {
    EXPECT_FALSE(result.selected.empty()) << agg->name();
  }
}

TEST_P(DefenseProperty, NonFiniteUpdatesSanitizedAtIngress) {
  // A single crafted NaN/Inf coordinate must never reach a rule: the
  // ingress layer (on by default) zeroes it, so every defense still
  // produces a finite model from a poisoned batch.
  auto agg = make();
  auto updates = random_updates(6, 10, 23);
  updates[3][7] = std::numeric_limits<float>::quiet_NaN();
  updates[5][2] = std::numeric_limits<float>::infinity();
  const std::vector<std::int64_t> w(6, 1);
  const auto result = agg->aggregate(updates, w);
  for (const float v : result.model) {
    EXPECT_TRUE(std::isfinite(v)) << agg->name();
  }
  EXPECT_GE(agg->ingress().zeroed_values(), 2u) << agg->name();
}

TEST_P(DefenseProperty, SanitizeOffIsPaperFaithful) {
  // With the ingress layer switched off the server is the undefended one
  // from the paper: nothing throws, and for the plain mean the poison
  // propagates — that hazard is exactly what A13 flags statically.
  auto agg = make();
  agg->set_sanitize({.enabled = false});
  auto updates = random_updates(6, 10, 23);
  updates[3][7] = std::numeric_limits<float>::quiet_NaN();
  const auto result = agg->aggregate(updates, std::vector<std::int64_t>(6, 1));
  EXPECT_EQ(agg->ingress().zeroed_values(), 0u) << agg->name();
  if (std::string(GetParam().name) == "fedavg") {
    EXPECT_TRUE(std::isnan(result.model[7]));
  }
}

TEST_P(DefenseProperty, OutputFinite) {
  auto agg = make();
  const auto updates = random_updates(6, 10, 17, 100.0);
  const auto result =
      agg->aggregate(updates, std::vector<std::int64_t>(6, 1));
  for (const float v : result.model) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    AllDefenses, DefenseProperty,
    ::testing::Values(Case{"fedavg", 0}, Case{"median", 0}, Case{"trmean", 2},
                      Case{"krum", 2}, Case{"mkrum", 2}, Case{"bulyan", 2},
                      Case{"foolsgold", 0}, Case{"normclip", 0},
                      Case{"geomedian", 0}, Case{"centeredclip", 0},
                      Case{"dnc", 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace zka::defense
