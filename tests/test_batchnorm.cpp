#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.h"
#include "util/rng.h"

namespace zka::nn {
namespace {

using tensor::Tensor;

Tensor random_input(tensor::Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -2.0f, 2.0f);
}

TEST(BatchNorm2d, NormalizesPerChannelInTraining) {
  BatchNorm2d bn(3);
  const Tensor x = random_input({4, 3, 5, 5}, 1);
  const Tensor y = bn.forward(x);
  const std::int64_t spatial = 25;
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::int64_t s = 0; s < 4; ++s) {
      // zka-lint: allow(A3) -- read-only reference check against raw layout
      const float* plane = y.raw() + (s * 3 + c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) mean += plane[i];
    }
    mean /= 100.0;
    for (std::int64_t s = 0; s < 4; ++s) {
      // zka-lint: allow(A3) -- read-only reference check against raw layout
      const float* plane = y.raw() + (s * 3 + c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        var += (plane[i] - mean) * (plane[i] - mean);
      }
    }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
  }
}

TEST(BatchNorm2d, GammaBetaAffine) {
  BatchNorm2d bn(1);
  bn.parameters()[0]->value[0] = 3.0f;  // gamma
  bn.parameters()[1]->value[0] = -2.0f; // beta
  const Tensor x = random_input({2, 1, 4, 4}, 2);
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y.mean(), -2.0f, 1e-3f);  // mean(gamma*xhat+beta) = beta
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(2);
  // Train on data with mean 5 to move the running statistics.
  Tensor x({8, 2, 3, 3}, 5.0f);
  util::Rng rng(3);
  for (auto& v : x.data()) v += static_cast<float>(rng.normal(0.0, 1.0));
  for (int i = 0; i < 80; ++i) bn.forward(x);

  bn.set_training(false);
  // Input equal to the running mean must map to ~beta (0).
  const Tensor probe({1, 2, 3, 3}, 5.0f);
  const Tensor y = bn.forward(probe);
  EXPECT_NEAR(y.mean(), 0.0f, 0.3f);
}

TEST(BatchNorm2d, RunningStatsConvergeToDataMoments) {
  BatchNorm2d bn(1, 1e-5f, 0.5f);
  util::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    Tensor x = Tensor::normal({16, 1, 4, 4}, rng, 2.0f, 3.0f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.parameters()[2]->value[0], 2.0f, 0.5f);   // running mean
  EXPECT_NEAR(bn.parameters()[3]->value[0], 9.0f, 2.5f);   // running var
}

TEST(BatchNorm2d, TrainingInputGradientMatchesFiniteDifference) {
  BatchNorm2d bn(2);
  // Larger epsilon stabilizes the finite-difference comparison.
  test::check_input_gradient(bn, random_input({3, 2, 4, 4}, 5), 1e-3, 5e-2);
}

TEST(BatchNorm2d, EvalInputGradient) {
  BatchNorm2d bn(2);
  bn.forward(random_input({4, 2, 4, 4}, 6));  // populate running stats
  bn.set_training(false);
  test::check_input_gradient(bn, random_input({2, 2, 4, 4}, 7), 1e-3, 2e-2);
}

TEST(BatchNorm2d, ParameterGradientsViaFiniteDifference) {
  BatchNorm2d bn(2);
  const Tensor x = random_input({3, 2, 3, 3}, 8);
  // Check gamma/beta only (running stats carry no gradient).
  const Tensor y = bn.forward(x);
  bn.zero_grad();
  bn.backward(y);
  auto params = bn.parameters();
  for (int pi = 0; pi < 2; ++pi) {
    Parameter& p = *params[static_cast<std::size_t>(pi)];
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      const float saved = p.value[i];
      const double eps = 1e-3;
      // Re-forward must use the same batch statistics; freeze running
      // updates by reusing training mode (stats recomputed identically).
      p.value[i] = saved + static_cast<float>(eps);
      const double f_plus = test::half_sq_sum(bn.forward(x));
      p.value[i] = saved - static_cast<float>(eps);
      const double f_minus = test::half_sq_sum(bn.forward(x));
      p.value[i] = saved;
      const double numeric = (f_plus - f_minus) / (2 * eps);
      EXPECT_NEAR(p.grad[i], numeric,
                  5e-2 * std::max(1.0, std::abs(numeric)))
          << "param " << pi << " coord " << i;
    }
  }
}

TEST(BatchNorm2d, Validation) {
  EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
  BatchNorm2d bn(3);
  EXPECT_THROW(bn.forward(Tensor({2, 2, 4, 4})), std::invalid_argument);
  bn.forward(random_input({2, 3, 4, 4}, 9));
  EXPECT_THROW(bn.backward(Tensor({2, 3, 5, 5})), std::invalid_argument);
}

TEST(BatchNorm2d, StateTravelsThroughFlatParams) {
  BatchNorm2d bn(2);
  bn.forward(random_input({4, 2, 3, 3}, 10));  // move running stats
  const auto flat = get_flat_params(bn);
  // gamma(2) + beta(2) + running mean(2) + running var(2).
  EXPECT_EQ(flat.size(), 8u);
  BatchNorm2d restored(2);
  set_flat_params(restored, flat);
  EXPECT_EQ(get_flat_params(restored), flat);
}

}  // namespace
}  // namespace zka::nn
