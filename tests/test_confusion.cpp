#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/metrics.h"

namespace zka::fl {
namespace {

ConfusionMatrix hand_matrix() {
  // 3 classes; rows = truth.
  ConfusionMatrix cm;
  cm.num_classes = 3;
  cm.counts = {5, 1, 0,   // class 0: 5 right, 1 as class 1
               2, 8, 0,   // class 1: 8 right
               0, 4, 0};  // class 2: never right, 4 as class 1
  return cm;
}

TEST(Confusion, AtAccessorAndBounds) {
  const ConfusionMatrix cm = hand_matrix();
  EXPECT_EQ(cm.at(0, 0), 5);
  EXPECT_EQ(cm.at(2, 1), 4);
  EXPECT_THROW(cm.at(3, 0), std::out_of_range);
  EXPECT_THROW(cm.at(0, -1), std::out_of_range);
}

TEST(Confusion, PerClassAccuracy) {
  const auto acc = hand_matrix().per_class_accuracy();
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_NEAR(acc[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(acc[1], 0.8, 1e-12);
  EXPECT_NEAR(acc[2], 0.0, 1e-12);
}

TEST(Confusion, OverallAccuracyIsTraceOverTotal) {
  EXPECT_NEAR(hand_matrix().accuracy(), 13.0 / 20.0, 1e-12);
}

TEST(Confusion, MostPredictedClass) {
  // Column sums: 7, 13, 0 -> class 1.
  EXPECT_EQ(hand_matrix().most_predicted_class(), 1);
}

TEST(Confusion, AbsentClassGivesNanRecall) {
  ConfusionMatrix cm;
  cm.num_classes = 2;
  cm.counts = {3, 0, 0, 0};
  const auto acc = cm.per_class_accuracy();
  EXPECT_NEAR(acc[0], 1.0, 1e-12);
  EXPECT_TRUE(std::isnan(acc[1]));
}

TEST(Confusion, EvaluateConfusionAgreesWithEvaluateAccuracy) {
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 80, 5);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const auto params = nn::get_flat_params(*factory(3));
  const ConfusionMatrix cm = evaluate_confusion(factory, params, dataset);
  EXPECT_EQ(cm.num_classes, 10);
  std::int64_t total = 0;
  for (const auto c : cm.counts) total += c;
  EXPECT_EQ(total, dataset.size());
  EXPECT_NEAR(cm.accuracy(), evaluate_accuracy(factory, params, dataset),
              1e-12);
}

}  // namespace
}  // namespace zka::fl
