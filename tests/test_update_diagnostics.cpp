#include "analysis/update_diagnostics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace zka::analysis {
namespace {

std::vector<std::vector<float>> cluster(std::size_t n, std::size_t dim,
                                        float center, float spread,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> updates(n, std::vector<float>(dim));
  for (auto& u : updates) {
    for (auto& x : u) {
      x = center + static_cast<float>(rng.normal(0.0, spread));
    }
  }
  return updates;
}

TEST(UpdateDiagnostics, SeparabilityHighForObviousOutliers) {
  auto updates = cluster(6, 16, 0.0f, 0.1f, 1);
  auto far = cluster(2, 16, 10.0f, 0.1f, 2);
  std::vector<bool> flags(6, false);
  for (auto& u : far) {
    updates.push_back(std::move(u));
    flags.push_back(true);
  }
  const UpdateDiagnostics d = diagnose_updates(updates, flags);
  EXPECT_EQ(d.num_updates, 8u);
  EXPECT_EQ(d.num_malicious, 2u);
  EXPECT_GT(d.separability(), 10.0);
  EXPECT_GT(d.mean_malicious_norm, d.mean_benign_norm);
}

TEST(UpdateDiagnostics, SeparabilityNearOneForHiddenAttackers) {
  auto updates = cluster(6, 16, 0.0f, 0.1f, 3);
  auto hidden = cluster(2, 16, 0.0f, 0.1f, 4);
  std::vector<bool> flags(6, false);
  for (auto& u : hidden) {
    updates.push_back(std::move(u));
    flags.push_back(true);
  }
  const UpdateDiagnostics d = diagnose_updates(updates, flags);
  EXPECT_NEAR(d.separability(), 1.0, 0.25);
}

TEST(UpdateDiagnostics, NoMaliciousGivesZeroCrossStats) {
  const auto updates = cluster(5, 8, 0.0f, 0.2f, 5);
  const UpdateDiagnostics d =
      diagnose_updates(updates, std::vector<bool>(5, false));
  EXPECT_EQ(d.num_malicious, 0u);
  EXPECT_DOUBLE_EQ(d.mean_cross_pairwise, 0.0);
  EXPECT_GT(d.mean_benign_pairwise, 0.0);
}

TEST(UpdateDiagnostics, BenignCosineHigherThanCrossForOpposedAttack) {
  // Benign updates share a direction; the attacker reverses it.
  std::vector<std::vector<float>> updates;
  util::Rng rng(6);
  for (int k = 0; k < 5; ++k) {
    std::vector<float> u(8);
    for (std::size_t i = 0; i < 8; ++i) {
      u[i] = 1.0f + static_cast<float>(rng.normal(0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  updates.push_back(std::vector<float>(8, -3.0f));
  std::vector<bool> flags(6, false);
  flags[5] = true;
  const UpdateDiagnostics d = diagnose_updates(updates, flags);
  EXPECT_GT(d.mean_benign_cosine, d.mean_cross_cosine);
}

TEST(UpdateDiagnostics, Validation) {
  const auto updates = cluster(3, 4, 0.0f, 0.1f, 7);
  EXPECT_THROW(diagnose_updates(updates, std::vector<bool>(2, false)),
               std::invalid_argument);
  EXPECT_THROW(diagnose_updates({}, {}), std::invalid_argument);
  // Fewer than two benign updates.
  EXPECT_THROW(diagnose_updates(updates, std::vector<bool>(3, true)),
               std::invalid_argument);
  auto ragged = updates;
  ragged[1].pop_back();
  EXPECT_THROW(diagnose_updates(ragged, std::vector<bool>(3, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace zka::analysis
