#include "models/models.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "util/rng.h"

namespace zka::models {
namespace {

using tensor::Tensor;

TEST(Specs, TaskGeometry) {
  const ImageSpec f = fashion_spec();
  EXPECT_EQ(f.channels, 1);
  EXPECT_EQ(f.height, 28);
  EXPECT_EQ(f.pixels(), 28 * 28);
  EXPECT_EQ(f.num_classes, 10);
  const ImageSpec c = cifar_spec();
  EXPECT_EQ(c.channels, 3);
  EXPECT_EQ(c.height, 32);
  EXPECT_EQ(c.pixels(), 3 * 32 * 32);
}

TEST(Specs, TaskHelpers) {
  EXPECT_STREQ(task_name(Task::kFashion), "Fashion");
  EXPECT_STREQ(task_name(Task::kCifar), "Cifar");
  EXPECT_EQ(task_spec(Task::kCifar).channels, 3);
}

TEST(FashionCnn, ForwardShapeAndArchitecture) {
  util::Rng rng(1);
  auto net = make_fashion_cnn(rng);
  Tensor x = Tensor::uniform({2, 1, 28, 28}, rng, -1.0f, 1.0f);
  const Tensor y = net->forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
  // Paper: 2 conv layers + 1 dense layer -> 3 weight/bias pairs.
  EXPECT_EQ(net->parameters().size(), 6u);
}

TEST(CifarCnn, ForwardShapeAndArchitecture) {
  util::Rng rng(2);
  auto net = make_cifar_cnn(rng);
  Tensor x = Tensor::uniform({2, 3, 32, 32}, rng, -1.0f, 1.0f);
  const Tensor y = net->forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
  // Paper: 6 conv layers + 2 dense layers -> 8 weight/bias pairs.
  EXPECT_EQ(net->parameters().size(), 16u);
}

TEST(Factory, DeterministicInSeed) {
  const ModelFactory factory = task_model_factory(Task::kFashion);
  auto a = factory(123);
  auto b = factory(123);
  auto c = factory(124);
  EXPECT_EQ(nn::get_flat_params(*a), nn::get_flat_params(*b));
  EXPECT_NE(nn::get_flat_params(*a), nn::get_flat_params(*c));
}

TEST(Factory, ParamCountsConsistentAcrossInstances) {
  for (const Task task : {Task::kFashion, Task::kCifar}) {
    const ModelFactory factory = task_model_factory(task);
    EXPECT_EQ(nn::num_params(*factory(1)), nn::num_params(*factory(2)));
  }
}

TEST(FilterLayer, PreservesImageShape) {
  util::Rng rng(3);
  const ImageSpec spec = fashion_spec();
  auto filter = make_filter_layer(spec, 3, rng);
  Tensor x = Tensor::uniform({4, 1, 28, 28}, rng, -1.0f, 1.0f);
  EXPECT_EQ(filter->forward(x).shape(), x.shape());
  auto filter5 = make_filter_layer(spec, 5, rng);
  EXPECT_EQ(filter5->forward(x).shape(), x.shape());
}

TEST(FilterLayer, RgbShapePreserved) {
  util::Rng rng(4);
  const ImageSpec spec = cifar_spec();
  auto filter = make_filter_layer(spec, 3, rng);
  Tensor x = Tensor::uniform({2, 3, 32, 32}, rng, -1.0f, 1.0f);
  EXPECT_EQ(filter->forward(x).shape(), x.shape());
}

TEST(FilterLayer, EvenKernelRejected) {
  util::Rng rng(5);
  EXPECT_THROW(make_filter_layer(fashion_spec(), 4, rng),
               std::invalid_argument);
}

TEST(Generator, OutputsTaskImagesInTanhRange) {
  util::Rng rng(6);
  for (const Task task : {Task::kFashion, Task::kCifar}) {
    const ImageSpec spec = task_spec(task);
    auto gen = make_tcnn_generator(spec, 64, rng);
    Tensor z = Tensor::normal({5, 64}, rng);
    const Tensor images = gen->forward(z);
    EXPECT_EQ(images.shape(),
              (tensor::Shape{5, spec.channels, spec.height, spec.width}));
    for (std::int64_t i = 0; i < images.numel(); ++i) {
      ASSERT_GE(images[i], -1.0f);
      ASSERT_LE(images[i], 1.0f);
    }
  }
}

TEST(Generator, WganStructureTwoDeconvOneConv) {
  util::Rng rng(7);
  auto gen = make_tcnn_generator(fashion_spec(), 32, rng);
  int deconv = 0;
  int conv = 0;
  for (std::size_t i = 0; i < gen->size(); ++i) {
    if (gen->layer(i).name() == "ConvTranspose2d") ++deconv;
    if (gen->layer(i).name() == "Conv2d") ++conv;
  }
  EXPECT_EQ(deconv, 2);
  EXPECT_EQ(conv, 1);
}

TEST(Generator, RejectsNonDivisibleSpec) {
  util::Rng rng(8);
  const ImageSpec odd{1, 30, 30, 10};
  EXPECT_THROW(make_tcnn_generator(odd, 16, rng), std::invalid_argument);
}

TEST(Models, UntrainedNetworksPredictRoughlyUniformly) {
  // Sanity: fresh nets should not collapse to one logit (dead init).
  util::Rng rng(9);
  auto net = make_fashion_cnn(rng);
  Tensor x = Tensor::uniform({8, 1, 28, 28}, rng, -1.0f, 1.0f);
  const Tensor p = nn::softmax_rows(net->forward(x));
  EXPECT_LT(p.max(), 0.9f);
}

}  // namespace
}  // namespace zka::models
