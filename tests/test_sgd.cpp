#include "nn/sgd.h"

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace zka::nn {
namespace {

TEST(Sgd, VanillaStep) {
  Parameter p(tensor::Tensor({2}, std::vector<float>{1.0f, 2.0f}));
  p.grad[0] = 0.5f;
  p.grad[1] = -1.0f;
  Sgd opt({&p}, {.learning_rate = 0.1f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 2.0f + 0.1f);
}

TEST(Sgd, WeightDecayAddsL2Pull) {
  Parameter p(tensor::Tensor({1}, std::vector<float>{2.0f}));
  p.grad[0] = 0.0f;
  Sgd opt({&p}, {.learning_rate = 0.5f, .weight_decay = 0.1f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 2.0f - 0.5f * 0.1f * 2.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Parameter p(tensor::Tensor({1}, std::vector<float>{0.0f}));
  Sgd opt({&p}, {.learning_rate = 1.0f, .momentum = 0.9f});
  p.grad[0] = 1.0f;
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // v = 1.9, w = -2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Sgd, ZeroGradClearsAll) {
  Parameter p(tensor::Tensor({3}, 1.0f));
  p.grad.fill(7.0f);
  Sgd opt({&p}, {});
  opt.zero_grad();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.grad[i], 0.0f);
}

TEST(Sgd, LearningRateMutable) {
  Parameter p(tensor::Tensor({1}));
  Sgd opt({&p}, {.learning_rate = 0.1f});
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
  opt.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.01f);
}

TEST(Sgd, TrainingReducesLossOnToyRegression) {
  // One linear layer learning y = sum(x) via half-square loss.
  util::Rng rng(4);
  Sequential net;
  net.emplace<Linear>(3, 1, rng);
  Sgd opt(net, {.learning_rate = 0.05f});

  const tensor::Tensor x = tensor::Tensor::uniform({16, 3}, rng, -1.0f, 1.0f);
  tensor::Tensor target({16, 1});
  for (std::int64_t i = 0; i < 16; ++i) {
    target[i] = x[i * 3] + x[i * 3 + 1] + x[i * 3 + 2];
  }
  auto loss_of = [&] {
    const tensor::Tensor y = net.forward(x);
    double acc = 0.0;
    for (std::int64_t i = 0; i < 16; ++i) {
      const double d = y[i] - target[i];
      acc += 0.5 * d * d;
    }
    return acc;
  };
  const double before = loss_of();
  for (int step = 0; step < 50; ++step) {
    opt.zero_grad();
    const tensor::Tensor y = net.forward(x);
    tensor::Tensor grad = y;
    grad -= target;
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss_of(), before * 0.05);
}

}  // namespace
}  // namespace zka::nn
