#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace zka::data {
namespace {

std::vector<std::int64_t> cyclic_labels(std::int64_t n,
                                        std::int64_t num_classes) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % num_classes;
  }
  return labels;
}

void expect_exact_cover(const std::vector<std::vector<std::int64_t>>& parts,
                        std::int64_t n) {
  std::set<std::int64_t> seen;
  std::size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
    seen.insert(part.begin(), part.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  if (!seen.empty()) {
    EXPECT_GE(*seen.begin(), 0);
    EXPECT_LT(*seen.rbegin(), n);
  }
}

TEST(IidPartition, BalancedAndExactCover) {
  util::Rng rng(1);
  const auto parts = iid_partition(100, 10, rng);
  ASSERT_EQ(parts.size(), 10u);
  expect_exact_cover(parts, 100);
  for (const auto& p : parts) EXPECT_EQ(p.size(), 10u);
}

TEST(IidPartition, UnevenSizesDifferByAtMostOne) {
  util::Rng rng(2);
  const auto parts = iid_partition(103, 10, rng);
  expect_exact_cover(parts, 103);
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
  }
}

class DirichletPartitionTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletPartitionTest, ExactCoverAndNonEmptyClients) {
  util::Rng rng(3);
  const auto labels = cyclic_labels(600, 10);
  const auto parts = dirichlet_partition(labels, 10, 20, GetParam(), rng);
  ASSERT_EQ(parts.size(), 20u);
  expect_exact_cover(parts, 600);
  for (const auto& p : parts) EXPECT_FALSE(p.empty());
}

INSTANTIATE_TEST_SUITE_P(Betas, DirichletPartitionTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9, 10.0));

// Label-distribution skew measured as the mean (over clients) of the
// maximum class share within the client's shard.
double mean_max_class_share(
    const std::vector<std::vector<std::int64_t>>& parts,
    const std::vector<std::int64_t>& labels, std::int64_t num_classes) {
  double total = 0.0;
  int counted = 0;
  for (const auto& part : parts) {
    if (part.size() < 5) continue;  // tiny shards are all-skew by accident
    std::vector<int> hist(static_cast<std::size_t>(num_classes), 0);
    for (const auto i : part) {
      hist[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])]++;
    }
    total += static_cast<double>(*std::max_element(hist.begin(), hist.end())) /
             static_cast<double>(part.size());
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

TEST(DirichletPartition, SmallerBetaMeansMoreSkew) {
  const auto labels = cyclic_labels(2000, 10);
  double skew_01 = 0.0;
  double skew_09 = 0.0;
  double skew_big = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng r1(seed);
    util::Rng r2(seed);
    util::Rng r3(seed);
    skew_01 += mean_max_class_share(
        dirichlet_partition(labels, 10, 20, 0.1, r1), labels, 10);
    skew_09 += mean_max_class_share(
        dirichlet_partition(labels, 10, 20, 0.9, r2), labels, 10);
    skew_big += mean_max_class_share(
        dirichlet_partition(labels, 10, 20, 100.0, r3), labels, 10);
  }
  EXPECT_GT(skew_01, skew_09);
  EXPECT_GT(skew_09, skew_big);
  // beta -> infinity approaches the IID share of 1/10.
  EXPECT_LT(skew_big / 5.0, 0.25);
  EXPECT_GT(skew_01 / 5.0, 0.45);
}

TEST(DirichletPartition, Validation) {
  util::Rng rng(5);
  const auto labels = cyclic_labels(100, 10);
  EXPECT_THROW(dirichlet_partition(labels, 10, 0, 0.5, rng),
               std::invalid_argument);
  EXPECT_THROW(dirichlet_partition(labels, 10, 10, 0.0, rng),
               std::invalid_argument);
  const std::vector<std::int64_t> bad{0, 12};
  EXPECT_THROW(dirichlet_partition(bad, 10, 2, 0.5, rng),
               std::invalid_argument);
}

TEST(DirichletPartition, DeterministicGivenRngState) {
  const auto labels = cyclic_labels(300, 10);
  util::Rng r1(9);
  util::Rng r2(9);
  EXPECT_EQ(dirichlet_partition(labels, 10, 15, 0.5, r1),
            dirichlet_partition(labels, 10, 15, 0.5, r2));
}

TEST(IidPartition, MoreClientsThanSamplesLeavesSomeEmpty) {
  util::Rng rng(10);
  const auto parts = iid_partition(3, 5, rng);
  expect_exact_cover(parts, 3);
}

}  // namespace
}  // namespace zka::data
