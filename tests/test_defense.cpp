#include <gtest/gtest.h>

#include "defense/bulyan.h"
#include "defense/distance.h"
#include "defense/fedavg.h"
#include "defense/foolsgold.h"
#include "defense/krum.h"
#include "defense/norm_clip.h"
#include "defense/statistic.h"
#include "util/rng.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

std::vector<Update> clustered_updates(std::size_t benign, std::size_t mal,
                                      std::size_t dim, std::uint64_t seed,
                                      float mal_offset = 10.0f) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t i = 0; i < benign; ++i) {
    Update u(dim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }
  for (std::size_t i = 0; i < mal; ++i) {
    Update u(dim);
    for (auto& x : u) {
      x = mal_offset + static_cast<float>(rng.normal(0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(Validation, RejectsBadInput) {
  FedAvg agg;
  EXPECT_THROW(agg.aggregate({}, {}), std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}}, {}), std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}, {1.0f, 2.0f}}, unit_weights(2)),
               std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}}, {-1}), std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{}}, {1}), std::invalid_argument);
}

TEST(FedAvgRule, WeightedMean) {
  FedAvg agg;
  const std::vector<Update> updates{{1.0f, 0.0f}, {4.0f, 6.0f}};
  const auto result = agg.aggregate(updates, {1, 2});
  EXPECT_NEAR(result.model[0], (1.0 + 2 * 4.0) / 3.0, 1e-6);
  EXPECT_NEAR(result.model[1], 4.0, 1e-6);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_FALSE(agg.selects_clients());
}

TEST(FedAvgRule, ZeroWeightsFallBackToPlainMean) {
  FedAvg agg;
  const auto result = agg.aggregate({{2.0f}, {4.0f}}, {0, 0});
  EXPECT_NEAR(result.model[0], 3.0, 1e-6);
}

TEST(MedianRule, CoordinateWiseMedian) {
  Median agg;
  const std::vector<Update> updates{{1.0f, 10.0f}, {2.0f, 20.0f},
                                    {3.0f, 0.0f}};
  const auto result = agg.aggregate(updates, unit_weights(3));
  EXPECT_FLOAT_EQ(result.model[0], 2.0f);
  EXPECT_FLOAT_EQ(result.model[1], 10.0f);
}

TEST(MedianRule, RobustToSingleHugeOutlier) {
  Median agg;
  const std::vector<Update> updates{{1.0f}, {1.1f}, {0.9f}, {1e9f}};
  const auto result = agg.aggregate(updates, unit_weights(4));
  EXPECT_LT(result.model[0], 2.0f);
}

TEST(TrimmedMeanRule, ExcludesExtremes) {
  TrimmedMean agg(1);
  const std::vector<Update> updates{{-100.0f}, {1.0f}, {2.0f}, {3.0f},
                                    {100.0f}};
  const auto result = agg.aggregate(updates, unit_weights(5));
  EXPECT_NEAR(result.model[0], 2.0f, 1e-6);
}

TEST(TrimmedMeanRule, RequiresEnoughUpdates) {
  TrimmedMean agg(2);
  EXPECT_THROW(agg.aggregate({{1.0f}, {2.0f}, {3.0f}, {4.0f}},
                             unit_weights(4)),
               std::invalid_argument);
}

TEST(PairwiseDistances, SymmetricAndCorrect) {
  const std::vector<Update> updates{{0.0f, 0.0f}, {3.0f, 4.0f}};
  const auto d = pairwise_sq_distances(updates);
  EXPECT_NEAR(d[0][1], 25.0, 1e-6);
  EXPECT_NEAR(d[1][0], 25.0, 1e-6);
  EXPECT_DOUBLE_EQ(d[0][0], 0.0);
}

TEST(KrumRule, PlainKrumPicksCentralUpdate) {
  MultiKrum krum(1, 1);
  // Three clustered points and one far outlier; Krum must not pick the
  // outlier.
  const std::vector<Update> updates{{0.0f}, {0.1f}, {-0.1f}, {50.0f}};
  const auto result = krum.aggregate(updates, unit_weights(4));
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_NE(result.selected[0], 3u);
  EXPECT_LT(std::abs(result.model[0]), 0.2f);
  EXPECT_EQ(krum.name(), "Krum");
}

TEST(KrumRule, MultiKrumSelectsRequestedCount) {
  MultiKrum mkrum(2, 4);
  const auto updates = clustered_updates(8, 2, 5, 42);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 4u);
  EXPECT_TRUE(mkrum.selects_clients());
  EXPECT_EQ(mkrum.name(), "mKrum");
}

TEST(KrumRule, DefaultSelectionIsNMinusF) {
  MultiKrum mkrum(3);
  const auto updates = clustered_updates(10, 0, 4, 43);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 7u);
}

TEST(KrumRule, OutliersExcludedFromSelection) {
  // Multi-Krum only guarantees malicious exclusion for m <= n - f - 2.
  MultiKrum mkrum(2, 6);
  const auto updates = clustered_updates(8, 2, 6, 44, 100.0f);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) {
    EXPECT_LT(idx, 8u) << "malicious update selected";
  }
}

TEST(KrumRule, SingleUpdateDegenerate) {
  MultiKrum mkrum(0, 1);
  const auto result = mkrum.aggregate({{5.0f}}, unit_weights(1));
  EXPECT_FLOAT_EQ(result.model[0], 5.0f);
  EXPECT_EQ(result.selected, (std::vector<std::size_t>{0}));
}

TEST(BulyanRule, RejectsFarOutliers) {
  Bulyan bulyan(2);
  const auto updates = clustered_updates(8, 2, 6, 45, 50.0f);
  const auto result = bulyan.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) EXPECT_LT(idx, 8u);
  for (const float v : result.model) EXPECT_LT(std::abs(v), 1.0f);
  EXPECT_TRUE(bulyan.selects_clients());
}

TEST(BulyanRule, AggregateWithinBenignRangePerCoordinate) {
  Bulyan bulyan(1);
  const std::vector<Update> updates{{1.0f}, {2.0f}, {3.0f}, {4.0f}, {5.0f}};
  const auto result = bulyan.aggregate(updates, unit_weights(5));
  EXPECT_GE(result.model[0], 1.0f);
  EXPECT_LE(result.model[0], 5.0f);
}

TEST(FoolsGoldRule, DownweightsIdenticalSybils) {
  FoolsGold fg;
  util::Rng rng(46);
  std::vector<Update> updates;
  // Four diverse benign updates.
  for (int i = 0; i < 4; ++i) {
    Update u(8);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
    updates.push_back(std::move(u));
  }
  // Three identical Sybil updates.
  Update sybil(8);
  for (auto& x : sybil) x = static_cast<float>(rng.normal(0.0, 1.0));
  for (int i = 0; i < 3; ++i) updates.push_back(sybil);

  fg.aggregate(updates, unit_weights(7));
  const auto& w = fg.last_weights();
  ASSERT_EQ(w.size(), 7u);
  const double benign_mean = (w[0] + w[1] + w[2] + w[3]) / 4.0;
  const double sybil_mean = (w[4] + w[5] + w[6]) / 3.0;
  EXPECT_GT(benign_mean, sybil_mean + 0.3);
}

TEST(NormClipRule, BoundsOutlierInfluence) {
  NormClipping clip;
  const std::vector<Update> updates{{0.0f}, {0.1f}, {-0.1f}, {1000.0f}};
  const auto clipped = clip.aggregate(updates, unit_weights(4));
  FedAvg avg;
  const auto plain = avg.aggregate(updates, unit_weights(4));
  EXPECT_LT(std::abs(clipped.model[0]), std::abs(plain.model[0]) / 10.0f);
  EXPECT_FALSE(clip.selects_clients());
}

TEST(Factory, ConstructsEveryKnownAggregator) {
  for (const char* name : {"fedavg", "median", "trmean", "krum", "mkrum",
                           "bulyan", "foolsgold", "normclip"}) {
    const auto agg = make_aggregator(name, 2);
    ASSERT_NE(agg, nullptr) << name;
    EXPECT_FALSE(agg->name().empty());
  }
  EXPECT_THROW(make_aggregator("nope", 1), std::invalid_argument);
}

}  // namespace
}  // namespace zka::defense
