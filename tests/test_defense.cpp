#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "defense/bulyan.h"
#include "defense/distance.h"
#include "defense/fedavg.h"
#include "defense/foolsgold.h"
#include "defense/geometric_median.h"
#include "defense/krum.h"
#include "defense/norm_clip.h"
#include "defense/statistic.h"
#include "util/rng.h"

namespace zka::defense {
namespace {

std::vector<std::int64_t> unit_weights(std::size_t n) {
  return std::vector<std::int64_t>(n, 1);
}

std::vector<Update> clustered_updates(std::size_t benign, std::size_t mal,
                                      std::size_t dim, std::uint64_t seed,
                                      float mal_offset = 10.0f) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t i = 0; i < benign; ++i) {
    Update u(dim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 0.1));
    updates.push_back(std::move(u));
  }
  for (std::size_t i = 0; i < mal; ++i) {
    Update u(dim);
    for (auto& x : u) {
      x = mal_offset + static_cast<float>(rng.normal(0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(Validation, RejectsBadInput) {
  FedAvg agg;
  EXPECT_THROW(agg.aggregate(std::vector<Update>{}, {}),
               std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}}, {}), std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}, {1.0f, 2.0f}}, unit_weights(2)),
               std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{1.0f}}, {-1}), std::invalid_argument);
  EXPECT_THROW(agg.aggregate({{}}, {1}), std::invalid_argument);
}

TEST(FedAvgRule, WeightedMean) {
  FedAvg agg;
  const std::vector<Update> updates{{1.0f, 0.0f}, {4.0f, 6.0f}};
  const auto result = agg.aggregate(updates, {1, 2});
  EXPECT_NEAR(result.model[0], (1.0 + 2 * 4.0) / 3.0, 1e-6);
  EXPECT_NEAR(result.model[1], 4.0, 1e-6);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_FALSE(agg.selects_clients());
}

TEST(FedAvgRule, ZeroWeightsFallBackToPlainMean) {
  FedAvg agg;
  const auto result = agg.aggregate({{2.0f}, {4.0f}}, {0, 0});
  EXPECT_NEAR(result.model[0], 3.0, 1e-6);
}

TEST(MedianRule, CoordinateWiseMedian) {
  Median agg;
  const std::vector<Update> updates{{1.0f, 10.0f}, {2.0f, 20.0f},
                                    {3.0f, 0.0f}};
  const auto result = agg.aggregate(updates, unit_weights(3));
  EXPECT_FLOAT_EQ(result.model[0], 2.0f);
  EXPECT_FLOAT_EQ(result.model[1], 10.0f);
}

TEST(MedianRule, RobustToSingleHugeOutlier) {
  Median agg;
  const std::vector<Update> updates{{1.0f}, {1.1f}, {0.9f}, {1e9f}};
  const auto result = agg.aggregate(updates, unit_weights(4));
  EXPECT_LT(result.model[0], 2.0f);
}

TEST(TrimmedMeanRule, ExcludesExtremes) {
  TrimmedMean agg(1);
  const std::vector<Update> updates{{-100.0f}, {1.0f}, {2.0f}, {3.0f},
                                    {100.0f}};
  const auto result = agg.aggregate(updates, unit_weights(5));
  EXPECT_NEAR(result.model[0], 2.0f, 1e-6);
}

TEST(TrimmedMeanRule, RequiresEnoughUpdates) {
  TrimmedMean agg(2);
  EXPECT_THROW(agg.aggregate({{1.0f}, {2.0f}, {3.0f}, {4.0f}},
                             unit_weights(4)),
               std::invalid_argument);
}

TEST(PairwiseDistances, SymmetricAndCorrect) {
  const std::vector<Update> updates{{0.0f, 0.0f}, {3.0f, 4.0f}};
  const auto views = as_views(updates);
  const PairwiseMatrix d = pairwise_sq_distances(views);
  EXPECT_NEAR(d(0, 1), 25.0, 1e-6);
  EXPECT_NEAR(d(1, 0), 25.0, 1e-6);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

// Scalar double-precision reference for the Gram fast path: plain
// difference-square accumulation, the pre-rework implementation.
std::vector<std::vector<double>> scalar_sq_distances(
    const std::vector<Update>& updates) {
  const std::size_t n = updates.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < updates[i].size(); ++k) {
        const double diff =
            static_cast<double>(updates[i][k]) - updates[j][k];
        acc += diff * diff;
      }
      d[i][j] = acc;
      d[j][i] = acc;
    }
  }
  return d;
}

// Reference Krum selection run directly on a reference distance matrix
// (mirrors MultiKrum::select so Gram-path selections can be cross-checked).
std::vector<std::size_t> reference_krum_select(
    const std::vector<std::vector<double>>& d, std::size_t f, std::size_t m,
    bool iterative) {
  const std::size_t n = d.size();
  const std::size_t neighbors = n > f + 2 ? n - f - 2 : 1;
  auto score = [&](std::size_t i, const std::vector<bool>& excluded) {
    std::vector<double> row;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && !excluded[j]) row.push_back(d[i][j]);
    }
    const std::size_t k = std::min(neighbors, row.size());
    std::partial_sort(row.begin(), row.begin() + static_cast<long>(k),
                      row.end());
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j) s += row[j];
    return s;
  };
  std::vector<bool> excluded(n, false);
  std::vector<std::size_t> selected;
  if (!iterative) {
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i = 0; i < n; ++i) {
      ranked.emplace_back(score(i, excluded), i);
    }
    std::sort(ranked.begin(), ranked.end());
    for (std::size_t k = 0; k < m; ++k) selected.push_back(ranked[k].second);
  } else {
    for (std::size_t round = 0; round < m; ++round) {
      double best_score = std::numeric_limits<double>::infinity();
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (excluded[i]) continue;
        const double s = score(i, excluded);
        if (s < best_score) {
          best_score = s;
          best = i;
        }
      }
      if (best == n) break;
      excluded[best] = true;
      selected.push_back(best);
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

// Big enough for the Gram fast path (n >= 8, dim >= 64), with a colluding
// near-duplicate pair whose tiny mutual distance exercises the exact
// correction pass.
std::vector<Update> gram_path_updates(std::size_t n, std::size_t dim,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> updates;
  for (std::size_t i = 0; i + 2 < n; ++i) {
    Update u(dim);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
    updates.push_back(std::move(u));
  }
  Update colluder(dim);
  for (auto& x : colluder) x = static_cast<float>(rng.normal(3.0, 1.0));
  Update near_copy = colluder;
  for (auto& x : near_copy) x += static_cast<float>(rng.normal(0.0, 1e-5));
  updates.push_back(std::move(colluder));
  updates.push_back(std::move(near_copy));
  return updates;
}

TEST(PairwiseDistances, GramPathMatchesScalarReference) {
  const auto updates = gram_path_updates(12, 300, 77);
  const auto views = as_views(updates);
  const PairwiseMatrix fast = pairwise_sq_distances(views);
  const auto ref = scalar_sq_distances(updates);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    for (std::size_t j = 0; j < updates.size(); ++j) {
      const double tol = 1e-5 * std::max(1.0, ref[i][j]);
      EXPECT_NEAR(fast(i, j), ref[i][j], tol) << i << "," << j;
    }
  }
}

TEST(PairwiseDistances, CorrectionPassIsExactForColluders) {
  const auto updates = gram_path_updates(12, 300, 78);
  const auto views = as_views(updates);
  const PairwiseMatrix fast = pairwise_sq_distances(views);
  const auto ref = scalar_sq_distances(updates);
  // The colluding pair's distance is ~dim * 1e-10 — far below the float
  // Gram noise floor of its ~dim * 10 norms, so only the exact correction
  // pass can produce it. Demand double-level relative accuracy (the lane
  // association differs from the sequential reference by a few ulps).
  const std::size_t a = updates.size() - 2;
  const std::size_t b = updates.size() - 1;
  ASSERT_LT(ref[a][b], 1e-3);
  EXPECT_NEAR(fast(a, b), ref[a][b], 1e-10 * ref[a][b]);
}

TEST(KrumRule, GramPathSelectionsMatchScalarReference) {
  const auto updates = gram_path_updates(16, 200, 79);
  const auto views = as_views(updates);
  const auto ref = scalar_sq_distances(updates);
  for (const bool iterative : {false, true}) {
    for (const std::size_t m : {std::size_t{1}, std::size_t{4}}) {
      MultiKrum krum(3, m, iterative);
      EXPECT_EQ(krum.select(views), reference_krum_select(ref, 3, m, iterative))
          << "iterative=" << iterative << " m=" << m;
    }
  }
}

TEST(BulyanRule, GramPathSelectionsMatchScalarReference) {
  const std::size_t f = 2;
  const auto updates = gram_path_updates(14, 200, 80);
  const auto views = as_views(updates);
  Bulyan bulyan(f);
  const auto result =
      bulyan.aggregate(views, std::vector<std::int64_t>(updates.size(), 1));
  // Bulyan's selection stage is iterative Multi-Krum with theta = n - 2f.
  const auto ref = scalar_sq_distances(updates);
  const std::size_t theta = updates.size() - 2 * f;
  EXPECT_EQ(result.selected, reference_krum_select(ref, f, theta, true));
}

TEST(KrumRule, PlainKrumPicksCentralUpdate) {
  MultiKrum krum(1, 1);
  // Three clustered points and one far outlier; Krum must not pick the
  // outlier.
  const std::vector<Update> updates{{0.0f}, {0.1f}, {-0.1f}, {50.0f}};
  const auto result = krum.aggregate(updates, unit_weights(4));
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_NE(result.selected[0], 3u);
  EXPECT_LT(std::abs(result.model[0]), 0.2f);
  EXPECT_EQ(krum.name(), "Krum");
}

TEST(KrumRule, MultiKrumSelectsRequestedCount) {
  MultiKrum mkrum(2, 4);
  const auto updates = clustered_updates(8, 2, 5, 42);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 4u);
  EXPECT_TRUE(mkrum.selects_clients());
  EXPECT_EQ(mkrum.name(), "mKrum");
}

TEST(KrumRule, DefaultSelectionIsNMinusF) {
  MultiKrum mkrum(3);
  const auto updates = clustered_updates(10, 0, 4, 43);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  EXPECT_EQ(result.selected.size(), 7u);
}

TEST(KrumRule, OutliersExcludedFromSelection) {
  // Multi-Krum only guarantees malicious exclusion for m <= n - f - 2.
  MultiKrum mkrum(2, 6);
  const auto updates = clustered_updates(8, 2, 6, 44, 100.0f);
  const auto result = mkrum.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) {
    EXPECT_LT(idx, 8u) << "malicious update selected";
  }
}

TEST(KrumRule, SingleUpdateDegenerate) {
  MultiKrum mkrum(0, 1);
  const auto result = mkrum.aggregate({{5.0f}}, unit_weights(1));
  EXPECT_FLOAT_EQ(result.model[0], 5.0f);
  EXPECT_EQ(result.selected, (std::vector<std::size_t>{0}));
}

TEST(BulyanRule, RejectsFarOutliers) {
  Bulyan bulyan(2);
  const auto updates = clustered_updates(8, 2, 6, 45, 50.0f);
  const auto result = bulyan.aggregate(updates, unit_weights(10));
  for (const auto idx : result.selected) EXPECT_LT(idx, 8u);
  for (const float v : result.model) EXPECT_LT(std::abs(v), 1.0f);
  EXPECT_TRUE(bulyan.selects_clients());
}

TEST(BulyanRule, AggregateWithinBenignRangePerCoordinate) {
  Bulyan bulyan(1);
  const std::vector<Update> updates{{1.0f}, {2.0f}, {3.0f}, {4.0f}, {5.0f}};
  const auto result = bulyan.aggregate(updates, unit_weights(5));
  EXPECT_GE(result.model[0], 1.0f);
  EXPECT_LE(result.model[0], 5.0f);
}

TEST(FoolsGoldRule, DownweightsIdenticalSybils) {
  FoolsGold fg;
  util::Rng rng(46);
  std::vector<Update> updates;
  // Four diverse benign updates.
  for (int i = 0; i < 4; ++i) {
    Update u(8);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 1.0));
    updates.push_back(std::move(u));
  }
  // Three identical Sybil updates.
  Update sybil(8);
  for (auto& x : sybil) x = static_cast<float>(rng.normal(0.0, 1.0));
  for (int i = 0; i < 3; ++i) updates.push_back(sybil);

  fg.aggregate(updates, unit_weights(7));
  const auto& w = fg.last_weights();
  ASSERT_EQ(w.size(), 7u);
  const double benign_mean = (w[0] + w[1] + w[2] + w[3]) / 4.0;
  const double sybil_mean = (w[4] + w[5] + w[6]) / 3.0;
  EXPECT_GT(benign_mean, sybil_mean + 0.3);
}

TEST(NormClipRule, BoundsOutlierInfluence) {
  NormClipping clip;
  const std::vector<Update> updates{{0.0f}, {0.1f}, {-0.1f}, {1000.0f}};
  const auto clipped = clip.aggregate(updates, unit_weights(4));
  FedAvg avg;
  const auto plain = avg.aggregate(updates, unit_weights(4));
  EXPECT_LT(std::abs(clipped.model[0]), std::abs(plain.model[0]) / 10.0f);
  EXPECT_FALSE(clip.selects_clients());
}

TEST(GeoMedianRule, WeiszfeldMatchesScalarReference) {
  // Scalar double-precision Weiszfeld, identical iteration policy to
  // GeometricMedian's defaults (50 iters, tol 1e-6, smoothing 1e-8).
  const auto updates = gram_path_updates(10, 128, 81);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  std::vector<double> point(dim, 0.0);
  for (const auto& u : updates) {
    for (std::size_t i = 0; i < dim; ++i) point[i] += u[i] / double(n);
  }
  std::vector<double> next(dim);
  for (int iter = 0; iter < 50; ++iter) {
    double denom = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      double sq = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d = updates[k][i] - point[i];
        sq += d * d;
      }
      const double w = 1.0 / std::max(std::sqrt(sq), 1e-8);
      denom += w;
      for (std::size_t i = 0; i < dim; ++i) next[i] += w * updates[k][i];
    }
    double movement = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= denom;
      const double d = next[i] - point[i];
      movement += d * d;
    }
    point.swap(next);
    if (std::sqrt(movement) < 1e-6) break;
  }

  GeometricMedian gm;
  const auto result =
      gm.aggregate(as_views(updates), std::vector<std::int64_t>(n, 1));
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.model[i], point[i], 1e-4 * (1.0 + std::abs(point[i])))
        << "coordinate " << i;
  }
}

TEST(Factory, ConstructsEveryKnownAggregator) {
  for (const char* name : {"fedavg", "median", "trmean", "krum", "mkrum",
                           "bulyan", "foolsgold", "normclip"}) {
    const auto agg = make_aggregator(name, 2);
    ASSERT_NE(agg, nullptr) << name;
    EXPECT_FALSE(agg->name().empty());
  }
  EXPECT_THROW(make_aggregator("nope", 1), std::invalid_argument);
}

}  // namespace
}  // namespace zka::defense
