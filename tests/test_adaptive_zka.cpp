// Adaptive stealth extension: online lambda control from inferred
// acceptance, still zero-knowledge.
#include "core/adaptive_zka.h"

#include <gtest/gtest.h>

#include "core/zka_g.h"
#include "core/zka_r.h"
#include "fl/experiment.h"
#include "util/stats.h"

namespace zka::core {
namespace {

ZkaOptions tiny_options() {
  ZkaOptions opts;
  opts.synthetic_size = 6;
  opts.synthesis_epochs = 2;
  opts.latent_dim = 8;
  opts.classifier.epochs = 2;
  opts.classifier.batch_size = 6;
  return opts;
}

attack::AttackContext context_for(const std::vector<float>& global,
                                  const std::vector<float>& prev) {
  attack::AttackContext ctx;
  ctx.global_model = global;
  ctx.prev_global_model = prev;
  ctx.num_selected = 10;
  ctx.num_malicious_selected = 2;
  return ctx;
}

TEST(AdaptiveZka, NamesAndZeroKnowledge) {
  AdaptiveZkaAttack r(models::Task::kFashion, ZkaVariant::kReverse,
                      tiny_options(), {}, 1);
  AdaptiveZkaAttack g(models::Task::kFashion, ZkaVariant::kGenerator,
                      tiny_options(), {}, 1);
  EXPECT_EQ(r.name(), "ZKA-R-adaptive");
  EXPECT_EQ(g.name(), "ZKA-G-adaptive");
  EXPECT_FALSE(r.needs_benign_updates());
}

TEST(AdaptiveZka, LambdaClampedToConfiguredRange) {
  ZkaOptions opts = tiny_options();
  opts.classifier.lambda = 1000.0;
  AdaptiveOptions adaptive;
  adaptive.lambda_max = 32.0;
  AdaptiveZkaAttack attack(models::Task::kFashion, ZkaVariant::kReverse,
                           opts, adaptive, 2);
  EXPECT_DOUBLE_EQ(attack.current_lambda(), 32.0);
}

TEST(AdaptiveZka, EscalatesWhenGlobalIgnoresItsUpdate) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  std::vector<float> global = nn::get_flat_params(*factory(3));
  AdaptiveOptions adaptive;
  adaptive.escalation = 2.0;
  AdaptiveZkaAttack attack(models::Task::kFashion, ZkaVariant::kReverse,
                           tiny_options(), adaptive, 4);
  const double lambda0 = attack.current_lambda();

  attack.craft(context_for(global, global));
  // Simulate a server that moved in an unrelated direction (rejected us).
  std::vector<float> next = global;
  util::Rng rng(9);
  for (auto& w : next) w += static_cast<float>(rng.normal(0.0, 0.01));
  attack.craft(context_for(next, global));
  EXPECT_EQ(attack.inferred_rejects(), 1);
  EXPECT_GT(attack.current_lambda(), lambda0);
}

TEST(AdaptiveZka, RelaxesWhenGlobalFollowsItsUpdate) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  std::vector<float> global = nn::get_flat_params(*factory(5));
  AdaptiveOptions adaptive;
  adaptive.lambda_min = 0.5;
  AdaptiveZkaAttack attack(models::Task::kFashion, ZkaVariant::kGenerator,
                           tiny_options(), adaptive, 6);
  const double lambda0 = attack.current_lambda();

  const auto update = attack.craft(context_for(global, global));
  // Simulate acceptance: the global moved exactly toward our update.
  std::vector<float> next(global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    next[i] = global[i] + 0.3f * (update[i] - global[i]);
  }
  attack.craft(context_for(next, global));
  EXPECT_EQ(attack.inferred_accepts(), 1);
  EXPECT_LT(attack.current_lambda(), lambda0);
}

TEST(AdaptiveZka, RunsInsideSimulationGrid) {
  fl::SimulationConfig config;
  config.num_clients = 15;
  config.clients_per_round = 5;
  config.rounds = 4;
  config.train_size = 150;
  config.test_size = 60;
  config.malicious_fraction = 0.2;
  config.defense = "mkrum";
  config.defense_f = 1;
  config.seed = 31;
  for (const fl::AttackKind kind :
       {fl::AttackKind::kZkaRAdaptive, fl::AttackKind::kZkaGAdaptive}) {
    fl::Simulation sim(config);
    const auto attack = fl::make_attack(kind, sim, tiny_options(), 7);
    const auto result = sim.run(attack.get());
    EXPECT_EQ(result.rounds.size(), 4u) << fl::attack_kind_name(kind);
  }
}

TEST(AdaptiveZka, ParseAndNameRoundTrip) {
  EXPECT_EQ(fl::parse_attack_kind("zka-r-adaptive"),
            fl::AttackKind::kZkaRAdaptive);
  EXPECT_EQ(fl::parse_attack_kind("zka-g-adaptive"),
            fl::AttackKind::kZkaGAdaptive);
  EXPECT_STREQ(fl::attack_kind_name(fl::AttackKind::kZkaGAdaptive),
               "ZKA-G-adaptive");
}

}  // namespace
}  // namespace zka::core
