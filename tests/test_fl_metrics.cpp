#include "fl/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "nn/loss.h"

namespace zka::fl {
namespace {

TEST(Asr, FormulaMatchesEq4) {
  // acc_natk = 0.82, acc_max = 0.526 -> ASR = (0.82-0.526)/0.82 * 100.
  EXPECT_NEAR(attack_success_rate(0.82, 0.526), 35.85, 0.01);
  EXPECT_NEAR(attack_success_rate(0.5, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(attack_success_rate(0.5, 0.0), 100.0, 1e-12);
}

TEST(Asr, NegativeWhenAttackHelps) {
  EXPECT_LT(attack_success_rate(0.5, 0.6), 0.0);
}

TEST(Asr, UndefinedForZeroBaseline) {
  EXPECT_TRUE(std::isnan(attack_success_rate(0.0, 0.3)));
}

TEST(Dpr, FormulaMatchesEq5) {
  EXPECT_DOUBLE_EQ(defense_pass_rate(7, 10), 70.0);
  EXPECT_DOUBLE_EQ(defense_pass_rate(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(defense_pass_rate(4, 4), 100.0);
}

TEST(Dpr, UndefinedWithoutSelections) {
  EXPECT_TRUE(std::isnan(defense_pass_rate(0, 0)));
}

TEST(EvaluateAccuracy, PerfectAndChanceLevel) {
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 60, 21);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const auto params = nn::get_flat_params(*factory(5));
  const double acc = evaluate_accuracy(factory, params, dataset);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);

  data::Dataset empty;
  empty.spec = models::fashion_spec();
  empty.images = tensor::Tensor({0, 1, 28, 28});
  EXPECT_DOUBLE_EQ(evaluate_accuracy(factory, params, empty), 0.0);
}

TEST(EvaluateAccuracy, BatchSizeDoesNotChangeResult) {
  const auto dataset =
      data::make_synthetic_dataset(models::Task::kFashion, 50, 22);
  const auto factory = models::task_model_factory(models::Task::kFashion);
  const auto params = nn::get_flat_params(*factory(6));
  EXPECT_DOUBLE_EQ(evaluate_accuracy(factory, params, dataset, 7),
                   evaluate_accuracy(factory, params, dataset, 64));
}

}  // namespace
}  // namespace zka::fl
