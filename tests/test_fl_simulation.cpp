#include "fl/simulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "attack/random_weights.h"
#include "data/synthetic.h"
#include "defense/fedavg.h"
#include "defense/fltrust.h"
#include "fl/metrics.h"

namespace zka::fl {
namespace {

SimulationConfig tiny_config() {
  SimulationConfig config;
  config.task = models::Task::kFashion;
  config.num_clients = 20;
  config.clients_per_round = 5;
  config.rounds = 6;
  config.train_size = 300;
  config.test_size = 120;
  config.seed = 3;
  return config;
}

TEST(Simulation, AttackFreeFedAvgLearns) {
  SimulationConfig config = tiny_config();
  config.rounds = 10;
  config.malicious_fraction = 0.0;
  Simulation sim(config);
  const auto result = sim.run(nullptr);
  ASSERT_EQ(result.rounds.size(), 10u);
  EXPECT_GT(result.max_accuracy, 0.5);
  EXPECT_GT(result.final_accuracy, result.rounds.front().accuracy);
  EXPECT_FALSE(result.defense_selects);
  EXPECT_TRUE(std::isnan(result.dpr()));
}

TEST(Simulation, ReproducibleGivenSeed) {
  const SimulationConfig config = tiny_config();
  Simulation a(config);
  Simulation b(config);
  const auto ra = a.run(nullptr);
  const auto rb = b.run(nullptr);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.rounds[i].accuracy, rb.rounds[i].accuracy);
  }
}

TEST(Simulation, DifferentSeedsDiffer) {
  SimulationConfig config = tiny_config();
  Simulation a(config);
  config.seed = 4;
  Simulation b(config);
  EXPECT_NE(a.run(nullptr).final_accuracy, b.run(nullptr).final_accuracy);
}

TEST(Simulation, SerialAndParallelClientsAgree) {
  SimulationConfig config = tiny_config();
  config.parallel_clients = true;
  Simulation par(config);
  config.parallel_clients = false;
  Simulation ser(config);
  EXPECT_DOUBLE_EQ(par.run(nullptr).final_accuracy,
                   ser.run(nullptr).final_accuracy);
}

TEST(Simulation, SelectionBookkeepingConsistent) {
  SimulationConfig config = tiny_config();
  config.defense = "mkrum";
  config.malicious_fraction = 0.2;
  Simulation sim(config);
  attack::RandomWeightsAttack attack(0.5f, 9);
  const auto result = sim.run(&attack);
  EXPECT_TRUE(result.defense_selects);
  for (const RoundRecord& r : result.rounds) {
    EXPECT_LE(r.malicious_passed, r.malicious_selected);
    EXPECT_LE(r.benign_passed, r.benign_selected);
    EXPECT_EQ(r.malicious_selected + r.benign_selected,
              config.clients_per_round);
  }
}

TEST(Simulation, RandomWeightsRarelyPassMKrum) {
  // Sec. IV-A: random model weights almost never survive mKrum. Use the
  // paper's round size K = 10 — with fewer participants Krum's neighbor
  // count collapses and identical Sybil updates can vouch for each other.
  SimulationConfig config = tiny_config();
  config.rounds = 12;
  config.clients_per_round = 10;
  config.defense = "mkrum";
  config.malicious_fraction = 0.2;
  Simulation sim(config);
  attack::RandomWeightsAttack attack(0.5f, 10);
  const auto result = sim.run(&attack);
  const double dpr = result.dpr();
  ASSERT_FALSE(std::isnan(dpr));
  EXPECT_LT(dpr, 30.0);
  // Benign updates must survive far more often than random weights.
  EXPECT_GT(result.benign_pass_rate(), dpr);
}

TEST(Simulation, StatisticDefensesReportNoSelection) {
  for (const char* defense : {"median", "trmean"}) {
    SimulationConfig config = tiny_config();
    config.defense = defense;
    config.malicious_fraction = 0.2;
    Simulation sim(config);
    attack::RandomWeightsAttack attack(0.5f, 11);
    const auto result = sim.run(&attack);
    EXPECT_FALSE(result.defense_selects) << defense;
    EXPECT_TRUE(std::isnan(result.dpr())) << defense;
  }
}

TEST(Simulation, RoundCallbackFiresEveryRound) {
  SimulationConfig config = tiny_config();
  Simulation sim(config);
  int calls = 0;
  sim.set_round_callback([&](const RoundRecord& r) {
    EXPECT_EQ(r.round, calls);
    ++calls;
  });
  sim.run(nullptr);
  EXPECT_EQ(calls, 6);
}

TEST(Simulation, MaliciousDataPoolsAttackerShards) {
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.2;  // 4 of 20 clients
  Simulation sim(config);
  EXPECT_EQ(sim.num_malicious(), 4);
  const data::Dataset pooled = sim.malicious_data();
  EXPECT_GT(pooled.size(), 0);
  EXPECT_LT(pooled.size(), config.train_size);
}

TEST(Simulation, ConfigValidation) {
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.7;  // beyond the threat model's 50%
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
  config = tiny_config();
  config.clients_per_round = 0;
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
  config = tiny_config();
  config.clients_per_round = 21;
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
  config = tiny_config();
  config.defense = "bogus";
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
}

TEST(Simulation, ZeroAttackerRunIsCleanBaseline) {
  // Regression: an attack whose rounded attacker count is zero used to
  // throw, crashing every sub-1% fraction sweep at small populations. Such
  // a run now degrades to a clean baseline, bitwise-equal to attack=null.
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.02;  // floor(0.02 * 20) == 0
  Simulation sim(config);
  EXPECT_EQ(sim.num_malicious(), 0);
  attack::RandomWeightsAttack attack(0.5f, 12);
  const auto attacked = sim.run(&attack);
  for (const auto& r : attacked.rounds) {
    EXPECT_EQ(r.malicious_selected, 0);
  }
  Simulation clean(config);
  const auto baseline = clean.run(nullptr);
  EXPECT_EQ(attacked.final_model, baseline.final_model);
}

TEST(Simulation, AtLeastOneRoundingGuaranteesAnAttacker) {
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.02;  // floors to zero attackers...
  config.malicious_rounding = MaliciousRounding::kAtLeastOne;
  Simulation sim(config);
  EXPECT_EQ(sim.num_malicious(), 1);  // ...unless the knob promotes one

  // The knob only breaks floor-to-zero ties; a zero fraction stays clean.
  config.malicious_fraction = 0.0;
  Simulation clean(config);
  EXPECT_EQ(clean.num_malicious(), 0);
}

TEST(Simulation, EvalEveryReducesEvaluations) {
  SimulationConfig config = tiny_config();
  config.eval_every = 3;
  Simulation sim(config);
  const auto result = sim.run(nullptr);
  int evaluated = 0;
  for (const auto& r : result.rounds) {
    if (!std::isnan(r.accuracy)) ++evaluated;
  }
  EXPECT_LT(evaluated, 6);
  EXPECT_GE(evaluated, 2);  // first matching round and final round
}

TEST(Simulation, EvalDisabledLeavesAccuracyNaN) {
  // Regression: with evaluation off (eval_every = 0, as bench_fig6 runs),
  // the accuracy fields used to silently read 0.0; they must be NaN so a
  // never-evaluated run cannot masquerade as a 0%-accuracy result.
  SimulationConfig config = tiny_config();
  config.eval_every = 0;
  Simulation sim(config);
  const auto result = sim.run(nullptr);
  EXPECT_TRUE(std::isnan(result.max_accuracy));
  EXPECT_TRUE(std::isnan(result.final_accuracy));
  for (const auto& r : result.rounds) {
    EXPECT_TRUE(std::isnan(r.accuracy));
  }
}

TEST(Simulation, MaxAccuracyIsMaxOverEvaluatedRounds) {
  // NaN-aware max: skipped rounds (accuracy = NaN) must not poison the
  // running maximum, and the first evaluated round must seed it.
  SimulationConfig config = tiny_config();
  config.eval_every = 3;
  Simulation sim(config);
  const auto result = sim.run(nullptr);
  double expected = std::nan("");
  for (const auto& r : result.rounds) {
    if (std::isnan(r.accuracy)) continue;
    expected = std::isnan(expected) ? r.accuracy
                                    : std::max(expected, r.accuracy);
  }
  ASSERT_FALSE(std::isnan(expected));
  EXPECT_DOUBLE_EQ(result.max_accuracy, expected);
}

TEST(Simulation, RoundCallbackRecordsMatchFinalResult) {
  // The callback must fire once per round, in order, with the same record
  // the simulation later returns (it runs after the round's bookkeeping —
  // consumers like bench_fig6 depend on that ordering).
  SimulationConfig config = tiny_config();
  config.eval_every = 2;
  Simulation sim(config);
  std::vector<RoundRecord> seen;
  sim.set_round_callback(
      [&](const RoundRecord& r) { seen.push_back(r); });
  const auto result = sim.run(nullptr);
  ASSERT_EQ(seen.size(), result.rounds.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].round, result.rounds[i].round);
    EXPECT_EQ(seen[i].malicious_selected, result.rounds[i].malicious_selected);
    EXPECT_EQ(seen[i].malicious_passed, result.rounds[i].malicious_passed);
    EXPECT_EQ(seen[i].benign_selected, result.rounds[i].benign_selected);
    EXPECT_EQ(seen[i].benign_passed, result.rounds[i].benign_passed);
    if (std::isnan(seen[i].accuracy)) {
      EXPECT_TRUE(std::isnan(result.rounds[i].accuracy));
    } else {
      EXPECT_DOUBLE_EQ(seen[i].accuracy, result.rounds[i].accuracy);
    }
  }
}

TEST(Simulation, CustomDefenseFactoryOverridesName) {
  SimulationConfig config = tiny_config();
  config.defense = "bogus-name-ignored";
  config.custom_defense = [] {
    return defense::make_aggregator("median", 0);
  };
  Simulation sim(config);
  EXPECT_GT(sim.run(nullptr).max_accuracy, 0.3);
}

TEST(Simulation, NullCustomDefenseRejected) {
  SimulationConfig config = tiny_config();
  config.custom_defense = [] {
    return std::unique_ptr<defense::Aggregator>();
  };
  EXPECT_THROW(Simulation{config}, std::invalid_argument);
}

TEST(Simulation, FlTrustRunsAsCustomDefense) {
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.2;
  config.custom_defense = [&config] {
    return std::make_unique<defense::FlTrust>(
        data::make_synthetic_dataset(config.task, 48, 777),
        models::task_model_factory(config.task),
        defense::FlTrustOptions{}, 9);
  };
  Simulation sim(config);
  attack::RandomWeightsAttack attack(0.5f, 13);
  const auto result = sim.run(&attack);
  EXPECT_TRUE(result.defense_selects);
  // Random-weight updates are uncorrelated with the server direction, so
  // FLTrust should reject nearly all of them.
  EXPECT_LT(result.dpr(), 60.0);
  EXPECT_GT(result.max_accuracy, 0.2);
}

TEST(Simulation, IidPartitionWhenBetaNonPositive) {
  SimulationConfig config = tiny_config();
  config.beta = 0.0;
  Simulation sim(config);
  EXPECT_GT(sim.run(nullptr).max_accuracy, 0.3);
}

// FedAvg wrapper that records the weight vector of every round, for
// asserting the server-side weight-assembly semantics. Ingress
// sanitization is disabled so the capture sees the round loop's raw
// client-reported weights, not the clamped ones.
class WeightCaptureFedAvg : public defense::FedAvg {
 public:
  explicit WeightCaptureFedAvg(std::vector<std::vector<std::int64_t>>* log)
      : log_(log) {
    set_sanitize({.enabled = false});
  }
  defense::AggregationResult do_aggregate(
      std::span<const defense::UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    log_->emplace_back(weights.begin(), weights.end());
    return defense::FedAvg::do_aggregate(updates, weights);
  }

 private:
  std::vector<std::vector<std::int64_t>>* log_;
};

TEST(Simulation, EmptyShardClientsReportZeroWeight) {
  // Regression: clients with empty shards used to be silently assigned
  // weight max(num_samples, 1) — a fabricated sample the client never had.
  // With 10 training samples IID-split over 20 clients, half the shards are
  // empty; their reported weight must be 0, never floored up to 1.
  SimulationConfig config = tiny_config();
  config.beta = 0.0;
  config.train_size = 10;
  config.rounds = 4;
  std::vector<std::vector<std::int64_t>> rounds_weights;
  config.custom_defense = [&rounds_weights] {
    return std::make_unique<WeightCaptureFedAvg>(&rounds_weights);
  };
  Simulation sim(config);
  sim.run(nullptr);
  ASSERT_EQ(rounds_weights.size(), 4u);
  std::int64_t zeros = 0;
  for (const auto& weights : rounds_weights) {
    ASSERT_EQ(weights.size(), 5u);
    for (const std::int64_t w : weights) {
      EXPECT_TRUE(w == 0 || w == 1) << w;
      if (w == 0) ++zeros;
    }
  }
  EXPECT_GT(zeros, 0);  // this seed samples empty-shard clients
}

TEST(Simulation, MaliciousWeightIsAttackerReported) {
  // Sample counts are client-reported: the round loop must submit whatever
  // Attack::reported_weight returns for each sybil, not a weight derived
  // from the shards the adversary's clients happen to own.
  class SentinelWeightAttack : public attack::RandomWeightsAttack {
   public:
    using RandomWeightsAttack::RandomWeightsAttack;
    std::int64_t reported_weight(
        const attack::AttackContext& ctx) const override {
      EXPECT_GE(ctx.benign_median_weight, 0);
      return 777000;  // implausible as a real shard size
    }
  };
  SimulationConfig config = tiny_config();
  config.malicious_fraction = 0.2;  // 4 of 20 clients
  std::vector<std::vector<std::int64_t>> rounds_weights;
  config.custom_defense = [&rounds_weights] {
    return std::make_unique<WeightCaptureFedAvg>(&rounds_weights);
  };
  Simulation sim(config);
  SentinelWeightAttack attack(0.5f, 12);
  const auto result = sim.run(&attack);
  ASSERT_EQ(rounds_weights.size(), result.rounds.size());
  for (std::size_t r = 0; r < rounds_weights.size(); ++r) {
    std::int64_t sentinels = 0;
    for (const std::int64_t w : rounds_weights[r]) {
      if (w == 777000) ++sentinels;
    }
    EXPECT_EQ(sentinels, result.rounds[r].malicious_selected);
  }
}

TEST(Simulation, DefaultReportedWeightIsBenignMedian) {
  attack::RandomWeightsAttack attack(0.5f, 12);
  attack::AttackContext ctx;
  ctx.benign_median_weight = 7;
  EXPECT_EQ(attack.reported_weight(ctx), 7);
}

}  // namespace
}  // namespace zka::fl
