#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "models/models.h"
#include "nn/module.h"
#include "util/rng.h"

namespace zka::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string temp_path(const char* name) {
    const auto path = std::filesystem::temp_directory_path() / name;
    paths_.push_back(path.string());
    return path.string();
  }
  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }
  std::vector<std::string> paths_;
};

TEST_F(SerializeTest, RoundTripPreservesBits) {
  util::Rng rng(1);
  std::vector<float> params(1234);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 3.0));
  const auto path = temp_path("zka_roundtrip.bin");
  save_params(path, params);
  EXPECT_EQ(load_params(path), params);
}

TEST_F(SerializeTest, EmptyVectorRoundTrips) {
  const auto path = temp_path("zka_empty.bin");
  save_params(path, std::vector<float>{});
  EXPECT_TRUE(load_params(path).empty());
}

TEST_F(SerializeTest, ModelCheckpointRestoresAccuracy) {
  const auto factory = models::task_model_factory(models::Task::kFashion);
  auto model = factory(42);
  const auto params = get_flat_params(*model);
  const auto path = temp_path("zka_model.bin");
  save_params(path, params);

  auto restored = factory(7);  // different init
  set_flat_params(*restored, load_params(path));
  EXPECT_EQ(get_flat_params(*restored), params);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_params("/nonexistent/zka.bin"), std::runtime_error);
  EXPECT_THROW(save_params("/nonexistent-dir/zka.bin", std::vector<float>(3)),
               std::runtime_error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  const auto path = temp_path("zka_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "NOPExxxxxxxxxxxxxxxxxxxx";
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncationDetected) {
  const auto path = temp_path("zka_trunc.bin");
  save_params(path, std::vector<float>(64, 1.5f));
  // Chop the file in half.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST_F(SerializeTest, CorruptionDetectedByChecksum) {
  const auto path = temp_path("zka_corrupt.bin");
  save_params(path, std::vector<float>(64, 1.5f));
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(32);
    const char garbage = 0x5a;
    file.write(&garbage, 1);
  }
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST(ParamsChecksum, SensitiveToEveryValue) {
  std::vector<float> a(16, 1.0f);
  std::vector<float> b = a;
  b[15] += 1e-6f;
  EXPECT_NE(params_checksum(a), params_checksum(b));
  EXPECT_EQ(params_checksum(a), params_checksum(std::vector<float>(16, 1.0f)));
}

}  // namespace
}  // namespace zka::nn
