file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_and_diagnose.dir/checkpoint_and_diagnose.cpp.o"
  "CMakeFiles/checkpoint_and_diagnose.dir/checkpoint_and_diagnose.cpp.o.d"
  "checkpoint_and_diagnose"
  "checkpoint_and_diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_and_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
