# Empty compiler generated dependencies file for checkpoint_and_diagnose.
# This may be replaced when dependencies are built.
