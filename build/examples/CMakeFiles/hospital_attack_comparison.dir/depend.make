# Empty dependencies file for hospital_attack_comparison.
# This may be replaced when dependencies are built.
