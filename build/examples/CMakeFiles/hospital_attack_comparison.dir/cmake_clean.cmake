file(REMOVE_RECURSE
  "CMakeFiles/hospital_attack_comparison.dir/hospital_attack_comparison.cpp.o"
  "CMakeFiles/hospital_attack_comparison.dir/hospital_attack_comparison.cpp.o.d"
  "hospital_attack_comparison"
  "hospital_attack_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_attack_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
