# Empty compiler generated dependencies file for synthetic_data_viewer.
# This may be replaced when dependencies are built.
