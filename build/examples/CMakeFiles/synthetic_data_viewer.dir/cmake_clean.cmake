file(REMOVE_RECURSE
  "CMakeFiles/synthetic_data_viewer.dir/synthetic_data_viewer.cpp.o"
  "CMakeFiles/synthetic_data_viewer.dir/synthetic_data_viewer.cpp.o.d"
  "synthetic_data_viewer"
  "synthetic_data_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_data_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
