
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_zka.cpp" "src/core/CMakeFiles/zka_core.dir/adaptive_zka.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/adaptive_zka.cpp.o.d"
  "/root/repo/src/core/adversarial_trainer.cpp" "src/core/CMakeFiles/zka_core.dir/adversarial_trainer.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/adversarial_trainer.cpp.o.d"
  "/root/repo/src/core/distance_reg.cpp" "src/core/CMakeFiles/zka_core.dir/distance_reg.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/distance_reg.cpp.o.d"
  "/root/repo/src/core/real_data.cpp" "src/core/CMakeFiles/zka_core.dir/real_data.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/real_data.cpp.o.d"
  "/root/repo/src/core/zka_g.cpp" "src/core/CMakeFiles/zka_core.dir/zka_g.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/zka_g.cpp.o.d"
  "/root/repo/src/core/zka_r.cpp" "src/core/CMakeFiles/zka_core.dir/zka_r.cpp.o" "gcc" "src/core/CMakeFiles/zka_core.dir/zka_r.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/zka_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/zka_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/zka_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zka_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/zka_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
