file(REMOVE_RECURSE
  "libzka_core.a"
)
