# Empty compiler generated dependencies file for zka_core.
# This may be replaced when dependencies are built.
