file(REMOVE_RECURSE
  "CMakeFiles/zka_core.dir/adaptive_zka.cpp.o"
  "CMakeFiles/zka_core.dir/adaptive_zka.cpp.o.d"
  "CMakeFiles/zka_core.dir/adversarial_trainer.cpp.o"
  "CMakeFiles/zka_core.dir/adversarial_trainer.cpp.o.d"
  "CMakeFiles/zka_core.dir/distance_reg.cpp.o"
  "CMakeFiles/zka_core.dir/distance_reg.cpp.o.d"
  "CMakeFiles/zka_core.dir/real_data.cpp.o"
  "CMakeFiles/zka_core.dir/real_data.cpp.o.d"
  "CMakeFiles/zka_core.dir/zka_g.cpp.o"
  "CMakeFiles/zka_core.dir/zka_g.cpp.o.d"
  "CMakeFiles/zka_core.dir/zka_r.cpp.o"
  "CMakeFiles/zka_core.dir/zka_r.cpp.o.d"
  "libzka_core.a"
  "libzka_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
