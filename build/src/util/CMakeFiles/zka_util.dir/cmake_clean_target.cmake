file(REMOVE_RECURSE
  "libzka_util.a"
)
