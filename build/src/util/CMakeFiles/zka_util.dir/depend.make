# Empty dependencies file for zka_util.
# This may be replaced when dependencies are built.
