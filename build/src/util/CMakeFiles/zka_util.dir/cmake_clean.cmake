file(REMOVE_RECURSE
  "CMakeFiles/zka_util.dir/cli.cpp.o"
  "CMakeFiles/zka_util.dir/cli.cpp.o.d"
  "CMakeFiles/zka_util.dir/logging.cpp.o"
  "CMakeFiles/zka_util.dir/logging.cpp.o.d"
  "CMakeFiles/zka_util.dir/rng.cpp.o"
  "CMakeFiles/zka_util.dir/rng.cpp.o.d"
  "CMakeFiles/zka_util.dir/stats.cpp.o"
  "CMakeFiles/zka_util.dir/stats.cpp.o.d"
  "CMakeFiles/zka_util.dir/table.cpp.o"
  "CMakeFiles/zka_util.dir/table.cpp.o.d"
  "CMakeFiles/zka_util.dir/thread_pool.cpp.o"
  "CMakeFiles/zka_util.dir/thread_pool.cpp.o.d"
  "libzka_util.a"
  "libzka_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
