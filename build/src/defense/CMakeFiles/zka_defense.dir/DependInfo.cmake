
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/bulyan.cpp" "src/defense/CMakeFiles/zka_defense.dir/bulyan.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/bulyan.cpp.o.d"
  "/root/repo/src/defense/centered_clip.cpp" "src/defense/CMakeFiles/zka_defense.dir/centered_clip.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/centered_clip.cpp.o.d"
  "/root/repo/src/defense/distance.cpp" "src/defense/CMakeFiles/zka_defense.dir/distance.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/distance.cpp.o.d"
  "/root/repo/src/defense/dnc.cpp" "src/defense/CMakeFiles/zka_defense.dir/dnc.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/dnc.cpp.o.d"
  "/root/repo/src/defense/factory.cpp" "src/defense/CMakeFiles/zka_defense.dir/factory.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/factory.cpp.o.d"
  "/root/repo/src/defense/fedavg.cpp" "src/defense/CMakeFiles/zka_defense.dir/fedavg.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/fedavg.cpp.o.d"
  "/root/repo/src/defense/fltrust.cpp" "src/defense/CMakeFiles/zka_defense.dir/fltrust.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/fltrust.cpp.o.d"
  "/root/repo/src/defense/foolsgold.cpp" "src/defense/CMakeFiles/zka_defense.dir/foolsgold.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/foolsgold.cpp.o.d"
  "/root/repo/src/defense/geometric_median.cpp" "src/defense/CMakeFiles/zka_defense.dir/geometric_median.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/geometric_median.cpp.o.d"
  "/root/repo/src/defense/krum.cpp" "src/defense/CMakeFiles/zka_defense.dir/krum.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/krum.cpp.o.d"
  "/root/repo/src/defense/norm_clip.cpp" "src/defense/CMakeFiles/zka_defense.dir/norm_clip.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/norm_clip.cpp.o.d"
  "/root/repo/src/defense/statistic.cpp" "src/defense/CMakeFiles/zka_defense.dir/statistic.cpp.o" "gcc" "src/defense/CMakeFiles/zka_defense.dir/statistic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/zka_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zka_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/zka_models.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
