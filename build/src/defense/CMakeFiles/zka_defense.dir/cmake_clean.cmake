file(REMOVE_RECURSE
  "CMakeFiles/zka_defense.dir/bulyan.cpp.o"
  "CMakeFiles/zka_defense.dir/bulyan.cpp.o.d"
  "CMakeFiles/zka_defense.dir/centered_clip.cpp.o"
  "CMakeFiles/zka_defense.dir/centered_clip.cpp.o.d"
  "CMakeFiles/zka_defense.dir/distance.cpp.o"
  "CMakeFiles/zka_defense.dir/distance.cpp.o.d"
  "CMakeFiles/zka_defense.dir/dnc.cpp.o"
  "CMakeFiles/zka_defense.dir/dnc.cpp.o.d"
  "CMakeFiles/zka_defense.dir/factory.cpp.o"
  "CMakeFiles/zka_defense.dir/factory.cpp.o.d"
  "CMakeFiles/zka_defense.dir/fedavg.cpp.o"
  "CMakeFiles/zka_defense.dir/fedavg.cpp.o.d"
  "CMakeFiles/zka_defense.dir/fltrust.cpp.o"
  "CMakeFiles/zka_defense.dir/fltrust.cpp.o.d"
  "CMakeFiles/zka_defense.dir/foolsgold.cpp.o"
  "CMakeFiles/zka_defense.dir/foolsgold.cpp.o.d"
  "CMakeFiles/zka_defense.dir/geometric_median.cpp.o"
  "CMakeFiles/zka_defense.dir/geometric_median.cpp.o.d"
  "CMakeFiles/zka_defense.dir/krum.cpp.o"
  "CMakeFiles/zka_defense.dir/krum.cpp.o.d"
  "CMakeFiles/zka_defense.dir/norm_clip.cpp.o"
  "CMakeFiles/zka_defense.dir/norm_clip.cpp.o.d"
  "CMakeFiles/zka_defense.dir/statistic.cpp.o"
  "CMakeFiles/zka_defense.dir/statistic.cpp.o.d"
  "libzka_defense.a"
  "libzka_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
