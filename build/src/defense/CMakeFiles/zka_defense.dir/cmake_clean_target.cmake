file(REMOVE_RECURSE
  "libzka_defense.a"
)
