# Empty compiler generated dependencies file for zka_defense.
# This may be replaced when dependencies are built.
