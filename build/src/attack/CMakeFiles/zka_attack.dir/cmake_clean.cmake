file(REMOVE_RECURSE
  "CMakeFiles/zka_attack.dir/backdoor.cpp.o"
  "CMakeFiles/zka_attack.dir/backdoor.cpp.o.d"
  "CMakeFiles/zka_attack.dir/fang.cpp.o"
  "CMakeFiles/zka_attack.dir/fang.cpp.o.d"
  "CMakeFiles/zka_attack.dir/free_rider.cpp.o"
  "CMakeFiles/zka_attack.dir/free_rider.cpp.o.d"
  "CMakeFiles/zka_attack.dir/label_flip.cpp.o"
  "CMakeFiles/zka_attack.dir/label_flip.cpp.o.d"
  "CMakeFiles/zka_attack.dir/lie.cpp.o"
  "CMakeFiles/zka_attack.dir/lie.cpp.o.d"
  "CMakeFiles/zka_attack.dir/minmax.cpp.o"
  "CMakeFiles/zka_attack.dir/minmax.cpp.o.d"
  "CMakeFiles/zka_attack.dir/random_weights.cpp.o"
  "CMakeFiles/zka_attack.dir/random_weights.cpp.o.d"
  "libzka_attack.a"
  "libzka_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
