
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/backdoor.cpp" "src/attack/CMakeFiles/zka_attack.dir/backdoor.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/backdoor.cpp.o.d"
  "/root/repo/src/attack/fang.cpp" "src/attack/CMakeFiles/zka_attack.dir/fang.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/fang.cpp.o.d"
  "/root/repo/src/attack/free_rider.cpp" "src/attack/CMakeFiles/zka_attack.dir/free_rider.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/free_rider.cpp.o.d"
  "/root/repo/src/attack/label_flip.cpp" "src/attack/CMakeFiles/zka_attack.dir/label_flip.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/label_flip.cpp.o.d"
  "/root/repo/src/attack/lie.cpp" "src/attack/CMakeFiles/zka_attack.dir/lie.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/lie.cpp.o.d"
  "/root/repo/src/attack/minmax.cpp" "src/attack/CMakeFiles/zka_attack.dir/minmax.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/minmax.cpp.o.d"
  "/root/repo/src/attack/random_weights.cpp" "src/attack/CMakeFiles/zka_attack.dir/random_weights.cpp.o" "gcc" "src/attack/CMakeFiles/zka_attack.dir/random_weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/zka_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zka_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/zka_models.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/zka_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
