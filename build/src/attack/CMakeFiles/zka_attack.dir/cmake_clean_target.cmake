file(REMOVE_RECURSE
  "libzka_attack.a"
)
