# Empty dependencies file for zka_attack.
# This may be replaced when dependencies are built.
