file(REMOVE_RECURSE
  "CMakeFiles/zka_data.dir/dataset.cpp.o"
  "CMakeFiles/zka_data.dir/dataset.cpp.o.d"
  "CMakeFiles/zka_data.dir/loader.cpp.o"
  "CMakeFiles/zka_data.dir/loader.cpp.o.d"
  "CMakeFiles/zka_data.dir/partition.cpp.o"
  "CMakeFiles/zka_data.dir/partition.cpp.o.d"
  "CMakeFiles/zka_data.dir/synthetic.cpp.o"
  "CMakeFiles/zka_data.dir/synthetic.cpp.o.d"
  "libzka_data.a"
  "libzka_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
