file(REMOVE_RECURSE
  "libzka_data.a"
)
