# Empty compiler generated dependencies file for zka_data.
# This may be replaced when dependencies are built.
