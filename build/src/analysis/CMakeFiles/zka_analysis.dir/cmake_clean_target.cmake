file(REMOVE_RECURSE
  "libzka_analysis.a"
)
