
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/pca.cpp" "src/analysis/CMakeFiles/zka_analysis.dir/pca.cpp.o" "gcc" "src/analysis/CMakeFiles/zka_analysis.dir/pca.cpp.o.d"
  "/root/repo/src/analysis/update_diagnostics.cpp" "src/analysis/CMakeFiles/zka_analysis.dir/update_diagnostics.cpp.o" "gcc" "src/analysis/CMakeFiles/zka_analysis.dir/update_diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
