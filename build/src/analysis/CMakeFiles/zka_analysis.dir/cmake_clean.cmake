file(REMOVE_RECURSE
  "CMakeFiles/zka_analysis.dir/pca.cpp.o"
  "CMakeFiles/zka_analysis.dir/pca.cpp.o.d"
  "CMakeFiles/zka_analysis.dir/update_diagnostics.cpp.o"
  "CMakeFiles/zka_analysis.dir/update_diagnostics.cpp.o.d"
  "libzka_analysis.a"
  "libzka_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
