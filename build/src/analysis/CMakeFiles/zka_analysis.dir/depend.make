# Empty dependencies file for zka_analysis.
# This may be replaced when dependencies are built.
