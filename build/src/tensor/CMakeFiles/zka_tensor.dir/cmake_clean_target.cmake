file(REMOVE_RECURSE
  "libzka_tensor.a"
)
