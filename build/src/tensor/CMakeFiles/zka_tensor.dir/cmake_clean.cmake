file(REMOVE_RECURSE
  "CMakeFiles/zka_tensor.dir/ops.cpp.o"
  "CMakeFiles/zka_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/zka_tensor.dir/tensor.cpp.o"
  "CMakeFiles/zka_tensor.dir/tensor.cpp.o.d"
  "libzka_tensor.a"
  "libzka_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
