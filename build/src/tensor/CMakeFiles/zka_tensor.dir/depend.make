# Empty dependencies file for zka_tensor.
# This may be replaced when dependencies are built.
