file(REMOVE_RECURSE
  "libzka_models.a"
)
