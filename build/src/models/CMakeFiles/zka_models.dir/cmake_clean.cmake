file(REMOVE_RECURSE
  "CMakeFiles/zka_models.dir/models.cpp.o"
  "CMakeFiles/zka_models.dir/models.cpp.o.d"
  "libzka_models.a"
  "libzka_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
