# Empty dependencies file for zka_models.
# This may be replaced when dependencies are built.
