file(REMOVE_RECURSE
  "CMakeFiles/zka_fl.dir/client.cpp.o"
  "CMakeFiles/zka_fl.dir/client.cpp.o.d"
  "CMakeFiles/zka_fl.dir/experiment.cpp.o"
  "CMakeFiles/zka_fl.dir/experiment.cpp.o.d"
  "CMakeFiles/zka_fl.dir/metrics.cpp.o"
  "CMakeFiles/zka_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/zka_fl.dir/simulation.cpp.o"
  "CMakeFiles/zka_fl.dir/simulation.cpp.o.d"
  "CMakeFiles/zka_fl.dir/trace.cpp.o"
  "CMakeFiles/zka_fl.dir/trace.cpp.o.d"
  "libzka_fl.a"
  "libzka_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
