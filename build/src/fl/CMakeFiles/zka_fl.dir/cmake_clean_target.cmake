file(REMOVE_RECURSE
  "libzka_fl.a"
)
