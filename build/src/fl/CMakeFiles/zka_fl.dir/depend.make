# Empty dependencies file for zka_fl.
# This may be replaced when dependencies are built.
