file(REMOVE_RECURSE
  "libzka_nn.a"
)
