
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/zka_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/zka_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/zka_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/zka_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/conv_transpose2d.cpp" "src/nn/CMakeFiles/zka_nn.dir/conv_transpose2d.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/conv_transpose2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/zka_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/zka_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/zka_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/zka_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/zka_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/zka_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/zka_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/zka_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/zka_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/zka_nn.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
