# Empty dependencies file for zka_nn.
# This may be replaced when dependencies are built.
