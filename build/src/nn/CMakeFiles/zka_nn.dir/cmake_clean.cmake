file(REMOVE_RECURSE
  "CMakeFiles/zka_nn.dir/activations.cpp.o"
  "CMakeFiles/zka_nn.dir/activations.cpp.o.d"
  "CMakeFiles/zka_nn.dir/adam.cpp.o"
  "CMakeFiles/zka_nn.dir/adam.cpp.o.d"
  "CMakeFiles/zka_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/zka_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/zka_nn.dir/conv2d.cpp.o"
  "CMakeFiles/zka_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/zka_nn.dir/conv_transpose2d.cpp.o"
  "CMakeFiles/zka_nn.dir/conv_transpose2d.cpp.o.d"
  "CMakeFiles/zka_nn.dir/dropout.cpp.o"
  "CMakeFiles/zka_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/zka_nn.dir/flatten.cpp.o"
  "CMakeFiles/zka_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/zka_nn.dir/linear.cpp.o"
  "CMakeFiles/zka_nn.dir/linear.cpp.o.d"
  "CMakeFiles/zka_nn.dir/loss.cpp.o"
  "CMakeFiles/zka_nn.dir/loss.cpp.o.d"
  "CMakeFiles/zka_nn.dir/module.cpp.o"
  "CMakeFiles/zka_nn.dir/module.cpp.o.d"
  "CMakeFiles/zka_nn.dir/pooling.cpp.o"
  "CMakeFiles/zka_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/zka_nn.dir/sequential.cpp.o"
  "CMakeFiles/zka_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/zka_nn.dir/serialize.cpp.o"
  "CMakeFiles/zka_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/zka_nn.dir/sgd.cpp.o"
  "CMakeFiles/zka_nn.dir/sgd.cpp.o.d"
  "libzka_nn.a"
  "libzka_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zka_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
