# Empty dependencies file for test_adaptive_zka.
# This may be replaced when dependencies are built.
