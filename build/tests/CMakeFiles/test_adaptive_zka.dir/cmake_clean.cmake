file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_zka.dir/test_adaptive_zka.cpp.o"
  "CMakeFiles/test_adaptive_zka.dir/test_adaptive_zka.cpp.o.d"
  "test_adaptive_zka"
  "test_adaptive_zka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_zka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
