# Empty dependencies file for test_fl_simulation.
# This may be replaced when dependencies are built.
