file(REMOVE_RECURSE
  "CMakeFiles/test_fl_simulation.dir/test_fl_simulation.cpp.o"
  "CMakeFiles/test_fl_simulation.dir/test_fl_simulation.cpp.o.d"
  "test_fl_simulation"
  "test_fl_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
