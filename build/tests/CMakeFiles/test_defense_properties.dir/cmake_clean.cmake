file(REMOVE_RECURSE
  "CMakeFiles/test_defense_properties.dir/test_defense_properties.cpp.o"
  "CMakeFiles/test_defense_properties.dir/test_defense_properties.cpp.o.d"
  "test_defense_properties"
  "test_defense_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defense_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
