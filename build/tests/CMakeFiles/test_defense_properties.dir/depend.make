# Empty dependencies file for test_defense_properties.
# This may be replaced when dependencies are built.
