
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backdoor.cpp" "tests/CMakeFiles/test_backdoor.dir/test_backdoor.cpp.o" "gcc" "tests/CMakeFiles/test_backdoor.dir/test_backdoor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/zka_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zka_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/zka_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/zka_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zka_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/zka_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/zka_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zka_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zka_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/zka_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
