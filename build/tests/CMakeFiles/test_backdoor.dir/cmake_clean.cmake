file(REMOVE_RECURSE
  "CMakeFiles/test_backdoor.dir/test_backdoor.cpp.o"
  "CMakeFiles/test_backdoor.dir/test_backdoor.cpp.o.d"
  "test_backdoor"
  "test_backdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
