# Empty dependencies file for test_backdoor.
# This may be replaced when dependencies are built.
