# Empty dependencies file for test_update_diagnostics.
# This may be replaced when dependencies are built.
