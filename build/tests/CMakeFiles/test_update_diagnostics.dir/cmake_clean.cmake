file(REMOVE_RECURSE
  "CMakeFiles/test_update_diagnostics.dir/test_update_diagnostics.cpp.o"
  "CMakeFiles/test_update_diagnostics.dir/test_update_diagnostics.cpp.o.d"
  "test_update_diagnostics"
  "test_update_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
