# Empty compiler generated dependencies file for test_zka_g.
# This may be replaced when dependencies are built.
