file(REMOVE_RECURSE
  "CMakeFiles/test_zka_g.dir/test_zka_g.cpp.o"
  "CMakeFiles/test_zka_g.dir/test_zka_g.cpp.o.d"
  "test_zka_g"
  "test_zka_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zka_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
