# Empty dependencies file for test_attack_properties.
# This may be replaced when dependencies are built.
