file(REMOVE_RECURSE
  "CMakeFiles/test_attack_properties.dir/test_attack_properties.cpp.o"
  "CMakeFiles/test_attack_properties.dir/test_attack_properties.cpp.o.d"
  "test_attack_properties"
  "test_attack_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
