file(REMOVE_RECURSE
  "CMakeFiles/test_attack_ext.dir/test_attack_ext.cpp.o"
  "CMakeFiles/test_attack_ext.dir/test_attack_ext.cpp.o.d"
  "test_attack_ext"
  "test_attack_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
