# Empty dependencies file for test_attack_ext.
# This may be replaced when dependencies are built.
