# Empty dependencies file for test_fl_metrics.
# This may be replaced when dependencies are built.
