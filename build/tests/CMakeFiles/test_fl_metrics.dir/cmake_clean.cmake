file(REMOVE_RECURSE
  "CMakeFiles/test_fl_metrics.dir/test_fl_metrics.cpp.o"
  "CMakeFiles/test_fl_metrics.dir/test_fl_metrics.cpp.o.d"
  "test_fl_metrics"
  "test_fl_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
