# Empty dependencies file for test_zka_r.
# This may be replaced when dependencies are built.
