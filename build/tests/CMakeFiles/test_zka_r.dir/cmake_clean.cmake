file(REMOVE_RECURSE
  "CMakeFiles/test_zka_r.dir/test_zka_r.cpp.o"
  "CMakeFiles/test_zka_r.dir/test_zka_r.cpp.o.d"
  "test_zka_r"
  "test_zka_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zka_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
