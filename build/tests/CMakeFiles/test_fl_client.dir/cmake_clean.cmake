file(REMOVE_RECURSE
  "CMakeFiles/test_fl_client.dir/test_fl_client.cpp.o"
  "CMakeFiles/test_fl_client.dir/test_fl_client.cpp.o.d"
  "test_fl_client"
  "test_fl_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
