file(REMOVE_RECURSE
  "CMakeFiles/test_confusion.dir/test_confusion.cpp.o"
  "CMakeFiles/test_confusion.dir/test_confusion.cpp.o.d"
  "test_confusion"
  "test_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
