# Empty compiler generated dependencies file for test_defense_ext.
# This may be replaced when dependencies are built.
