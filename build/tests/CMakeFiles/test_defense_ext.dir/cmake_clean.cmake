file(REMOVE_RECURSE
  "CMakeFiles/test_defense_ext.dir/test_defense_ext.cpp.o"
  "CMakeFiles/test_defense_ext.dir/test_defense_ext.cpp.o.d"
  "test_defense_ext"
  "test_defense_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defense_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
