file(REMOVE_RECURSE
  "CMakeFiles/test_core_reg.dir/test_core_reg.cpp.o"
  "CMakeFiles/test_core_reg.dir/test_core_reg.cpp.o.d"
  "test_core_reg"
  "test_core_reg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
