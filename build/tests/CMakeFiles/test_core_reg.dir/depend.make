# Empty dependencies file for test_core_reg.
# This may be replaced when dependencies are built.
