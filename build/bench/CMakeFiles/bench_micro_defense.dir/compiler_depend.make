# Empty compiler generated dependencies file for bench_micro_defense.
# This may be replaced when dependencies are built.
