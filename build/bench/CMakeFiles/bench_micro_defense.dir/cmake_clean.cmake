file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_defense.dir/bench_micro_defense.cpp.o"
  "CMakeFiles/bench_micro_defense.dir/bench_micro_defense.cpp.o.d"
  "bench_micro_defense"
  "bench_micro_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
