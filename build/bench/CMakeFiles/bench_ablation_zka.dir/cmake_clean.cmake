file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zka.dir/bench_ablation_zka.cpp.o"
  "CMakeFiles/bench_ablation_zka.dir/bench_ablation_zka.cpp.o.d"
  "bench_ablation_zka"
  "bench_ablation_zka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
