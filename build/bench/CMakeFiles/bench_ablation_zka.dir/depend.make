# Empty dependencies file for bench_ablation_zka.
# This may be replaced when dependencies are built.
