# Empty compiler generated dependencies file for bench_micro_attack.
# This may be replaced when dependencies are built.
