file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_attack.dir/bench_micro_attack.cpp.o"
  "CMakeFiles/bench_micro_attack.dir/bench_micro_attack.cpp.o.d"
  "bench_micro_attack"
  "bench_micro_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
