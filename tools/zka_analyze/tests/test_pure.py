#!/usr/bin/env python3
"""Clang-free tests for the zka_analyze two-phase analyzer.

Everything here runs without libclang, so -- unlike the fixture suite --
this test NEVER skips. It covers the parts of the analyzer that must
behave correctly even on machines where the AST phase cannot run:

  * CLI environment handling: missing / malformed / empty compilation
    databases exit 2 with a diagnostic, and a valid database with no
    libclang exits 77 (the ctest SKIP_RETURN_CODE) -- in that order, so
    database problems are reported even where clang is absent.
  * The shrink-only baseline contract (stale entries, headroom).
  * Inline-escape filtering and dead-escape detection.
  * The per-TU content-hash cache: hit/miss accounting, dependency and
    salt invalidation, corrupt-entry recovery, and a measured re-run
    speedup with a simulated parse cost.
  * The phase-2 dataflow rules A6-A10 over synthetic summaries.
  * The A11-A15 taint rules: propagation over >=2 call hops,
    sanitizer laundering, guard-kind/order credit, and trust.json
    source/scope filtering.
  * tools/analyze_diff.py growth detection.

Exit codes: 0 all pass, 1 any failure.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import traceback

HERE = os.path.dirname(os.path.abspath(__file__))
PKG = os.path.dirname(HERE)
REPO = os.path.dirname(os.path.dirname(PKG))
sys.path.insert(0, PKG)

import engine
import summary
import xtu
from cache import TuCache

CLI = os.path.join(PKG, "zka_analyze.py")
ANALYZE_DIFF = os.path.join(REPO, "tools", "analyze_diff.py")

# Forces clang_loader to find nothing, making exit codes deterministic
# on machines that do have libclang.
NO_CLANG_ENV = dict(os.environ, ZKA_LIBCLANG="/nonexistent")


def run_cli(*args, env=NO_CLANG_ENV):
    return subprocess.run(
        [sys.executable, CLI, *args], capture_output=True, text=True, env=env
    )


# ---------------------------------------------------------------------------
# Synthetic-summary helpers for the phase-2 tests


def mk_summary(name, path="src/x/y.cpp", entry=None, **facts_over):
    facts = summary.new_facts()
    for key, value in facts_over.items():
        facts[key] = value
    return {
        "usr": f"c:@{name}",
        "name": name,
        "path": path,
        "line": 1,
        "entry": entry,
        "facts": facts,
    }


def index_of(*summaries):
    return {s["usr"]: s for s in summaries}


def mk_call(name, line=2, off=20, lambdas=None, args=None):
    entry = {"usr": f"c:@{name}", "name": name, "line": line, "off": off}
    if lambdas is not None:
        entry["lambdas"] = lambdas
    if args is not None:
        entry["args"] = args
    return entry


def mk_alloc(line=10, off=100, what="push_back()", recv=None):
    return {"line": line, "off": off, "what": what, "recv": recv}


def mk_sink(kind, keys, line=10, off=100, what="sink"):
    return {"kind": kind, "keys": keys, "line": line, "off": off, "what": what}


def findings_for(summaries, config=None, only=None, trust=None):
    return xtu.run_xtu_rules(summaries, config, only=only, trust=trust)


# ---------------------------------------------------------------------------
# CLI environment tests


def test_cli_missing_compile_commands():
    r = run_cli("--compile-commands", "/nonexistent/compile_commands.json")
    assert r.returncode == engine.EXIT_ENV, r
    assert "not found" in r.stderr, r.stderr


def test_cli_malformed_compile_commands():
    with tempfile.TemporaryDirectory() as tmp:
        cc = os.path.join(tmp, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as fh:
            fh.write("{this is not json")
        r = run_cli("--compile-commands", cc)
    assert r.returncode == engine.EXIT_ENV, r
    assert "bad compilation database" in r.stderr, r.stderr


def test_cli_mistyped_compile_commands():
    with tempfile.TemporaryDirectory() as tmp:
        cc = os.path.join(tmp, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as fh:
            json.dump(["not", "objects"], fh)
        r = run_cli("--compile-commands", cc)
    assert r.returncode == engine.EXIT_ENV, r
    assert "bad compilation database" in r.stderr, r.stderr


def test_cli_no_analyzable_tus():
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "outside.cpp")
        open(src, "w", encoding="utf-8").close()
        cc = os.path.join(tmp, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as fh:
            json.dump(
                [{"directory": tmp, "file": src, "command": f"c++ -c {src}"}], fh
            )
        r = run_cli("--compile-commands", cc)
    assert r.returncode == engine.EXIT_ENV, r
    assert "no analyzable translation units" in r.stderr, r.stderr


def test_cli_skips_without_libclang():
    # A perfectly good database must still reach the libclang probe and
    # exit 77 (ctest SKIP_RETURN_CODE), never 2.
    tu = os.path.join(REPO, "src", "fl", "simulation.cpp")
    assert os.path.exists(tu), tu
    with tempfile.TemporaryDirectory() as tmp:
        cc = os.path.join(tmp, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as fh:
            json.dump(
                [
                    {
                        "directory": REPO,
                        "file": tu,
                        "command": f"c++ -std=c++20 -c {tu}",
                    }
                ],
                fh,
            )
        r = run_cli("--compile-commands", cc)
    assert r.returncode == engine.EXIT_SKIP, r
    assert "libclang unavailable" in r.stderr, r.stderr


# ---------------------------------------------------------------------------
# Baseline contract


def test_baseline_stale_entry_detected():
    entries = [
        engine.BaselineEntry("src/a.cpp", "A3", "*", 2, lineno=1),
        engine.BaselineEntry("src/b.cpp", "A3", "*", 1, lineno=2),
    ]
    finding = engine.Finding(path="src/a.cpp", line=4, rule="A3", message="m")
    remaining, stale = engine.apply_baseline([finding], entries)
    assert remaining == []
    # The b.cpp entry absorbed nothing: the finding it grandfathered is
    # gone, so strict mode must force the baseline to shrink.
    assert stale == [entries[1]], stale


def test_baseline_headroom_is_a_ceiling():
    entries = [engine.BaselineEntry("src/a.cpp", "A3", "*", 1, lineno=1)]
    findings = [
        engine.Finding(path="src/a.cpp", line=n, rule="A3", message="m")
        for n in (4, 5)
    ]
    remaining, stale = engine.apply_baseline(findings, entries)
    assert len(remaining) == 1 and remaining[0].line == 5, remaining
    assert stale == []


def test_inline_escape_and_dead_escape():
    lines = [
        "int x;  // zka-lint: allow(A6) -- justified",
        "int y;",
        "// zka-lint: allow(A7) -- dead",
    ]

    def provider(path):
        return lines if path == "src/a.cpp" else None

    findings = [engine.Finding(path="src/a.cpp", line=1, rule="A6", message="m")]
    kept, used = engine.filter_allows(findings, provider)
    assert kept == [] and used == {("src/a.cpp", 0)}
    unused = engine.find_unused_allows(
        ["src/a.cpp"], provider, used, {"A6", "A7"}
    )
    assert unused == ["src/a.cpp:3: unused escape allow(A7)"], unused


# ---------------------------------------------------------------------------
# TU cache


def _cache_cmd(path):
    return engine.CompileCommand(file=path, directory=".", args=["-std=c++20"])


def test_cache_hit_miss_and_invalidation():
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "a.cpp")
        hdr = os.path.join(tmp, "a.h")
        for p in (src, hdr):
            with open(p, "w", encoding="utf-8") as fh:
                fh.write("// v1\n")
        calls = []

        def compute(cmd):
            calls.append(cmd.file)
            return {"findings": [], "summaries": {}, "deps": [src, hdr]}

        cache_dir = os.path.join(tmp, "cache")
        cache = TuCache(cache_dir, salt="s1")
        cmd = _cache_cmd(src)
        cache.get_or_compute(cmd, compute)
        cache.get_or_compute(cmd, compute)
        assert (cache.hits, cache.misses) == (1, 1), (cache.hits, cache.misses)
        assert len(calls) == 1

        # Touching a transitive dependency invalidates the entry.
        with open(hdr, "w", encoding="utf-8") as fh:
            fh.write("// v2\n")
        cache.get_or_compute(cmd, compute)
        assert len(calls) == 2

        # A different analyzer salt invalidates everything.
        cache2 = TuCache(cache_dir, salt="s2")
        cache2.get_or_compute(cmd, compute)
        assert len(calls) == 3 and cache2.misses == 1

        # Corrupt entries are treated as misses, never errors.
        for name in os.listdir(cache_dir):
            with open(os.path.join(cache_dir, name), "w", encoding="utf-8") as fh:
                fh.write("garbage")
        cache3 = TuCache(cache_dir, salt="s2")
        cache3.get_or_compute(cmd, compute)
        assert len(calls) == 4 and cache3.misses == 1


def test_cache_rerun_speedup():
    # Simulate the dominant phase-1 parse cost and demand a real speedup
    # on an unchanged tree (the acceptance criterion for the index cache).
    parse_cost_s = 0.02
    n_tus = 5
    with tempfile.TemporaryDirectory() as tmp:
        files = []
        for i in range(n_tus):
            path = os.path.join(tmp, f"tu{i}.cpp")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(f"// tu {i}\n")
            files.append(path)

        def compute(cmd):
            time.sleep(parse_cost_s)
            return {"findings": [], "summaries": {}, "deps": [cmd.file]}

        cache = TuCache(os.path.join(tmp, "cache"), salt="s")
        t0 = time.monotonic()
        for path in files:
            cache.get_or_compute(_cache_cmd(path), compute)
        cold = time.monotonic() - t0
        t1 = time.monotonic()
        for path in files:
            cache.get_or_compute(_cache_cmd(path), compute)
        warm = time.monotonic() - t1
    assert cache.hits == n_tus and cache.misses == n_tus
    assert warm < cold, (warm, cold)
    print(
        f"    cache re-run speedup: cold {cold * 1000:.0f}ms -> "
        f"warm {warm * 1000:.0f}ms ({cold / max(warm, 1e-9):.1f}x)"
    )


# ---------------------------------------------------------------------------
# Phase-2 dataflow rules on synthetic summaries


def test_a6_alloc_in_parallel_body():
    body = summary.new_facts()
    body["allocs"].append(mk_alloc(line=12))
    root = mk_summary("caller", parallel_bodies=[{"line": 5, "facts": body}])
    found = findings_for(index_of(root), only=["A6"])
    assert [(f.rule, f.line) for f in found] == [("A6", 12)], found


def test_a6_alloc_through_call_chain_and_boundary():
    body = summary.new_facts()
    body["calls"].append(mk_call("helper"))
    root = mk_summary("caller", parallel_bodies=[{"line": 5, "facts": body}])
    helper = mk_summary("helper", allocs=[mk_alloc(line=30)])
    found = findings_for(index_of(root, helper), only=["A6"])
    assert [(f.rule, f.line) for f in found] == [("A6", 30)], found
    assert "caller -> helper" in found[0].message, found[0].message
    # A configured boundary stops the walk.
    config = {"boundaries": [{"function": "helper"}]}
    assert findings_for(index_of(root, helper), config, only=["A6"]) == []


def test_a6_wrapper_lambda_roots():
    # A lambda handed to a function that runs its callable parameter in
    # parallel (for_each_row style) is a parallel root.
    lam = summary.new_facts()
    lam["allocs"].append(mk_alloc(line=40))
    wrapper = mk_summary("for_each_row", parallel_params=["c:@p"])
    caller = mk_summary("pairwise", calls=[mk_call("for_each_row", lambdas=[lam])])
    found = findings_for(index_of(wrapper, caller), only=["A6"])
    assert [(f.rule, f.line) for f in found] == [("A6", 40)], found


def test_a6_reserve_dominates_growth():
    body = summary.new_facts()
    body["reserves"].append({"recv": "c:@v", "off": 50})
    body["allocs"].append(mk_alloc(line=12, off=90, recv="c:@v"))
    body["allocs"].append(mk_alloc(line=3, off=10, recv="c:@v", what="early"))
    root = mk_summary("caller", parallel_bodies=[{"line": 5, "facts": body}])
    found = findings_for(index_of(root), only=["A6"])
    # Only the growth *before* the reserve survives.
    assert [(f.line, f.rule) for f in found] == [(3, "A6")], found


def test_a6_hot_root_flags_only_loop_allocs():
    run = mk_summary(
        "zka::fl::Simulation::run",
        allocs=[
            mk_alloc(line=3, off=30, what="setup"),
            mk_alloc(line=12, off=150, what="per-round"),
        ],
        loops=[{"start": 100, "end": 300}],
    )
    config = {"hot_roots": [{"function": "zka::fl::Simulation::run"}]}
    found = findings_for(index_of(run), config, only=["A6"])
    assert [(f.line, f.rule) for f in found] == [(12, "A6")], found


def test_a6_transitive_hot_root_follows_loop_calls_only():
    run = mk_summary(
        "run",
        calls=[mk_call("pre", off=30), mk_call("per_round", off=150)],
        loops=[{"start": 100, "end": 300}],
    )
    pre = mk_summary("pre", allocs=[mk_alloc(line=7)])
    per_round = mk_summary("per_round", allocs=[mk_alloc(line=9)])
    config = {"hot_roots": [{"function": "run", "transitive": True}]}
    found = findings_for(index_of(run, pre, per_round), config, only=["A6"])
    assert [(f.line, f.rule) for f in found] == [(9, "A6")], found


def test_a7_shared_draw_and_rng_self_exemption():
    body = summary.new_facts()
    body["rng_draws"].append({"line": 8, "obj": "rng", "kind": "outer"})
    body["calls"].append(mk_call("zka::util::Rng::normal"))
    root = mk_summary("caller", parallel_bodies=[{"line": 5, "facts": body}])
    rng_impl = mk_summary(
        "zka::util::Rng::normal",
        rng_draws=[{"line": 99, "obj": "this", "kind": "member"}],
    )
    found = findings_for(index_of(root, rng_impl), only=["A7"])
    # The body's own shared draw fires; Rng's internal self-draw does not.
    assert [(f.rule, f.line) for f in found] == [("A7", 8)], found


def test_a8_ret_view_and_view_store():
    s = mk_summary(
        "leaky",
        ret_views=[{"line": 4, "what": "buf"}],
        view_stores=[{"line": 9, "what": "update"}],
    )
    found = findings_for(index_of(s), only=["A8"])
    assert sorted((f.rule, f.line) for f in found) == [("A8", 4), ("A8", 9)]


def test_a9_unguarded_stream_and_propagation():
    unguarded = mk_summary(
        "drive_bad",
        stream_calls=[{"kind": "stream_update", "line": 3, "off": 30}],
    )
    found = findings_for(index_of(unguarded), only=["A9"])
    assert [(f.rule, f.line) for f in found] == [("A9", 3)], found

    # Through a callee: reported at the zero-caller entry, not interior.
    interior = mk_summary(
        "push_one",
        stream_calls=[{"kind": "stream_update", "line": 3, "off": 30}],
    )
    outer = mk_summary("drive_outer", calls=[mk_call("push_one", line=7, off=70)])
    found = findings_for(index_of(interior, outer), only=["A9"])
    assert [(f.function, f.line) for f in found] == [("drive_outer", 7)], found


def test_a9_guarded_stream_is_clean():
    guarded = mk_summary(
        "drive_good",
        stream_calls=[
            {"kind": "begin_stream", "line": 2, "off": 10},
            {"kind": "stream_update", "line": 3, "off": 30},
            {"kind": "finish_stream", "line": 4, "off": 50},
        ],
    )
    assert findings_for(index_of(guarded), only=["A9"]) == []


def test_a9_finish_stream_unordered_fold():
    finish = mk_summary(
        "Mean::finish_stream", entry="finish_stream", calls=[mk_call("fold")]
    )
    fold = mk_summary("fold", unordered_iters=[{"line": 7}])
    found = findings_for(index_of(finish, fold), only=["A9"])
    assert [(f.rule, f.line) for f in found] == [("A9", 7)], found
    assert "hash-ordered" in found[0].message


def test_a10_entry_reach_only():
    agg = mk_summary("Mean::aggregate", entry="aggregate", calls=[mk_call("fold")])
    fold = mk_summary("fold", unordered_iters=[{"line": 7}])
    found = findings_for(index_of(agg, fold), only=["A10"])
    assert [(f.rule, f.line) for f in found] == [("A10", 7)], found
    # The same shape without an entry point is silent.
    plain = mk_summary("helper_caller", calls=[mk_call("fold")])
    assert findings_for(index_of(plain, fold), only=["A10"]) == []


# ---------------------------------------------------------------------------
# Taint rules A11-A15 on synthetic summaries (default trust: all params of
# aggregate/begin_stream/stream_update/stream_replay are sources, so are
# craft/reported_weight returns, everything is in sink scope)


def test_taint_source_to_sink_two_hops():
    # aggregate(updates) -> fold(rows) -> accum_row(row): the accumulation
    # sink is two call hops from the source, with no guard anywhere.
    agg = mk_summary(
        "Mean::aggregate",
        entry="aggregate",
        params=[{"usr": "c:@u", "name": "updates"}],
        calls=[mk_call("fold", args=[["c:@u"]])],
    )
    fold = mk_summary(
        "fold",
        params=[{"usr": "c:@fp", "name": "rows"}],
        calls=[mk_call("accum_row", args=[["c:@fp"]])],
    )
    accum = mk_summary(
        "accum_row",
        params=[{"usr": "c:@ar", "name": "row"}],
        sinks=[mk_sink("accum", ["c:@ar"], line=9, what="acc += row[i]")],
    )
    found = findings_for(index_of(agg, fold, accum), only=["A13"])
    assert [(f.rule, f.line, f.function) for f in found] == [
        ("A13", 9, "accum_row")
    ], found
    assert "param of Mean::aggregate" in found[0].message, found[0].message


def test_taint_sanitizer_kills_flow():
    # Handing the rows to a sanitize_* call before forwarding launders
    # them: nothing downstream of the call is tainted. A sanitizer's own
    # return key is clean by contract, too.
    agg = mk_summary(
        "Mean::aggregate",
        entry="aggregate",
        params=[{"usr": "c:@u", "name": "updates"}],
        sanitize_calls=[{"name": "sanitize_rows", "keys": ["c:@u"], "off": 10}],
        calls=[mk_call("accum_row", off=20, args=[["c:@u"]])],
    )
    accum = mk_summary(
        "accum_row",
        params=[{"usr": "c:@ar", "name": "row"}],
        sinks=[
            mk_sink("accum", ["c:@ar"], line=9),
            mk_sink("accum", ["ret:zka::defense::sanitize::Ingress::admit_updates"]),
        ],
    )
    assert findings_for(index_of(agg, accum), only=["A13"]) == []
    # The same shape with the sanitize call AFTER the forwarding call
    # does not help: the callee already has the dirty copy.
    agg_late = mk_summary(
        "Mean::aggregate",
        entry="aggregate",
        params=[{"usr": "c:@u", "name": "updates"}],
        sanitize_calls=[{"name": "sanitize_rows", "keys": ["c:@u"], "off": 30}],
        calls=[mk_call("accum_row", off=20, args=[["c:@u"]])],
    )
    found = findings_for(index_of(agg_late, accum), only=["A13"])
    assert [(f.rule, f.line) for f in found] == [("A13", 9)], found


def test_taint_sanitize_call_own_arguments_stay_raw():
    # The extractor records the kill and the call edge of one sanitizer
    # call at the SAME offset; the kill is strict, so the sanitizer's own
    # params still receive the dirty values (that is its job, and the only
    # way taint reaches a sanitizer body for A15), while a caller-side
    # sink after the call is clean.
    agg = mk_summary(
        "Mean::aggregate",
        entry="aggregate",
        params=[{"usr": "c:@u", "name": "updates"}],
        sanitize_calls=[{"name": "validate_rows", "keys": ["c:@u"], "off": 20}],
        calls=[mk_call("validate_rows", off=20, args=[["c:@u"]])],
        sinks=[mk_sink("accum", ["c:@u"], line=12, off=90)],
    )
    san = mk_summary(
        "validate_rows",
        params=[{"usr": "c:@vr", "name": "rows"}],
        sinks=[mk_sink("div", ["c:@vr"], line=31, off=40)],
    )
    found = findings_for(index_of(agg, san), only=["A12", "A13"])
    assert [(f.rule, f.line) for f in found] == [("A12", 31)], found


def test_taint_guard_component_and_order():
    # A dominating check on any flow-related key guards the sink; a check
    # after the sink, or on an unrelated key, does not.
    def agg(guards):
        return mk_summary(
            "WMean::aggregate",
            entry="aggregate",
            params=[{"usr": "c:@w", "name": "weights"}],
            flows=[{"dst": "c:@total", "srcs": ["c:@w"], "off": 40}],
            guards=guards,
            sinks=[mk_sink("div", ["c:@total"], line=8, off=100, what="sum / total")],
        )

    bare = findings_for(index_of(agg([])), only=["A12"])
    assert [(f.rule, f.line) for f in bare] == [("A12", 8)], bare
    # Guarding the *source* credits the whole flow component.
    guarded = agg([{"kinds": ["check"], "keys": ["c:@w"], "off": 50}])
    assert findings_for(index_of(guarded), only=["A12"]) == []
    late = agg([{"kinds": ["check"], "keys": ["c:@total"], "off": 150}])
    assert len(findings_for(index_of(late), only=["A12"])) == 1
    other = agg([{"kinds": ["check"], "keys": ["c:@other"], "off": 50}])
    assert len(findings_for(index_of(other), only=["A12"])) == 1


def test_taint_alloc_index_and_loop_bound():
    s = mk_summary(
        "Coord::stream_update",
        entry="stream_update",
        params=[{"usr": "c:@n", "name": "update"}],
        sinks=[
            mk_sink("alloc", ["c:@n"], line=5, what="resize()"),
            mk_sink("index", ["c:@n"], line=6, what="operator[]"),
            mk_sink("loop_bound", ["c:@n"], line=7, what="loop bound"),
        ],
    )
    found = findings_for(index_of(s), only=["A11", "A14"])
    assert sorted((f.rule, f.line) for f in found) == [
        ("A11", 5),
        ("A14", 6),
        ("A14", 7),
    ], found
    # A finite guard is the wrong kind for range sinks -- still flagged.
    s["facts"]["guards"] = [{"kinds": ["check", "finite"], "keys": ["c:@n"], "off": 1}]
    assert findings_for(index_of(s), only=["A11", "A14"]) == []


def test_taint_craft_return_source():
    # A virtual-dispatch call of Attack::craft has no callee summary; the
    # ret: key itself is a configured source.
    sim = mk_summary(
        "run_round",
        path="src/fl/simulation.cpp",
        flows=[{"dst": "c:@upd", "srcs": ["ret:zka::attack::Flip::craft"], "off": 10}],
        sinks=[mk_sink("accum", ["c:@upd"], line=12, what="axpy()")],
    )
    found = findings_for(index_of(sim), only=["A13"])
    assert [(f.rule, f.line) for f in found] == [("A13", 12)], found
    assert "return of zka::attack::Flip::craft" in found[0].message


def test_taint_a15_partial_sanitizer():
    # validate_updates checks `updates` but forwards `weights` unchecked:
    # taint laundering on the weights parameter only.
    agg = mk_summary(
        "Mean::aggregate",
        entry="aggregate",
        params=[{"usr": "c:@u", "name": "updates"}, {"usr": "c:@w", "name": "weights"}],
        calls=[
            mk_call("zka::defense::validate_updates", args=[["c:@u"], ["c:@w"]])
        ],
    )
    san = mk_summary(
        "zka::defense::validate_updates",
        params=[
            {"usr": "c:@vu", "name": "updates"},
            {"usr": "c:@vw", "name": "weights"},
        ],
        guards=[{"kinds": ["check"], "keys": ["c:@vu"], "off": 5}],
        calls=[mk_call("impl", off=30, args=[["c:@vu"], ["c:@vw"]])],
    )
    found = findings_for(index_of(agg, san), only=["A15"])
    assert [(f.rule, f.function) for f in found] == [
        ("A15", "zka::defense::validate_updates")
    ], found
    assert "'weights'" in found[0].message, found[0].message
    # Checking the second parameter too clears the finding.
    san["facts"]["guards"].append({"kinds": ["check"], "keys": ["c:@vw"], "off": 6})
    assert findings_for(index_of(agg, san), only=["A15"]) == []


def test_taint_trust_config_filters():
    # An explicit trust config narrows begin_stream's sources to the named
    # parameter and restricts sinks to the include scope.
    trust = {
        "sources": [
            {"entry": "begin_stream", "what": "params", "params": ["weights"]}
        ],
        "sanitizers": [],
        "sink_scope": {"include": ["src/defense/"], "exclude": []},
    }
    server = mk_summary(
        "Mean::begin_stream",
        entry="begin_stream",
        path="src/defense/mean.cpp",
        params=[{"usr": "c:@w", "name": "weights"}, {"usr": "c:@d", "name": "dim"}],
        sinks=[
            mk_sink("alloc", ["c:@d"], line=4, what="resize()"),
            mk_sink("accum", ["c:@w"], line=5, what="w_sum +="),
        ],
    )
    harness = mk_summary(
        "drive",
        path="tests/test_x.cpp",
        entry="begin_stream",
        params=[{"usr": "c:@hw", "name": "weights"}],
        sinks=[mk_sink("accum", ["c:@hw"], line=9)],
    )
    found = findings_for(index_of(server, harness), trust=trust)
    # dim is server-derived (not a source) and the tests/ sink is out of
    # scope: only the weight accumulation fires.
    assert [(f.rule, f.line, f.path) for f in found] == [
        ("A13", 5, "src/defense/mean.cpp")
    ], found


# ---------------------------------------------------------------------------
# analyze_diff


def _diff_payload(per_rule):
    return {"findings": [], "per_rule": per_rule}


def test_analyze_diff_growth_fails():
    with tempfile.TemporaryDirectory() as tmp:
        prev = os.path.join(tmp, "prev.json")
        cur = os.path.join(tmp, "cur.json")
        with open(prev, "w", encoding="utf-8") as fh:
            json.dump(_diff_payload({"A6": {"found": 1, "remaining": 0}}), fh)
        with open(cur, "w", encoding="utf-8") as fh:
            json.dump(_diff_payload({"A6": {"found": 2, "remaining": 0}}), fh)
        grow = subprocess.run(
            [sys.executable, ANALYZE_DIFF, prev, cur],
            capture_output=True,
            text=True,
        )
        assert grow.returncode == 1, grow
        assert "REGRESSION" in grow.stdout, grow.stdout
        shrink = subprocess.run(
            [sys.executable, ANALYZE_DIFF, cur, prev],
            capture_output=True,
            text=True,
        )
        assert shrink.returncode == 0, shrink
        first_run = subprocess.run(
            [
                sys.executable,
                ANALYZE_DIFF,
                os.path.join(tmp, "absent.json"),
                cur,
                "--missing-ok",
            ],
            capture_output=True,
            text=True,
        )
        assert first_run.returncode == 0, first_run


# ---------------------------------------------------------------------------


def main() -> int:
    tests = [
        (name, fn)
        for name, fn in sorted(globals().items())
        if name.startswith("test_") and callable(fn)
    ]
    failed = 0
    for name, fn in tests:
        try:
            fn()
        except Exception:  # noqa: BLE001 -- report and keep going
            failed += 1
            print(f"FAIL {name}")
            traceback.print_exc()
        else:
            print(f"PASS {name}")
    print(f"test_pure: {len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
