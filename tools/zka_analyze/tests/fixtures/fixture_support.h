// Minimal stand-ins for the repo types the A-rules key on, so fixtures
// parse standalone (no repo include paths, no gtest). Only names and
// signatures matter to the analyzer; nothing here is ever linked.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace zka::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  std::uint64_t operator()();
  Rng split(std::uint64_t salt) const;
  double uniform();
  double uniform(double lo, double hi);
  std::size_t uniform_index(std::size_t n);
  double normal();
  double normal(double mean, double stddev);
};

}  // namespace zka::util

namespace zka::tensor {

class Tensor {
 public:
  float* raw() noexcept;
  const float* raw() const noexcept;
  std::span<float> data() noexcept;
  std::span<const float> data() const noexcept;
};

}  // namespace zka::tensor

namespace zka::defense {

using Update = std::vector<float>;
using UpdateView = std::span<const float>;

struct AggregationResult {
  std::vector<float> model;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual AggregationResult aggregate(
      std::span<const UpdateView> updates,
      std::span<const std::int64_t> weights) = 0;
  virtual bool supports_streaming() const noexcept;
  virtual void begin_stream(std::size_t dim,
                            std::span<const std::int64_t> weights);
  virtual void stream_update(UpdateView update);
  virtual AggregationResult finish_stream();
};

void validate_updates(std::span<const UpdateView> updates,
                      std::span<const std::int64_t> weights);

}  // namespace zka::defense

namespace zka::attack {

using Update = std::vector<float>;

struct AttackContext {
  std::span<const float> global_model;
};

class Attack {
 public:
  virtual ~Attack() = default;
  virtual Update craft(const AttackContext& ctx) = 0;
};

void validate_context(const Attack& attack, const AttackContext& ctx);

}  // namespace zka::attack
