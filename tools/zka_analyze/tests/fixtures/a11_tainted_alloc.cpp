// zka-fixture-path: src/fixture/a11_tainted_alloc.cpp
// A11 positive + negative: allocation sizes fed from entry-point values
// (attacker-controlled under trust.json defaults) vs sizes bounded by a
// dominating check. One declared weight of INT64_MAX must not become a
// 9-exabyte resize.
#include "fixture_support.h"

namespace zka::defense {

constexpr std::size_t kMaxClients = 4096;

class BadSizer : public Aggregator {
 public:
  void begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override {
    (void)dim;
    const std::size_t hint = static_cast<std::size_t>(weights[0]);
    buf_.resize(hint);  // expect: A11
    std::vector<float> scratch(hint, 0.0f);  // expect: A11
    (void)scratch;
  }

 private:
  std::vector<float> buf_;
};

class GoodSizer : public Aggregator {
 public:
  void begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override {
    (void)dim;
    const std::size_t hint = static_cast<std::size_t>(weights[0]);
    if (hint > kMaxClients) {
      return;
    }
    buf_.resize(hint);  // bounded by the dominating check: fine
  }

 private:
  std::vector<float> buf_;
};

}  // namespace zka::defense
