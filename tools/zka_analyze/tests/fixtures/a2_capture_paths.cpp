// zka-fixture-path: src/fixture/a2_capture_paths.cpp
// A2 capture-path positive + negative: mutation through captured object
// members, captured `this`, and captured pointers. The original rule
// only saw direct variable references; per-index subscript stores and
// atomics stay sanctioned.
#include "fixture_support.h"

struct Stats {
  int hits = 0;
  std::vector<int> slots;
};

void bad_captured_member(zka::util::ThreadPool& pool, std::size_t n) {
  Stats st;
  st.slots.resize(n);
  pool.parallel_for(n, [&](std::size_t i) {
    st.hits += static_cast<int>(i);  // expect: A2
    st.slots[i] = 1;                 // per-index slot: fine
  });
}

void bad_captured_pointer(zka::util::ThreadPool& pool, int* shared) {
  pool.parallel_for(8, [&](std::size_t) {
    *shared += 1;  // expect: A2
  });
}

class Accumulator {
 public:
  void bad_captured_this(zka::util::ThreadPool& pool, std::size_t n) {
    pool.parallel_for(n, [&](std::size_t i) {
      count_ += static_cast<int>(i);  // expect: A2
    });
  }

  void good_atomic_member(zka::util::ThreadPool& pool, std::size_t n) {
    pool.parallel_for(n, [&](std::size_t) {
      ticks_.fetch_add(1);  // atomic member: fine
    });
  }

 private:
  int count_ = 0;
  std::atomic<int> ticks_{0};
};

void good_local_struct(zka::util::ThreadPool& pool) {
  pool.parallel_for(4, [&](std::size_t) {
    Stats local;
    local.hits += 1;  // lambda-local object: fine
    (void)local;
  });
}
