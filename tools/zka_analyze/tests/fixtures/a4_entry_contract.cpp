// zka-fixture-path: src/fixture/a4_entry_contract.cpp
// A4 positive + negative: aggregate/craft overrides with and without a
// contract call in the body.
#include "fixture_support.h"

namespace zka::defense {

class UncheckedMean : public Aggregator {
 public:
  AggregationResult aggregate(  // expect: A4
      std::span<const UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    (void)updates;
    (void)weights;
    return {};
  }
};

class CheckedMean : public Aggregator {
 public:
  AggregationResult aggregate(
      std::span<const UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    validate_updates(updates, weights);
    return {};
  }
};

}  // namespace zka::defense

namespace zka::attack {

class UncheckedNoise : public Attack {
 public:
  Update craft(const AttackContext& ctx) override {  // expect: A4
    (void)ctx;
    return {};
  }
};

class CheckedNoise : public Attack {
 public:
  Update craft(const AttackContext& ctx) override {
    validate_context(*this, ctx);
    return {};
  }
};

}  // namespace zka::attack
