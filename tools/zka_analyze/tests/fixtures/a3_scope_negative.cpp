// zka-fixture-path: src/tensor/fixture_internal.cpp
// A3 scope negative: src/tensor/ owns the raw storage layout, so the
// same arithmetic inside it is exempt.
#include "fixture_support.h"

float internal_offset_read(const zka::tensor::Tensor& t, std::size_t row,
                           std::size_t cols) {
  const float* p = t.raw() + row * cols;
  return p[0];
}
