// zka-fixture-path: src/fixture/a5_unordered.cpp
// A5 positive + negative: range-for over unordered containers vs a
// deterministically ordered one.
#include "fixture_support.h"

int bad_map_sum(const std::unordered_map<int, int>& m) {
  int s = 0;
  for (const auto& kv : m) {  // expect: A5
    s += kv.second;
  }
  return s;
}

int bad_set_sum(const std::unordered_set<int>& keys) {
  int s = 0;
  for (int k : keys) {  // expect: A5
    s += k;
  }
  return s;
}

int good_vector_sum(const std::vector<int>& v) {
  int s = 0;
  for (int x : v) {
    s += x;
  }
  return s;
}
