// zka-fixture-path: tests/fixture/a1_scope_negative.cpp
// A1 scope negative: the same mixed-precision code outside src/ is not
// flagged -- tests/bench trade strictness for convenience, and the
// -Wdouble-promotion build flags only cover src/ as well.
#include "fixture_support.h"

double loose_accumulate(const float* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += xs[i];
  }
  return acc;
}
