// zka-fixture-path: src/fixture/a14_tainted_index.cpp
// A14 positive + negative: attacker-influenced values used as container
// indexes or loop bounds without a dominating bounds check vs the
// checked forms. An out-of-range slot is an out-of-bounds write; a
// tainted trip count is unbounded server work.
#include "fixture_support.h"

namespace zka::defense {

class BadRouter : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    table_[static_cast<std::size_t>(update[0])] = 1.0f;  // expect: A14
  }

  void begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override {
    (void)dim;
    const std::size_t rounds = static_cast<std::size_t>(weights[0]);
    for (std::size_t r = 0; r < rounds; ++r) {  // expect: A14
      ticks_ += 1.0f;
    }
  }

 private:
  std::vector<float> table_;
  float ticks_ = 0.0f;
};

class GoodRouter : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    const std::size_t slot = static_cast<std::size_t>(update[0]);
    if (slot >= table_.size()) {
      return;
    }
    table_[slot] = 1.0f;  // bounds-checked slot: fine
  }

 private:
  std::vector<float> table_;
};

}  // namespace zka::defense
