// zka-fixture-path: src/fixture/a2_parallel_mutation.cpp
// A2 positive + negative: parallel_for shares one closure across all
// workers, so mutating a captured non-atomic variable races.
#include "fixture_support.h"

void bad_shared_counter(zka::util::ThreadPool& pool, int n) {
  int total = 0;
  pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    total += static_cast<int>(i);  // expect: A2
  });
  (void)total;
}

void bad_shared_increment(zka::util::ThreadPool& pool) {
  std::size_t hits = 0;
  pool.parallel_for(4, [&](std::size_t) { ++hits; });  // expect: A2
  (void)hits;
}

void good_patterns(zka::util::ThreadPool& pool) {
  std::atomic<int> total{0};
  std::vector<int> slots(8, 0);
  pool.parallel_for(8, [&](std::size_t i) {
    total.fetch_add(1);           // atomic: fine
    slots[i] = static_cast<int>(i);  // per-index slot: fine
    int local = 0;                // lambda-local: fine
    ++local;
    local += 2;
    (void)local;
  });
}
