// zka-fixture-path: src/fixture/a6_hot_alloc.cpp
// zka-fixture-hot-root: run_rounds
// A6 positive + negative: heap allocation reachable from a parallel body
// (directly and through a callee) and per-iteration allocation inside a
// configured hot loop, vs hoisted/reserved/caller-owned buffers.
#include "fixture_support.h"

namespace {

void append_sample(std::vector<float>& out, float x) {
  out.push_back(x);  // expect: A6
}

}  // namespace

void bad_alloc_in_parallel_body(zka::util::ThreadPool& pool, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t i) {
    std::vector<float> tmp(i + 1, 0.0f);  // expect: A6
    (void)tmp;
  });
}

void bad_alloc_through_callee(zka::util::ThreadPool& pool,
                              std::vector<std::vector<float>>& rows) {
  pool.parallel_for(rows.size(), [&](std::size_t i) {
    append_sample(rows[i], 1.0f);
  });
}

float run_rounds(std::size_t rounds) {
  float acc = 0.0f;
  std::vector<float> hoisted;  // one-time setup: fine
  hoisted.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<float> scratch(r + 1, 0.0f);  // expect: A6
    hoisted.push_back(scratch[0]);  // dominated by the reserve above: fine
    acc += hoisted[r];
  }
  return acc;
}

void good_preallocated(zka::util::ThreadPool& pool, std::vector<float>& out) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<float>(i);  // caller-owned slot: fine
  });
}
