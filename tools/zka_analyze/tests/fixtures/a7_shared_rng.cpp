// zka-fixture-path: src/fixture/a7_shared_rng.cpp
// A7 positive + negative: a shared Rng drawn inside a parallel region
// (directly and through a callee) vs per-task generators from Rng::split
// or constructed inside the body.
#include "fixture_support.h"

namespace {

float draw_from(zka::util::Rng& rng) {
  return static_cast<float>(rng.uniform());  // expect: A7
}

}  // namespace

void bad_shared_draw(zka::util::ThreadPool& pool, std::vector<float>& out) {
  zka::util::Rng rng(42);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<float>(rng.normal());  // expect: A7
  });
}

void bad_draw_through_callee(zka::util::ThreadPool& pool,
                             std::vector<float>& out) {
  zka::util::Rng rng(7);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = draw_from(rng);
  });
}

void good_split_per_task(zka::util::ThreadPool& pool,
                         std::vector<float>& out) {
  zka::util::Rng rng(42);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    zka::util::Rng task_rng = rng.split(i);
    out[i] = static_cast<float>(task_rng.normal());  // split: fine
  });
}

void good_local_rng(zka::util::ThreadPool& pool, std::vector<float>& out) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    zka::util::Rng task_rng(1234 + i);
    out[i] = static_cast<float>(task_rng.uniform());  // body-local: fine
  });
}
