// zka-fixture-path: src/fixture/a15_taint_laundering.cpp
// A15 positive + negative: a validate_* function that forwards a tainted
// parameter it never checked vs one that checks everything it forwards.
// Callers treat the whole signature as clean once a sanitizer returns,
// so the skipped parameter is laundered, not cleaned.
#include "fixture_support.h"

namespace zka::defense {

void record_caps(std::span<const std::int64_t> weights, std::int64_t cap);

void validate_caps(std::span<const std::int64_t> weights,  // expect: A15
                   std::int64_t cap) {
  if (weights[0] < 0) {
    return;
  }
  record_caps(weights, cap);  // `cap` forwarded unchecked
}

void validate_caps_full(std::span<const std::int64_t> weights,
                        std::int64_t cap) {
  if (weights[0] < 0) {
    return;
  }
  if (cap <= 0) {
    return;
  }
  record_caps(weights, cap);  // every forwarded parameter checked: fine
}

class PartialGate : public Aggregator {
 public:
  void begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override {
    validate_caps(weights, static_cast<std::int64_t>(dim));
  }
};

class FullGate : public Aggregator {
 public:
  void begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override {
    validate_caps_full(weights, static_cast<std::int64_t>(dim));
  }
};

}  // namespace zka::defense
