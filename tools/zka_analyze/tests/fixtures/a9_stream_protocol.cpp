// zka-fixture-path: src/fixture/a9_stream_protocol.cpp
// A9 positive + negative: stream calls with no dominating begin_stream
// (directly and through a callee -- reported at the unguarded entry
// point), and a finish_stream implementation folding through
// hash-ordered state.
#include "fixture_support.h"

using zka::defense::AggregationResult;
using zka::defense::Aggregator;
using zka::defense::UpdateView;

namespace {

void push_one(Aggregator& agg, UpdateView u) {
  agg.stream_update(u);  // interior: reported at the unguarded caller
}

float fold_buckets(const std::unordered_map<int, float>& buckets) {
  float total = 0.0f;
  for (auto it = buckets.begin(); it != buckets.end(); ++it) {  // expect: A9
    total += it->second;
  }
  return total;
}

}  // namespace

void bad_unguarded_stream(Aggregator& agg, UpdateView u) {
  agg.stream_update(u);  // expect: A9
}

void bad_unguarded_through_callee(Aggregator& agg, UpdateView u) {
  push_one(agg, u);  // expect: A9
}

AggregationResult good_guarded_stream(
    Aggregator& agg, std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  agg.begin_stream(updates.empty() ? 0 : updates[0].size(), weights);
  for (const UpdateView& u : updates) {
    agg.stream_update(u);  // dominated by begin_stream: fine
  }
  return agg.finish_stream();
}

class BadFold : public Aggregator {
 public:
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override {
    zka::defense::validate_updates(updates, weights);
    return {};
  }
  AggregationResult finish_stream() override {
    AggregationResult r;
    r.model.push_back(fold_buckets(buckets_));
    return r;
  }

 private:
  std::unordered_map<int, float> buckets_;
};
