// zka-fixture-path: src/fixture/a10_transitive_unordered.cpp
// A10 positive + negative: hash-ordered iteration feeding an aggregation
// entry point through a callee. A5 only sees direct range-for loops;
// iterator loops over unordered containers reach aggregate() unseen
// without the transitive rule.
#include "fixture_support.h"

using zka::defense::AggregationResult;
using zka::defense::Aggregator;
using zka::defense::UpdateView;

namespace {

float sum_hashed(const std::unordered_map<int, float>& scores) {
  float total = 0.0f;
  for (auto it = scores.begin(); it != scores.end(); ++it) {  // expect: A10
    total += it->second;
  }
  return total;
}

float sum_ordered(const std::vector<float>& scores) {
  float total = 0.0f;
  for (float s : scores) total += s;
  return total;
}

}  // namespace

class BadHashedScores : public Aggregator {
 public:
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override {
    zka::defense::validate_updates(updates, weights);
    AggregationResult r;
    r.model.push_back(sum_hashed(scores_));
    return r;
  }

 private:
  std::unordered_map<int, float> scores_;
};

class GoodOrderedScores : public Aggregator {
 public:
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override {
    zka::defense::validate_updates(updates, weights);
    AggregationResult r;
    r.model.push_back(sum_ordered(scores_));
    return r;
  }

 private:
  std::vector<float> scores_;
};

float free_function_sums_hashed(const std::unordered_map<int, float>& m) {
  return sum_hashed(m);  // not an aggregation entry point: fine
}
