// zka-fixture-path: src/fixture/a1_mixed_precision.cpp
// A1 positive + negative: implicit float<->double moves vs explicit casts.
#include "fixture_support.h"

double bad_accumulate(const float* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += xs[i];  // expect: A1
  }
  return acc;
}

float bad_narrowing_init(double scale) {
  float s = scale;  // expect: A1
  return s;
}

bool bad_mixed_compare(float x) {
  double limit = 0.5;
  bool r = x < limit;  // expect: A1
  return r;
}

double good_accumulate(const float* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<double>(xs[i]);
  }
  return acc;
}

float good_narrowing_init(double scale) {
  float s = static_cast<float>(scale);
  return s;
}

bool good_compare(float x) {
  float limit = 0.5f;
  bool r = x < limit;
  return r;
}
