// zka-fixture-path: src/fixture/a12_tainted_denominator.cpp
// A12 positive + negative: dividing by attacker-influenced values (stream
// payload coordinates, attacker-reported weights) with no nonzero/positive
// guard vs the guarded forms. A zero denominator turns the weighted mean
// into Inf/NaN in one round.
#include "fixture_support.h"

namespace zka::attack {

class Sybil : public Attack {
 public:
  Update craft(const AttackContext& ctx) override {
    validate_context(*this, ctx);
    return {};
  }
  std::int64_t reported_weight(const AttackContext& ctx) const {
    (void)ctx;
    return 1;
  }
};

}  // namespace zka::attack

namespace zka::defense {

class BadNormalizer : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    sum_ /= update[0];  // expect: A12
  }

  double coefficient(const zka::attack::Sybil& sybil,
                     const zka::attack::AttackContext& ctx) {
    return total_ /
           static_cast<double>(sybil.reported_weight(ctx));  // expect: A12
  }

 private:
  float sum_ = 1.0f;
  double total_ = 1.0;
};

class GoodNormalizer : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    if (update[0] > 0.0f) {
      sum_ /= update[0];  // positive-guarded divide: fine
    }
  }

  double coefficient(const zka::attack::Sybil& sybil,
                     const zka::attack::AttackContext& ctx) {
    const std::int64_t w = sybil.reported_weight(ctx);
    if (w <= 0) {
      return 0.0;
    }
    return total_ / static_cast<double>(w);  // nonzero-guarded: fine
  }

 private:
  float sum_ = 1.0f;
  double total_ = 1.0;
};

}  // namespace zka::defense
