// zka-fixture-path: src/fixture/a3_raw_arith.cpp
// A3 positive + negative: raw pointer arithmetic on Tensor storage vs
// the bounds-checkable subspan slice.
#include "fixture_support.h"

float bad_offset_read(const zka::tensor::Tensor& t, std::size_t row,
                      std::size_t cols) {
  const float* p = t.raw() + row * cols;  // expect: A3
  return p[0];
}

float good_span_read(const zka::tensor::Tensor& t, std::size_t row,
                     std::size_t cols) {
  const std::span<const float> r = t.data().subspan(row * cols, cols);
  return r[0];
}
