// zka-fixture-path: src/fixture/allow_escape.cpp
// Suppression: an inline zka-lint escape on the preceding line absorbs
// the finding, so this fixture expects nothing.
#include "fixture_support.h"

float escaped_read(const zka::tensor::Tensor& t) {
  // zka-lint: allow(A3) -- fixture: escape must suppress the finding below
  const float* p = t.raw() + 4;
  return p[0];
}
