// zka-fixture-path: src/fixture/a8_span_escape.cpp
// A8 positive + negative: views that outlive the buffer backing them vs
// views into storage that survives the call.
#include "fixture_support.h"

const float* bad_pointer_into_local(std::size_t n) {
  std::vector<float> buf(n, 0.0f);
  return buf.data();  // expect: A8
}

class BadRetainer : public zka::defense::Aggregator {
 public:
  zka::defense::AggregationResult aggregate(
      std::span<const zka::defense::UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    zka::defense::validate_updates(updates, weights);
    return {};
  }
  void stream_update(zka::defense::UpdateView update) override {
    view_ = update;  // expect: A8
  }

 private:
  zka::defense::UpdateView view_;
};

const float* good_pointer_into_static(std::size_t n) {
  static std::vector<float> table(16, 0.0f);
  (void)n;
  return table.data();  // static storage survives the call: fine
}

class GoodCopier : public zka::defense::Aggregator {
 public:
  zka::defense::AggregationResult aggregate(
      std::span<const zka::defense::UpdateView> updates,
      std::span<const std::int64_t> weights) override {
    zka::defense::validate_updates(updates, weights);
    return {};
  }
  void stream_update(zka::defense::UpdateView update) override {
    own_.assign(update.begin(), update.end());  // owning copy: fine
  }

 private:
  std::vector<float> own_;
};
