// zka-fixture-path: src/fixture/a13_unsanitized_accum.cpp
// A13 positive + negative: folding stream payload floats into an
// accumulator (compound assignment and the reduce-toolkit primitives)
// with no isfinite sanitization vs the finite-guarded fold. One NaN
// coordinate poisons every coordinate the fold touches.
#include "fixture_support.h"

#include <cmath>

namespace zka::defense {

void axpy(float a, UpdateView x, std::span<float> y);

class BadFolder : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    for (std::size_t i = 0; i < update.size(); ++i) {
      total_ += update[i];  // expect: A13
    }
    axpy(update[0], update, std::span<float>(scratch_));  // expect: A13
  }

 private:
  float total_ = 0.0f;
  std::vector<float> scratch_;
};

class GoodFolder : public Aggregator {
 public:
  void stream_update(UpdateView update) override {
    for (std::size_t i = 0; i < update.size(); ++i) {
      if (std::isfinite(update[i])) {
        clean_ += update[i];  // finite-guarded fold: fine
      }
    }
  }

 private:
  float clean_ = 0.0f;
};

}  // namespace zka::defense
