// zka-fixture-path: src/fixture/baseline_suppress.cpp
// zka-fixture-baseline: src/fixture/baseline_suppress.cpp|A3|*|1
// Suppression: a baseline entry (declared above, consumed by the
// driver) absorbs the finding, so this fixture expects nothing.
#include "fixture_support.h"

float grandfathered_read(const zka::tensor::Tensor& t) {
  const float* p = t.raw() + 2;
  return p[0];
}
