#!/usr/bin/env python3
"""Fixture tests for the zka_analyze AST rules.

Each fixture under fixtures/ is a standalone C++20 file carrying its own
expectations:

    // zka-fixture-path: src/fixture/foo.cpp     virtual repo path (rules
                                                 scope on path prefixes)
    // zka-fixture-baseline: path|rule|fn|count  baseline entry to apply
    // zka-fixture-hot-root: ns::fn [transitive] hotpaths.json hot_roots
                                                 entry for A6
    // zka-fixture-boundary: ns::fn              hotpaths.json boundaries
                                                 entry (A6/A7 walk stops)
    some_code();  // expect: A3                  finding expected exactly
                                                 here, exactly this rule

The driver parses every fixture with libclang, runs the full single-TU
rule set (A1-A5) with the phase-1 summary extractor riding along, then
runs the cross-TU dataflow rules (A6-A10) over the extracted summaries,
applies inline-escape and declared-baseline suppression, and compares
the surviving {(line, rule)} set against the expectations -- pytest
style, one PASS/FAIL line per fixture.

Exit codes: 0 all pass, 1 any failure, 77 libclang unavailable (ctest
registers this as SKIP_RETURN_CODE).
"""

from __future__ import annotations

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
PKG = os.path.dirname(HERE)
sys.path.insert(0, PKG)

import engine
from clang_loader import load_cindex, resource_dir_args

REPO_ROOT = os.path.realpath(os.path.join(PKG, "..", ".."))

EXPECT_RE = re.compile(r"//\s*expect:\s*([A-Za-z0-9,\s]+?)\s*$")
VPATH_RE = re.compile(r"//\s*zka-fixture-path:\s*(\S+)")
BASELINE_RE = re.compile(r"//\s*zka-fixture-baseline:\s*(\S+)")
HOTROOT_RE = re.compile(r"//\s*zka-fixture-hot-root:\s*(\S+)(\s+transitive)?")
BOUNDARY_RE = re.compile(r"//\s*zka-fixture-boundary:\s*(\S+)")


def parse_fixture(path: str):
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    vpath = None
    expected = set()
    baseline_entries = []
    hot_config = {"hot_roots": [], "boundaries": []}
    for lineno, line in enumerate(lines, start=1):
        m = VPATH_RE.search(line)
        if m:
            vpath = m.group(1)
            continue
        m = HOTROOT_RE.search(line)
        if m:
            hot_config["hot_roots"].append(
                {"function": m.group(1), "transitive": bool(m.group(2))}
            )
            continue
        m = BOUNDARY_RE.search(line)
        if m:
            hot_config["boundaries"].append({"function": m.group(1)})
            continue
        m = BASELINE_RE.search(line)
        if m:
            parts = m.group(1).split("|")
            baseline_entries.append(
                engine.BaselineEntry(
                    path=parts[0],
                    rule=parts[1],
                    function=parts[2],
                    max_count=int(parts[3]),
                    lineno=lineno,
                )
            )
            continue
        m = EXPECT_RE.search(line)
        if m:
            for rule in re.split(r"[,\s]+", m.group(1)):
                if rule:
                    expected.add((lineno, rule))
    return lines, vpath, expected, baseline_entries, hot_config


def run_fixture(cindex, rules_mod, index, path: str):
    """Returns a list of failure messages (empty = pass)."""
    lines, vpath, expected, baseline_entries, hot_config = parse_fixture(path)
    if vpath is None:
        return ["missing '// zka-fixture-path:' header"]
    args = ["-x", "c++", "-std=c++20", "-I", os.path.dirname(path)]
    args += resource_dir_args()
    try:
        tu = engine.parse_tu(cindex, index, path, args)
    except engine.AnalysisError as exc:
        return [f"fixture failed to parse: {exc}"]
    scope = engine.Scope(REPO_ROOT, path_map={path: vpath}, restrict_to=[path])
    import summary as summary_mod
    import xtu

    extractor = summary_mod.SummaryExtractor(cindex, scope)
    findings = engine.run_rules(
        cindex, tu, scope, rules_mod.build_rules(cindex), extractor
    )
    findings += xtu.run_xtu_rules(extractor.summaries, hot_config)
    findings = engine.dedupe(findings)

    def provider(rel, _lines=lines, _vpath=vpath):
        return _lines if rel == _vpath else None

    findings, _used = engine.filter_allows(findings, provider)
    remaining, stale = engine.apply_baseline(findings, baseline_entries)

    got = {(f.line, f.rule) for f in remaining}
    failures = []
    for line, rule in sorted(expected - got):
        failures.append(f"expected [{rule}] at line {line}, not reported")
    for line, rule in sorted(got - expected):
        detail = next(
            f.message for f in remaining if (f.line, f.rule) == (line, rule)
        )
        failures.append(f"unexpected [{rule}] at line {line}: {detail}")
    for entry in stale:
        failures.append(f"declared baseline entry matched nothing: {entry.render()}")
    return failures


def main() -> int:
    cindex = load_cindex()
    if cindex is None:
        print(
            "run_fixture_tests: libclang unavailable; skipping", file=sys.stderr
        )
        return engine.EXIT_SKIP
    import rules as rules_mod

    sys.setrecursionlimit(100000)
    index = cindex.Index.create()
    fixtures_dir = os.path.join(HERE, "fixtures")
    names = sorted(
        n for n in os.listdir(fixtures_dir) if n.endswith(".cpp")
    )
    if not names:
        print("run_fixture_tests: no fixtures found", file=sys.stderr)
        return engine.EXIT_ENV

    failed = 0
    for name in names:
        failures = run_fixture(
            cindex, rules_mod, index, os.path.join(fixtures_dir, name)
        )
        if failures:
            failed += 1
            print(f"FAIL {name}")
            for message in failures:
                print(f"     {message}")
        else:
            print(f"PASS {name}")
    print(f"run_fixture_tests: {len(names) - failed}/{len(names)} passed")
    return engine.EXIT_FINDINGS if failed else engine.EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
