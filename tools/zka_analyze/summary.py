"""Phase 1 of the cross-TU analyzer: per-function fact extraction.

While engine.run_rules walks a translation unit for the single-TU rules
(A1-A5), a SummaryExtractor rides along as an extra visitor and distills
every in-scope function definition into a small JSON-serializable
summary: what it calls, where it allocates, which shared Rng objects it
draws from, which spans escape their backing buffer, how it touches the
streaming-aggregation protocol, and where it iterates unordered
containers. Phase 2 (xtu.py, pure Python, no libclang) then reasons
transitively over the merged summaries.

The summaries are deliberately plain dicts so they can be cached to disk
(cache.py) and unit-tested without clang.

Modelling limits (documented in DESIGN.md): calls through std::function
members/locals and function-pointer tables are opaque (no edge); lambdas
are resolved when passed literally or through a local lambda variable at
the call site, which covers every parallel_for site in the repo today.
"""

from __future__ import annotations

from rules import binop_spelling, float_class, peel

# Rng members that advance generator state. split() is the sanctioned way
# to hand randomness to concurrent work, so it is exempt by design.
DRAW_METHODS = frozenset(
    {
        "operator()",
        "uniform",
        "uniform_index",
        "normal",
        "gamma",
        "dirichlet",
        "sample_without_replacement",
        "shuffle",
    }
)

# Member calls that may (re)allocate a standard container's storage.
GROWTH_METHODS = frozenset(
    {
        "push_back",
        "emplace_back",
        "push_front",
        "emplace_front",
        "resize",
        "insert",
        "emplace",
        "emplace_hint",
        "append",
        "assign",
    }
)

ALLOC_CALLS = frozenset(
    {"malloc", "calloc", "realloc", "aligned_alloc", "strdup", "make_unique", "make_shared"}
)

STREAM_METHODS = frozenset({"begin_stream", "stream_update", "finish_stream"})

# -- taint extraction (rules A11-A15) ---------------------------------------

# Member calls that copy element values from an argument into the
# receiver: taint flows argument -> receiver container.
TAINT_GROWTH = frozenset(
    {
        "push_back",
        "emplace_back",
        "push_front",
        "emplace_front",
        "insert",
        "emplace",
        "append",
        "assign",
    }
)

# Calls through which *value* taint does not flow. Sizes and counts are
# server-controlled bookkeeping even when the container's elements are
# attacker-controlled; keeping them opaque stops span-granularity
# over-taint (`buf.reserve(updates.size())` is not an attacker-sized
# allocation, `updates[0]` is an attacker value).
SIZE_CALLS = frozenset(
    {"size", "ssize", "length", "capacity", "empty", "max_size", "bytes"}
)

# Element/subrange accessors whose result carries the container's value
# taint and whose *arguments* are index sinks (rule A14).
INDEX_CALLS = frozenset({"at", "subspan", "first", "last", "operator[]"})

# Value accessors taint flows straight through (receiver -> result).
VALUE_HOPS = frozenset({"front", "back", "data", "raw", "begin", "end", "value"})

# Bounding calls: std::min/max/clamp dominate their result, so a call
# counts as a range guard on its argument keys (rule A11/A12/A14).
CLAMP_CALLS = frozenset({"min", "max", "clamp"})

# Finite-classification calls: a guard mentioning one sanitizes the
# checked keys against non-finite values (rule A13).
FINITE_CALLS = frozenset({"isfinite", "isnan", "isinf", "is_finite"})

# Reduce-toolkit accumulation primitives (invariant R5 routes all
# defense multiply-accumulate through these): folding a tainted float in
# without finite sanitization is an A13 sink.
ACCUM_FNS = frozenset(
    {
        "axpy",
        "dot",
        "fmadd",
        "weighted_sum",
        "squared_norm",
        "squared_distance",
        "gram_matrix",
    }
)

# Functions matching these unqualified-name prefixes are sanitizers by
# convention (trust.json documents/extends the set): their return value
# is trusted and their argument keys are clean downstream of the call.
SANITIZE_PREFIXES = ("validate_", "sanitize_", "admit_")

CONTAINER_MARKERS = (
    "std::vector<",
    "std::deque<",
    "std::map<",
    "std::unordered_map<",
    "std::set<",
    "std::unordered_set<",
    "std::basic_string<",
    "std::list<",
)

# Types whose storage dies with the owning scope; a span/pointer derived
# from a local of one of these must not outlive the function (rule A8).
OWNER_MARKERS = CONTAINER_MARKERS + ("std::array<", "zka::tensor::Tensor")

UNORDERED_MARKERS = ("unordered_map<", "unordered_set<")

ENTRY_NAMES = frozenset(
    {
        "aggregate",
        "craft",
        "begin_stream",
        "stream_update",
        "stream_replay",
        "finish_stream",
        "reported_weight",
        # The protected virtual hooks behind the sanitizing public
        # wrappers (template-method pattern in defense/aggregator.h).
        # Marked so phase 2 can resolve wrapper -> hook virtual dispatch
        # and treat hook implementations as dataflow roots; they are NOT
        # taint sources — the wrapper sanitizes before dispatching.
        "do_aggregate",
        "do_begin_stream",
        "do_stream_update",
        "do_stream_replay",
    }
)
ENTRY_BASES = frozenset({"Aggregator", "Attack"})


def new_facts() -> dict:
    """One function's (or one parallel body's) raw facts."""
    return {
        "calls": [],  # {usr, name, line, off, lambdas: [facts...]}
        "allocs": [],  # {line, what, recv|None, off}
        "reserves": [],  # {recv, off}
        "rng_draws": [],  # {line, obj, kind: param|member|outer}
        "ret_views": [],  # {line, what}
        "view_stores": [],  # {line, what}
        "stream_calls": [],  # {kind, line, off}
        "unordered_iters": [],  # {line}
        "parallel_bodies": [],  # {line, facts}
        "parallel_params": [],  # USRs of own params whose callable runs in parallel
        "loops": [],  # {start, end} source-offset extents of loop statements
        # -- taint facts (A11-A15) --
        "params": [],  # {usr, name} in declaration order
        "flows": [],  # {dst, srcs: [key...], off} value assignments/inserts
        "taint_returns": [],  # {keys, off} keys feeding a return value
        "sinks": [],  # {kind: alloc|div|accum|index|loop_bound, keys, line, off, what}
        "guards": [],  # {kinds: [check|finite...], keys, off}
        "sanitize_calls": [],  # {name, keys, off} calls to sanitizer functions
    }


def qual_name(cursor) -> str:
    parts = []
    cur = cursor
    while cur is not None and not cur.kind.is_translation_unit():
        if cur.spelling:
            parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


def _canonical(type_obj) -> str:
    return type_obj.get_canonical().spelling


def _dedup(keys):
    return list(dict.fromkeys(k for k in keys if k))


def _contains(type_obj, markers) -> bool:
    spelling = _canonical(type_obj)
    return any(m in spelling for m in markers)


class SummaryExtractor:
    """One instance per TU; engine.run_rules calls visit() on every
    in-scope cursor. Summaries accumulate in self.summaries keyed by the
    function's USR."""

    def __init__(self, cindex, scope):
        self.cx = cindex
        self.scope = scope
        self.summaries: dict = {}
        self._int_kinds = None

    # -- engine hook -------------------------------------------------------

    def visit(self, node, rel, func_stack):
        if not func_stack:
            return
        fn = func_stack[-1]
        facts = self._facts_for(fn, rel)
        if facts is None:
            return
        cx = self.cx
        kind = node.kind
        if kind == cx.CursorKind.CXX_NEW_EXPR:
            facts["allocs"].append(self._alloc(node, "new"))
        elif kind == cx.CursorKind.CALL_EXPR:
            self._on_call(node, fn, facts, collect_parallel=True)
        elif kind == cx.CursorKind.VAR_DECL:
            self._on_var_decl(node, facts)
            self._taint_var_decl(node, facts)
        elif kind == cx.CursorKind.CXX_FOR_RANGE_STMT:
            self._on_loop(node, facts)
            self._on_range_for(node, facts)
            self._taint_range_for(node, facts)
        elif kind in (
            cx.CursorKind.FOR_STMT,
            cx.CursorKind.WHILE_STMT,
            cx.CursorKind.DO_STMT,
        ):
            self._on_loop(node, facts)
            self._taint_loop_bound(node, facts)
        elif kind == cx.CursorKind.RETURN_STMT:
            self._on_return(node, fn, facts)
        elif kind in (
            cx.CursorKind.BINARY_OPERATOR,
            cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR,
        ):
            self._taint_binop(node, facts)
        elif kind == cx.CursorKind.ARRAY_SUBSCRIPT_EXPR:
            self._taint_subscript(node, facts)
        elif kind in (
            cx.CursorKind.IF_STMT,
            cx.CursorKind.CONDITIONAL_OPERATOR,
        ):
            self._taint_guard(node, facts)

    @staticmethod
    def _on_loop(node, facts):
        """Loop extents let phase 2 distinguish one-time setup allocations
        from per-iteration ones inside a hot root (A6 flags only the
        latter; the fix is precisely to hoist out of the loop)."""
        facts["loops"].append(
            {"start": node.extent.start.offset, "end": node.extent.end.offset}
        )

    # -- summary bookkeeping ----------------------------------------------

    def _facts_for(self, fn, rel):
        usr = fn.get_usr()
        if not usr:
            return None
        record = self.summaries.get(usr)
        if record is None:
            fn_rel = self.scope.rel_path(fn) or rel
            record = {
                "usr": usr,
                "name": qual_name(fn),
                "path": fn_rel,
                "line": fn.location.line,
                "entry": self._entry_kind(fn),
                "facts": new_facts(),
            }
            record["facts"]["params"] = [
                {"usr": p.get_usr(), "name": p.spelling}
                for p in fn.get_arguments()
                if p.get_usr()
            ]
            self.summaries[usr] = record
        return record["facts"]

    def _entry_kind(self, fn):
        cx = self.cx
        if fn.kind != cx.CursorKind.CXX_METHOD or fn.spelling not in ENTRY_NAMES:
            return None
        cls = fn.semantic_parent
        if cls is None:
            return None
        if cls.spelling in ENTRY_BASES or self._derives(cls, set()):
            return fn.spelling
        return None

    def _derives(self, cls, seen) -> bool:
        cx = self.cx
        cls = cls.get_definition() or cls
        key = cls.get_usr()
        if key in seen:
            return False
        seen.add(key)
        for child in cls.get_children():
            if child.kind != cx.CursorKind.CXX_BASE_SPECIFIER:
                continue
            base = child.type.get_declaration()
            if base is None:
                continue
            if base.spelling in ENTRY_BASES:
                return True
            base_def = base.get_definition()
            if base_def is not None and self._derives(base_def, seen):
                return True
        return False

    # -- fact classification ----------------------------------------------

    @staticmethod
    def _alloc(node, what, recv=None):
        return {
            "line": node.location.line,
            "off": node.location.offset,
            "what": what,
            "recv": recv,
        }

    def _on_call(self, node, fn, facts, collect_parallel):
        cx = self.cx
        callee = node.referenced
        name = callee.spelling if callee is not None else ""

        if name == "parallel_for" and collect_parallel:
            self._on_parallel_site(node, fn, facts)

        if name in STREAM_METHODS:
            facts["stream_calls"].append(
                {"kind": name, "line": node.location.line, "off": node.location.offset}
            )

        if name in ALLOC_CALLS:
            facts["allocs"].append(self._alloc(node, name + "()"))
        elif name in GROWTH_METHODS or name == "reserve":
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, CONTAINER_MARKERS):
                key = self._obj_key(recv_expr)
                if name == "reserve":
                    facts["reserves"].append({"recv": key, "off": node.location.offset})
                else:
                    facts["allocs"].append(self._alloc(node, name + "()", recv=key))
        elif name == "operator=":
            self._on_assign_call(node, facts)
        elif name in ("begin", "cbegin"):
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, UNORDERED_MARKERS):
                facts["unordered_iters"].append({"line": node.location.line})

        self._taint_call(node, facts, name)
        self._maybe_rng_draw(node, fn, facts, name, boundary=None)

        # Cross-TU call edge, for callees defined in this repo only (std
        # and system calls are leaves the dataflow never descends into).
        if callee is not None and callee.kind in (
            cx.CursorKind.FUNCTION_DECL,
            cx.CursorKind.CXX_METHOD,
            cx.CursorKind.CONSTRUCTOR,
            cx.CursorKind.FUNCTION_TEMPLATE,
        ):
            if self.scope.rel_path(callee) is not None:
                usr = callee.get_usr()
                if usr:
                    entry = {
                        "usr": usr,
                        "name": qual_name(callee),
                        "line": node.location.line,
                        "off": node.location.offset,
                    }
                    args = [
                        _dedup(self._expr_keys(a)) for a in node.get_arguments()
                    ]
                    if any(args):
                        entry["args"] = args
                    if collect_parallel:
                        lambdas = self._lambda_args(node, fn)
                        if lambdas:
                            entry["lambdas"] = lambdas
                    facts["calls"].append(entry)

    def _on_parallel_site(self, node, fn, facts):
        body = None
        for arg in node.get_children():
            lam = self._resolve_lambda(arg)
            if lam is not None:
                body = lam
            param = self._resolve_param_ref(arg, fn)
            if param is not None:
                facts["parallel_params"].append(param)
        if body is not None:
            body_facts = new_facts()
            self._walk_lambda(body, fn, body_facts)
            facts["parallel_bodies"].append(
                {"line": node.location.line, "facts": body_facts}
            )

    def _lambda_args(self, node, fn):
        """Facts for lambda literals (or local lambda variables) handed to a
        call — phase 2 roots these when the callee is a parallel wrapper."""
        lambdas = []
        for arg in node.get_children():
            lam = self._resolve_lambda(arg)
            if lam is not None:
                body_facts = new_facts()
                self._walk_lambda(lam, fn, body_facts)
                lambdas.append(body_facts)
        return lambdas

    def _resolve_lambda(self, expr):
        """LAMBDA_EXPR for a literal lambda argument, or for a DECL_REF to a
        local variable initialized with one (`auto run = [&]...`)."""
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.LAMBDA_EXPR:
            return expr
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind == cx.CursorKind.VAR_DECL:
                if "(lambda at" in _canonical(decl.type):
                    stack = list(decl.get_children())
                    while stack:
                        cur = stack.pop()
                        if cur.kind == cx.CursorKind.LAMBDA_EXPR:
                            return cur
                        stack.extend(cur.get_children())
        return None

    def _resolve_param_ref(self, expr, fn):
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind != cx.CursorKind.DECL_REF_EXPR:
            return None
        decl = expr.referenced
        if decl is not None and decl.kind == cx.CursorKind.PARM_DECL:
            if self._is_own_param(decl, fn):
                return decl.get_usr()
        return None

    @staticmethod
    def _is_own_param(decl, fn) -> bool:
        decl_file = decl.location.file
        fn_file = fn.extent.start.file
        if decl_file is None or fn_file is None or decl_file.name != fn_file.name:
            return False
        off = decl.location.offset
        return fn.extent.start.offset <= off <= fn.extent.end.offset

    def _walk_lambda(self, lam, fn, facts):
        """Collect facts inside a parallel body, classifying captured state
        relative to the lambda boundary (not the enclosing function)."""
        cx = self.cx

        def walk(node):
            kind = node.kind
            if kind == cx.CursorKind.CXX_NEW_EXPR:
                facts["allocs"].append(self._alloc(node, "new"))
            elif kind == cx.CursorKind.CALL_EXPR:
                self._on_lambda_call(node, lam, fn, facts)
            elif kind == cx.CursorKind.VAR_DECL:
                self._on_var_decl(node, facts)
            elif kind == cx.CursorKind.CXX_FOR_RANGE_STMT:
                self._on_range_for(node, facts)
            for child in node.get_children():
                walk(child)

        for child in lam.get_children():
            walk(child)

    def _on_lambda_call(self, node, lam, fn, facts):
        cx = self.cx
        callee = node.referenced
        name = callee.spelling if callee is not None else ""
        if name in ALLOC_CALLS:
            facts["allocs"].append(self._alloc(node, name + "()"))
        elif name in GROWTH_METHODS or name == "reserve":
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, CONTAINER_MARKERS):
                key = self._obj_key(recv_expr)
                if name == "reserve":
                    facts["reserves"].append({"recv": key, "off": node.location.offset})
                else:
                    facts["allocs"].append(self._alloc(node, name + "()", recv=key))
        elif name == "operator=":
            self._on_assign_call(node, facts)

        self._maybe_rng_draw(node, fn, facts, name, boundary=lam)

        # Invoking a std::function parameter of the enclosing function from
        # inside a parallel body marks that function as a parallel wrapper.
        if name == "operator()" or callee is None:
            children = list(node.get_children())
            if children:
                base = peel(cx, children[0])
                param = self._resolve_param_ref(base, fn)
                if param is not None:
                    self.summaries[fn.get_usr()]["facts"]["parallel_params"].append(
                        param
                    )
        if callee is not None and callee.kind in (
            cx.CursorKind.FUNCTION_DECL,
            cx.CursorKind.CXX_METHOD,
            cx.CursorKind.CONSTRUCTOR,
        ):
            if self.scope.rel_path(callee) is not None:
                usr = callee.get_usr()
                if usr:
                    facts["calls"].append(
                        {
                            "usr": usr,
                            "name": qual_name(callee),
                            "line": node.location.line,
                            "off": node.location.offset,
                        }
                    )

    # -- receivers, objects, Rng ------------------------------------------

    def _member_receiver(self, call):
        """The object expression of a member call (`v.push_back(x)` -> `v`),
        or None for free-function calls."""
        cx = self.cx
        children = list(call.get_children())
        if not children:
            return None
        head = children[0]
        if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(head.get_children())
            return peel(cx, inner[0]) if inner else head
        return None

    def _obj_key(self, expr):
        """Stable identity for a receiver object, so reserve() sites can
        suppress later growth on the same container."""
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            return decl.get_usr() if decl is not None else None
        if expr.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(expr.get_children())
            base = self._obj_key(inner[0]) if inner else "this"
            return f"{base}.{expr.spelling}" if base else None
        if expr.kind == cx.CursorKind.CXX_THIS_EXPR:
            return "this"
        return None

    def _maybe_rng_draw(self, node, fn, facts, name, boundary):
        """Record a state-advancing draw on an Rng that is shared relative
        to `boundary` (the lambda for parallel bodies, else the function).
        Draws on boundary-local Rngs and on split() results are safe."""
        cx = self.cx
        if name not in DRAW_METHODS:
            return
        children = list(node.get_children())
        if not children:
            return
        head = children[0]
        if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(head.get_children())
            recv = peel(cx, inner[0]) if inner else None
            implicit_this = not inner
            if implicit_this:
                callee = node.referenced
                owner = callee.semantic_parent if callee is not None else None
                if owner is None or owner.spelling != "Rng":
                    return
        else:
            # operator() via CXXOperatorCallExpr: args follow the callee ref.
            recv = peel(cx, children[1]) if name == "operator()" and len(children) > 1 else None
            implicit_this = False
            if recv is None:
                return
        if recv is not None and "zka::util::Rng" not in _canonical(recv.type):
            return
        if recv is None and not implicit_this:
            return
        kind, obj = self._classify_object(recv, fn, boundary, implicit_this)
        if kind is None:
            return
        facts["rng_draws"].append(
            {"line": node.location.line, "obj": obj, "kind": kind}
        )

    def _classify_object(self, recv, fn, boundary, implicit_this):
        """(kind, spelling) where kind is param/member/outer for shared
        state, or (None, None) when the object is boundary-local or derives
        from Rng::split."""
        cx = self.cx
        if implicit_this or (recv is not None and recv.kind == cx.CursorKind.CXX_THIS_EXPR):
            return "member", "this"
        if recv is None:
            return None, None
        if recv.kind == cx.CursorKind.CALL_EXPR:
            callee = recv.referenced
            if callee is not None and callee.spelling == "split":
                return None, None  # rng.split(salt)(...) — sanctioned
            return None, None  # opaque temporary; assume fresh
        if recv.kind == cx.CursorKind.MEMBER_REF_EXPR:
            return "member", recv.spelling
        if recv.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = recv.referenced
            if decl is None:
                return None, None
            if boundary is not None and self._declared_inside(decl, boundary):
                return None, None  # fresh per-task object
            if decl.kind == cx.CursorKind.PARM_DECL:
                return "param", decl.spelling
            if decl.kind == cx.CursorKind.VAR_DECL:
                if boundary is None and self._declared_inside(decl, fn):
                    return None, None  # function-local, single-threaded here
                return "outer", decl.spelling
            if decl.kind == cx.CursorKind.FIELD_DECL:
                return "member", decl.spelling
        return None, None

    @staticmethod
    def _declared_inside(decl, scope_cursor) -> bool:
        decl_file = decl.location.file
        scope_file = scope_cursor.extent.start.file
        if decl_file is None or scope_file is None or decl_file.name != scope_file.name:
            return False
        off = decl.location.offset
        return (
            scope_cursor.extent.start.offset <= off <= scope_cursor.extent.end.offset
        )

    # -- taint extraction (A11-A15) ---------------------------------------
    #
    # Keys identify value-carrying storage: the USR of a variable,
    # parameter or field, or "ret:<qualified-name>" for the result of a
    # repo-internal call. Phase 2 (xtu.py) seeds keys from trust.json
    # sources, propagates through `flows` / call `args` / `taint_returns`,
    # and judges `sinks` against `guards` and `sanitize_calls`.

    def _taint_call(self, node, facts, name):
        """All taint-relevant facts at one call site. Recorded whether or
        not the callee resolves into the analysis scope, so sanitizer
        calls and sinks work in fixture mode too."""
        callee = node.referenced
        if name.startswith(SANITIZE_PREFIXES):
            keys = []
            for arg in node.get_arguments():
                keys.extend(self._expr_keys(arg))
            facts["sanitize_calls"].append(
                {
                    "name": qual_name(callee) if callee is not None else name,
                    "keys": _dedup(keys),
                    "off": node.location.offset,
                }
            )
            return  # a sanitizer call is neither a sink nor a guard
        if name in ("resize", "reserve"):
            recv = self._member_receiver(node)
            if recv is not None and _contains(recv.type, CONTAINER_MARKERS):
                keys = []
                for arg in node.get_arguments():
                    keys.extend(self._typed_keys(arg, "int"))
                self._sink(facts, "alloc", keys, node, name + "()")
        elif name in INDEX_CALLS:
            args = list(node.get_arguments())
            if name == "operator[]" and args:
                args = args[1:]  # operator calls pass the receiver as arg 0
            keys = []
            for arg in args:
                keys.extend(self._typed_keys(arg, "int"))
            self._sink(facts, "index", keys, node, name)
        elif name in ACCUM_FNS:
            keys = []
            for arg in node.get_arguments():
                keys.extend(self._expr_keys(arg))
            self._sink(facts, "accum", keys, node, name + "()")
        elif name in CLAMP_CALLS or name in FINITE_CALLS:
            keys = []
            for arg in node.get_arguments():
                keys.extend(self._expr_keys(arg))
            keys = _dedup(keys)
            if keys:
                kinds = ["check", "finite"] if name in FINITE_CALLS else ["check"]
                facts["guards"].append(
                    {"kinds": kinds, "keys": keys, "off": node.location.offset}
                )
        if name in TAINT_GROWTH:
            recv = self._member_receiver(node)
            if recv is not None:
                dst = self._lvalue_key(recv)
                srcs = []
                for arg in node.get_arguments():
                    srcs.extend(self._expr_keys(arg))
                srcs = _dedup(srcs)
                if dst and srcs:
                    facts["flows"].append(
                        {"dst": dst, "srcs": srcs, "off": node.location.offset}
                    )

    @staticmethod
    def _sink(facts, kind, keys, node, what):
        keys = _dedup(keys)
        if not keys:
            return
        facts["sinks"].append(
            {
                "kind": kind,
                "keys": keys,
                "line": node.location.line,
                "off": node.location.offset,
                "what": what,
            }
        )

    def _expr_keys(self, expr, depth=0):
        """Taint keys read by a value expression. Size/count accessors
        are opaque by design: element taint must not leak into
        server-controlled bookkeeping quantities."""
        cx = self.cx
        if expr is None or depth > 24:
            return []
        expr = peel(cx, expr)
        kind = expr.kind
        if kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind in (
                cx.CursorKind.VAR_DECL,
                cx.CursorKind.PARM_DECL,
                cx.CursorKind.FIELD_DECL,
            ):
                usr = decl.get_usr()
                return [usr] if usr else []
            return []
        if kind == cx.CursorKind.MEMBER_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind == cx.CursorKind.FIELD_DECL:
                usr = decl.get_usr()
                if usr:
                    return [usr]
            inner = list(expr.get_children())
            return self._expr_keys(inner[0], depth + 1) if inner else []
        if kind == cx.CursorKind.CALL_EXPR:
            callee = expr.referenced
            name = callee.spelling if callee is not None else ""
            if name in SIZE_CALLS:
                return []
            if (
                callee is not None
                and callee.kind != cx.CursorKind.CONSTRUCTOR
                and name not in ("move", "forward")
                and self.scope.rel_path(callee) is not None
            ):
                # Repo-internal call: propagation happens at the callee's
                # summary; the result is identified by its return key.
                return ["ret:" + qual_name(callee)]
            # std/constructor/move calls: value passes through the
            # arguments (covers at/operator[]/front/data hops too).
            out = []
            for child in expr.get_children():
                out.extend(self._expr_keys(child, depth + 1))
            return out
        out = []
        for child in expr.get_children():
            out.extend(self._expr_keys(child, depth + 1))
        return out

    def _typed_keys(self, expr, want, depth=0):
        """Keys feeding an expression, restricted to reads whose own type
        is in the wanted scalar class ('int' or 'float'). Casts adopt the
        cast-to class, so every key under static_cast<size_t>(u[0])
        counts as an integer read."""
        cx = self.cx
        if expr is None or depth > 24:
            return []
        expr = peel(cx, expr)
        kind = expr.kind
        cast_kinds = tuple(
            getattr(cx.CursorKind, n)
            for n in (
                "CXX_STATIC_CAST_EXPR",
                "CSTYLE_CAST_EXPR",
                "CXX_FUNCTIONAL_CAST_EXPR",
            )
            if hasattr(cx.CursorKind, n)
        )
        if kind in cast_kinds:
            if self._type_matches(expr.type, want):
                return self._expr_keys(expr, depth + 1)
            return []
        if kind in (
            cx.CursorKind.DECL_REF_EXPR,
            cx.CursorKind.MEMBER_REF_EXPR,
            cx.CursorKind.CALL_EXPR,
            cx.CursorKind.ARRAY_SUBSCRIPT_EXPR,
        ):
            if self._type_matches(expr.type, want):
                return self._expr_keys(expr, depth + 1)
            return []
        out = []
        for child in expr.get_children():
            out.extend(self._typed_keys(child, want, depth + 1))
        return out

    def _type_matches(self, type_obj, want) -> bool:
        cx = self.cx
        canonical = type_obj.get_canonical()
        if canonical.kind in (
            cx.TypeKind.LVALUEREFERENCE,
            cx.TypeKind.RVALUEREFERENCE,
        ):
            canonical = canonical.get_pointee().get_canonical()
        if want == "float":
            return canonical.kind in (
                cx.TypeKind.FLOAT,
                cx.TypeKind.DOUBLE,
                cx.TypeKind.LONGDOUBLE,
            )
        if self._int_kinds is None:
            names = (
                "BOOL",
                "CHAR_U",
                "UCHAR",
                "CHAR16",
                "CHAR32",
                "USHORT",
                "UINT",
                "ULONG",
                "ULONGLONG",
                "UINT128",
                "CHAR_S",
                "SCHAR",
                "WCHAR",
                "SHORT",
                "INT",
                "LONG",
                "LONGLONG",
                "INT128",
                "ENUM",
            )
            self._int_kinds = frozenset(
                getattr(cx.TypeKind, n) for n in names if hasattr(cx.TypeKind, n)
            )
        return canonical.kind in self._int_kinds

    def _lvalue_key(self, expr, depth=0):
        """The storage key a store lands in: element stores taint the
        whole container, member stores the field."""
        cx = self.cx
        if expr is None or depth > 10:
            return None
        expr = peel(cx, expr)
        kind = expr.kind
        if kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind in (
                cx.CursorKind.VAR_DECL,
                cx.CursorKind.PARM_DECL,
                cx.CursorKind.FIELD_DECL,
            ):
                return decl.get_usr() or None
            return None
        if kind == cx.CursorKind.MEMBER_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind == cx.CursorKind.FIELD_DECL:
                return decl.get_usr() or None
            inner = list(expr.get_children())
            return self._lvalue_key(inner[0], depth + 1) if inner else None
        if kind in (
            cx.CursorKind.ARRAY_SUBSCRIPT_EXPR,
            cx.CursorKind.UNARY_OPERATOR,
        ):
            children = list(expr.get_children())
            return self._lvalue_key(children[0], depth + 1) if children else None
        if kind == cx.CursorKind.CALL_EXPR:
            callee = expr.referenced
            name = callee.spelling if callee is not None else ""
            if name in INDEX_CALLS and name != "operator[]" or name in VALUE_HOPS:
                recv = self._member_receiver(expr)
                return self._lvalue_key(recv, depth + 1) if recv is not None else None
            if name == "operator[]":
                children = list(expr.get_children())
                if len(children) > 1:
                    return self._lvalue_key(children[1], depth + 1)
        return None

    def _mentions_finite(self, node, depth=0) -> bool:
        if depth > 24:
            return False
        ref = getattr(node, "referenced", None)
        if ref is not None and ref.spelling in FINITE_CALLS:
            return True
        if node.spelling in FINITE_CALLS:
            return True
        return any(self._mentions_finite(c, depth + 1) for c in node.get_children())

    def _taint_var_decl(self, node, facts):
        usr = node.get_usr()
        if not usr:
            return
        exprs = [c for c in node.get_children() if c.kind.is_expression()]
        if not exprs:
            return
        srcs = _dedup(self._expr_keys(exprs[-1]))
        if srcs:
            facts["flows"].append(
                {"dst": usr, "srcs": srcs, "off": node.location.offset}
            )

    def _taint_range_for(self, node, facts):
        cx = self.cx
        children = list(node.get_children())
        if not children:
            return
        var = next((c for c in children if c.kind == cx.CursorKind.VAR_DECL), None)
        if var is None:
            return
        usr = var.get_usr()
        if not usr:
            return
        srcs = []
        for child in children[:-1]:
            if child is var:
                continue
            srcs.extend(self._expr_keys(child))
        srcs = _dedup(s for s in srcs if s != usr)
        if srcs:
            facts["flows"].append(
                {"dst": usr, "srcs": srcs, "off": node.location.offset}
            )

    def _taint_binop(self, node, facts):
        cx = self.cx
        children = list(node.get_children())
        if len(children) != 2:
            return
        op = binop_spelling(node)
        if not op:
            return
        lhs, rhs = children
        if op in ("/", "%", "/=", "%="):
            self._sink(
                facts, "div", self._expr_keys(rhs), node, f"denominator of '{op}'"
            )
        if op == "=" or node.kind == cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            dst = self._lvalue_key(lhs)
            srcs = _dedup(self._expr_keys(rhs))
            if dst and srcs:
                facts["flows"].append(
                    {"dst": dst, "srcs": srcs, "off": node.location.offset}
                )
        if (
            node.kind == cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR
            and op in ("+=", "-=", "*=")
            and float_class(cx, peel(cx, lhs).type) is not None
        ):
            # Integer reads cannot introduce NaN/Inf, so only float-typed
            # keys make an accumulation sink (int64 weights folding into
            # a double total are A12's business, not A13's).
            self._sink(
                facts,
                "accum",
                self._typed_keys(rhs, "float"),
                node,
                f"'{op}' accumulation",
            )

    def _taint_subscript(self, node, facts):
        children = list(node.get_children())
        if len(children) != 2:
            return
        self._sink(
            facts, "index", self._typed_keys(children[1], "int"), node, "subscript"
        )

    def _taint_guard(self, node, facts):
        """IF_STMT / ternary conditions (which is what a ZKA_CHECK expands
        to) and clamp/finite calls are the only guard forms; loop
        conditions are deliberately not guards, or a tainted loop bound
        would dominate itself (A14)."""
        cx = self.cx
        children = list(node.get_children())
        if not children:
            return
        if node.kind == cx.CursorKind.CONDITIONAL_OPERATOR:
            cands = children[:1]
        else:
            # Condition (+ C++17 init-statement/condition variable): the
            # leading expression/declaration children before the first
            # statement child, which is the then-branch.
            cands = []
            for child in children:
                if child.kind.is_expression() or child.kind in (
                    cx.CursorKind.DECL_STMT,
                    cx.CursorKind.VAR_DECL,
                ):
                    cands.append(child)
                else:
                    break
        keys = []
        finite = False
        for cand in cands:
            keys.extend(self._expr_keys(cand))
            finite = finite or self._mentions_finite(cand)
        keys = _dedup(keys)
        if not keys:
            return
        kinds = ["check", "finite"] if finite else ["check"]
        facts["guards"].append(
            {"kinds": kinds, "keys": keys, "off": node.location.offset}
        )

    def _taint_loop_bound(self, node, facts):
        cx = self.cx
        children = list(node.get_children())
        if not children:
            return
        if node.kind == cx.CursorKind.WHILE_STMT:
            cands = children[:1]
        elif node.kind == cx.CursorKind.DO_STMT:
            cands = children[-1:]
        else:
            cands = children[:-1]
        for cand in cands:
            cond = peel(cx, cand)
            if cond.kind != cx.CursorKind.BINARY_OPERATOR:
                continue
            if binop_spelling(cond) not in ("<", "<=", ">", ">=", "!="):
                continue
            self._sink(facts, "loop_bound", self._expr_keys(cond), node, "loop bound")
            return

    # -- declarations, assignment, returns --------------------------------

    def _on_var_decl(self, node, facts):
        """Container constructions that allocate: sized/filled constructors
        and copy-constructions. Default construction, move construction and
        materializing a returned value are free."""
        cx = self.cx
        if not _contains(node.type, CONTAINER_MARKERS):
            return
        exprs = [c for c in node.get_children() if c.kind.is_expression()]
        if not exprs:
            return
        init = peel(cx, exprs[-1])
        if init.kind == cx.CursorKind.CALL_EXPR:
            callee = init.referenced
            if callee is not None and callee.kind == cx.CursorKind.CONSTRUCTOR:
                is_move = getattr(callee, "is_move_constructor", lambda: False)()
                is_copy = getattr(callee, "is_copy_constructor", lambda: False)()
                if is_move:
                    return
                if is_copy:
                    facts["allocs"].append(self._alloc(node, "copy-construct"))
                    return
                args = list(init.get_arguments())
                if args:
                    facts["allocs"].append(self._alloc(node, "sized-construct"))
                    keys = []
                    for arg in args:
                        keys.extend(self._typed_keys(arg, "int"))
                    self._sink(facts, "alloc", keys, node, "sized-construct")
                return
            if callee is not None and callee.spelling == "move":
                return
            # Plain call initializer: the result is materialized in place.
            return
        if init.kind in (cx.CursorKind.DECL_REF_EXPR, cx.CursorKind.MEMBER_REF_EXPR):
            if _canonical(init.type) == _canonical(node.type):
                facts["allocs"].append(self._alloc(node, "copy-construct"))
            return
        if init.kind == cx.CursorKind.INIT_LIST_EXPR:
            if list(init.get_children()):
                facts["allocs"].append(self._alloc(node, "list-construct"))

    def _on_assign_call(self, node, facts):
        """operator= on containers (copy-assign allocates) and on span
        members (rule A8's view-retention footgun)."""
        cx = self.cx
        args = list(node.get_arguments())
        if len(args) != 2:
            children = list(node.get_children())
            if len(children) < 2:
                return
            args = children[-2:]
        lhs, rhs = peel(cx, args[0]), peel(cx, args[1])
        dst = self._lvalue_key(lhs)
        srcs = _dedup(self._expr_keys(rhs))
        if dst and srcs:
            facts["flows"].append(
                {"dst": dst, "srcs": srcs, "off": node.location.offset}
            )
        if _contains(lhs.type, CONTAINER_MARKERS):
            if rhs.kind == cx.CursorKind.CALL_EXPR:
                return  # move-assign / assigning a produced value
            if rhs.kind in (cx.CursorKind.DECL_REF_EXPR, cx.CursorKind.MEMBER_REF_EXPR):
                if _canonical(rhs.type) == _canonical(lhs.type):
                    facts["allocs"].append(
                        self._alloc(node, "copy-assign", recv=self._obj_key(lhs))
                    )
            return
        if "std::span<" in _canonical(lhs.type):
            if lhs.kind == cx.CursorKind.MEMBER_REF_EXPR:
                src = self._view_source(rhs)
                if src is not None and src.kind in (
                    cx.CursorKind.PARM_DECL,
                    cx.CursorKind.VAR_DECL,
                ):
                    facts["view_stores"].append(
                        {"line": node.location.line, "what": src.spelling}
                    )

    def _on_range_for(self, node, facts):
        children = list(node.get_children())
        for child in children[:-1]:
            if self._mentions_unordered(child):
                facts["unordered_iters"].append({"line": node.location.line})
                return

    def _mentions_unordered(self, node) -> bool:
        if any(m in _canonical(node.type) for m in UNORDERED_MARKERS):
            return True
        return any(self._mentions_unordered(c) for c in node.get_children())

    def _on_return(self, node, fn, facts):
        cx = self.cx
        children = list(node.get_children())
        if children:
            keys = _dedup(self._expr_keys(children[0]))
            if keys:
                facts["taint_returns"].append(
                    {"keys": keys, "off": node.location.offset}
                )
        result = fn.result_type.get_canonical()
        is_view = "std::span<" in result.spelling or result.kind == cx.TypeKind.POINTER
        if not is_view:
            return
        if not children:
            return
        src = self._view_source(children[0])
        if src is None or src.kind != cx.CursorKind.VAR_DECL:
            return
        if not self._declared_inside(src, fn):
            return
        storage = getattr(src, "storage_class", None)
        if storage is not None and storage == cx.StorageClass.STATIC:
            return
        if _contains(src.type, OWNER_MARKERS):
            facts["ret_views"].append(
                {"line": node.location.line, "what": src.spelling}
            )

    _VIEW_HOPS = frozenset(
        {"data", "raw", "subspan", "first", "last", "c_str", "begin", "front", "back", "get", "span"}
    )

    def _view_source(self, expr, depth=0):
        """The declaration whose storage ultimately backs a span/pointer
        expression, hopping through data()/raw()/subspan()/span(...) chains."""
        cx = self.cx
        if depth > 10:
            return None
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            return expr.referenced
        if expr.kind == cx.CursorKind.CALL_EXPR:
            callee = expr.referenced
            name = callee.spelling if callee is not None else ""
            if callee is not None and callee.kind == cx.CursorKind.CONSTRUCTOR:
                args = list(expr.get_arguments()) or list(expr.get_children())
                return self._view_source(args[0], depth + 1) if args else None
            if name in self._VIEW_HOPS:
                children = list(expr.get_children())
                if children:
                    head = children[0]
                    if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
                        inner = list(head.get_children())
                        if inner:
                            return self._view_source(inner[0], depth + 1)
                        return None  # implicit this: member storage
                    return self._view_source(head, depth + 1)
            return None
        if expr.kind in (
            cx.CursorKind.UNARY_OPERATOR,
            cx.CursorKind.ARRAY_SUBSCRIPT_EXPR,
        ):
            children = list(expr.get_children())
            return self._view_source(children[0], depth + 1) if children else None
        children = list(expr.get_children())
        if len(children) == 1:
            return self._view_source(children[0], depth + 1)
        return None
