"""Phase 1 of the cross-TU analyzer: per-function fact extraction.

While engine.run_rules walks a translation unit for the single-TU rules
(A1-A5), a SummaryExtractor rides along as an extra visitor and distills
every in-scope function definition into a small JSON-serializable
summary: what it calls, where it allocates, which shared Rng objects it
draws from, which spans escape their backing buffer, how it touches the
streaming-aggregation protocol, and where it iterates unordered
containers. Phase 2 (xtu.py, pure Python, no libclang) then reasons
transitively over the merged summaries.

The summaries are deliberately plain dicts so they can be cached to disk
(cache.py) and unit-tested without clang.

Modelling limits (documented in DESIGN.md): calls through std::function
members/locals and function-pointer tables are opaque (no edge); lambdas
are resolved when passed literally or through a local lambda variable at
the call site, which covers every parallel_for site in the repo today.
"""

from __future__ import annotations

from rules import peel

# Rng members that advance generator state. split() is the sanctioned way
# to hand randomness to concurrent work, so it is exempt by design.
DRAW_METHODS = frozenset(
    {
        "operator()",
        "uniform",
        "uniform_index",
        "normal",
        "gamma",
        "dirichlet",
        "sample_without_replacement",
        "shuffle",
    }
)

# Member calls that may (re)allocate a standard container's storage.
GROWTH_METHODS = frozenset(
    {
        "push_back",
        "emplace_back",
        "push_front",
        "emplace_front",
        "resize",
        "insert",
        "emplace",
        "emplace_hint",
        "append",
        "assign",
    }
)

ALLOC_CALLS = frozenset(
    {"malloc", "calloc", "realloc", "aligned_alloc", "strdup", "make_unique", "make_shared"}
)

STREAM_METHODS = frozenset({"begin_stream", "stream_update", "finish_stream"})

CONTAINER_MARKERS = (
    "std::vector<",
    "std::deque<",
    "std::map<",
    "std::unordered_map<",
    "std::set<",
    "std::unordered_set<",
    "std::basic_string<",
    "std::list<",
)

# Types whose storage dies with the owning scope; a span/pointer derived
# from a local of one of these must not outlive the function (rule A8).
OWNER_MARKERS = CONTAINER_MARKERS + ("std::array<", "zka::tensor::Tensor")

UNORDERED_MARKERS = ("unordered_map<", "unordered_set<")

ENTRY_NAMES = frozenset(
    {"aggregate", "craft", "begin_stream", "stream_update", "finish_stream"}
)
ENTRY_BASES = frozenset({"Aggregator", "Attack"})


def new_facts() -> dict:
    """One function's (or one parallel body's) raw facts."""
    return {
        "calls": [],  # {usr, name, line, off, lambdas: [facts...]}
        "allocs": [],  # {line, what, recv|None, off}
        "reserves": [],  # {recv, off}
        "rng_draws": [],  # {line, obj, kind: param|member|outer}
        "ret_views": [],  # {line, what}
        "view_stores": [],  # {line, what}
        "stream_calls": [],  # {kind, line, off}
        "unordered_iters": [],  # {line}
        "parallel_bodies": [],  # {line, facts}
        "parallel_params": [],  # USRs of own params whose callable runs in parallel
        "loops": [],  # {start, end} source-offset extents of loop statements
    }


def qual_name(cursor) -> str:
    parts = []
    cur = cursor
    while cur is not None and not cur.kind.is_translation_unit():
        if cur.spelling:
            parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


def _canonical(type_obj) -> str:
    return type_obj.get_canonical().spelling


def _contains(type_obj, markers) -> bool:
    spelling = _canonical(type_obj)
    return any(m in spelling for m in markers)


class SummaryExtractor:
    """One instance per TU; engine.run_rules calls visit() on every
    in-scope cursor. Summaries accumulate in self.summaries keyed by the
    function's USR."""

    def __init__(self, cindex, scope):
        self.cx = cindex
        self.scope = scope
        self.summaries: dict = {}

    # -- engine hook -------------------------------------------------------

    def visit(self, node, rel, func_stack):
        if not func_stack:
            return
        fn = func_stack[-1]
        facts = self._facts_for(fn, rel)
        if facts is None:
            return
        cx = self.cx
        kind = node.kind
        if kind == cx.CursorKind.CXX_NEW_EXPR:
            facts["allocs"].append(self._alloc(node, "new"))
        elif kind == cx.CursorKind.CALL_EXPR:
            self._on_call(node, fn, facts, collect_parallel=True)
        elif kind == cx.CursorKind.VAR_DECL:
            self._on_var_decl(node, facts)
        elif kind == cx.CursorKind.CXX_FOR_RANGE_STMT:
            self._on_loop(node, facts)
            self._on_range_for(node, facts)
        elif kind in (
            cx.CursorKind.FOR_STMT,
            cx.CursorKind.WHILE_STMT,
            cx.CursorKind.DO_STMT,
        ):
            self._on_loop(node, facts)
        elif kind == cx.CursorKind.RETURN_STMT:
            self._on_return(node, fn, facts)

    @staticmethod
    def _on_loop(node, facts):
        """Loop extents let phase 2 distinguish one-time setup allocations
        from per-iteration ones inside a hot root (A6 flags only the
        latter; the fix is precisely to hoist out of the loop)."""
        facts["loops"].append(
            {"start": node.extent.start.offset, "end": node.extent.end.offset}
        )

    # -- summary bookkeeping ----------------------------------------------

    def _facts_for(self, fn, rel):
        usr = fn.get_usr()
        if not usr:
            return None
        record = self.summaries.get(usr)
        if record is None:
            fn_rel = self.scope.rel_path(fn) or rel
            record = {
                "usr": usr,
                "name": qual_name(fn),
                "path": fn_rel,
                "line": fn.location.line,
                "entry": self._entry_kind(fn),
                "facts": new_facts(),
            }
            self.summaries[usr] = record
        return record["facts"]

    def _entry_kind(self, fn):
        cx = self.cx
        if fn.kind != cx.CursorKind.CXX_METHOD or fn.spelling not in ENTRY_NAMES:
            return None
        cls = fn.semantic_parent
        if cls is None:
            return None
        if cls.spelling in ENTRY_BASES or self._derives(cls, set()):
            return fn.spelling
        return None

    def _derives(self, cls, seen) -> bool:
        cx = self.cx
        cls = cls.get_definition() or cls
        key = cls.get_usr()
        if key in seen:
            return False
        seen.add(key)
        for child in cls.get_children():
            if child.kind != cx.CursorKind.CXX_BASE_SPECIFIER:
                continue
            base = child.type.get_declaration()
            if base is None:
                continue
            if base.spelling in ENTRY_BASES:
                return True
            base_def = base.get_definition()
            if base_def is not None and self._derives(base_def, seen):
                return True
        return False

    # -- fact classification ----------------------------------------------

    @staticmethod
    def _alloc(node, what, recv=None):
        return {
            "line": node.location.line,
            "off": node.location.offset,
            "what": what,
            "recv": recv,
        }

    def _on_call(self, node, fn, facts, collect_parallel):
        cx = self.cx
        callee = node.referenced
        name = callee.spelling if callee is not None else ""

        if name == "parallel_for" and collect_parallel:
            self._on_parallel_site(node, fn, facts)

        if name in STREAM_METHODS:
            facts["stream_calls"].append(
                {"kind": name, "line": node.location.line, "off": node.location.offset}
            )

        if name in ALLOC_CALLS:
            facts["allocs"].append(self._alloc(node, name + "()"))
        elif name in GROWTH_METHODS or name == "reserve":
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, CONTAINER_MARKERS):
                key = self._obj_key(recv_expr)
                if name == "reserve":
                    facts["reserves"].append({"recv": key, "off": node.location.offset})
                else:
                    facts["allocs"].append(self._alloc(node, name + "()", recv=key))
        elif name == "operator=":
            self._on_assign_call(node, facts)
        elif name in ("begin", "cbegin"):
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, UNORDERED_MARKERS):
                facts["unordered_iters"].append({"line": node.location.line})

        self._maybe_rng_draw(node, fn, facts, name, boundary=None)

        # Cross-TU call edge, for callees defined in this repo only (std
        # and system calls are leaves the dataflow never descends into).
        if callee is not None and callee.kind in (
            cx.CursorKind.FUNCTION_DECL,
            cx.CursorKind.CXX_METHOD,
            cx.CursorKind.CONSTRUCTOR,
            cx.CursorKind.FUNCTION_TEMPLATE,
        ):
            if self.scope.rel_path(callee) is not None:
                usr = callee.get_usr()
                if usr:
                    entry = {
                        "usr": usr,
                        "name": qual_name(callee),
                        "line": node.location.line,
                        "off": node.location.offset,
                    }
                    if collect_parallel:
                        lambdas = self._lambda_args(node, fn)
                        if lambdas:
                            entry["lambdas"] = lambdas
                    facts["calls"].append(entry)

    def _on_parallel_site(self, node, fn, facts):
        body = None
        for arg in node.get_children():
            lam = self._resolve_lambda(arg)
            if lam is not None:
                body = lam
            param = self._resolve_param_ref(arg, fn)
            if param is not None:
                facts["parallel_params"].append(param)
        if body is not None:
            body_facts = new_facts()
            self._walk_lambda(body, fn, body_facts)
            facts["parallel_bodies"].append(
                {"line": node.location.line, "facts": body_facts}
            )

    def _lambda_args(self, node, fn):
        """Facts for lambda literals (or local lambda variables) handed to a
        call — phase 2 roots these when the callee is a parallel wrapper."""
        lambdas = []
        for arg in node.get_children():
            lam = self._resolve_lambda(arg)
            if lam is not None:
                body_facts = new_facts()
                self._walk_lambda(lam, fn, body_facts)
                lambdas.append(body_facts)
        return lambdas

    def _resolve_lambda(self, expr):
        """LAMBDA_EXPR for a literal lambda argument, or for a DECL_REF to a
        local variable initialized with one (`auto run = [&]...`)."""
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.LAMBDA_EXPR:
            return expr
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            if decl is not None and decl.kind == cx.CursorKind.VAR_DECL:
                if "(lambda at" in _canonical(decl.type):
                    stack = list(decl.get_children())
                    while stack:
                        cur = stack.pop()
                        if cur.kind == cx.CursorKind.LAMBDA_EXPR:
                            return cur
                        stack.extend(cur.get_children())
        return None

    def _resolve_param_ref(self, expr, fn):
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind != cx.CursorKind.DECL_REF_EXPR:
            return None
        decl = expr.referenced
        if decl is not None and decl.kind == cx.CursorKind.PARM_DECL:
            if self._is_own_param(decl, fn):
                return decl.get_usr()
        return None

    @staticmethod
    def _is_own_param(decl, fn) -> bool:
        decl_file = decl.location.file
        fn_file = fn.extent.start.file
        if decl_file is None or fn_file is None or decl_file.name != fn_file.name:
            return False
        off = decl.location.offset
        return fn.extent.start.offset <= off <= fn.extent.end.offset

    def _walk_lambda(self, lam, fn, facts):
        """Collect facts inside a parallel body, classifying captured state
        relative to the lambda boundary (not the enclosing function)."""
        cx = self.cx

        def walk(node):
            kind = node.kind
            if kind == cx.CursorKind.CXX_NEW_EXPR:
                facts["allocs"].append(self._alloc(node, "new"))
            elif kind == cx.CursorKind.CALL_EXPR:
                self._on_lambda_call(node, lam, fn, facts)
            elif kind == cx.CursorKind.VAR_DECL:
                self._on_var_decl(node, facts)
            elif kind == cx.CursorKind.CXX_FOR_RANGE_STMT:
                self._on_range_for(node, facts)
            for child in node.get_children():
                walk(child)

        for child in lam.get_children():
            walk(child)

    def _on_lambda_call(self, node, lam, fn, facts):
        cx = self.cx
        callee = node.referenced
        name = callee.spelling if callee is not None else ""
        if name in ALLOC_CALLS:
            facts["allocs"].append(self._alloc(node, name + "()"))
        elif name in GROWTH_METHODS or name == "reserve":
            recv_expr = self._member_receiver(node)
            if recv_expr is not None and _contains(recv_expr.type, CONTAINER_MARKERS):
                key = self._obj_key(recv_expr)
                if name == "reserve":
                    facts["reserves"].append({"recv": key, "off": node.location.offset})
                else:
                    facts["allocs"].append(self._alloc(node, name + "()", recv=key))
        elif name == "operator=":
            self._on_assign_call(node, facts)

        self._maybe_rng_draw(node, fn, facts, name, boundary=lam)

        # Invoking a std::function parameter of the enclosing function from
        # inside a parallel body marks that function as a parallel wrapper.
        if name == "operator()" or callee is None:
            children = list(node.get_children())
            if children:
                base = peel(cx, children[0])
                param = self._resolve_param_ref(base, fn)
                if param is not None:
                    self.summaries[fn.get_usr()]["facts"]["parallel_params"].append(
                        param
                    )
        if callee is not None and callee.kind in (
            cx.CursorKind.FUNCTION_DECL,
            cx.CursorKind.CXX_METHOD,
            cx.CursorKind.CONSTRUCTOR,
        ):
            if self.scope.rel_path(callee) is not None:
                usr = callee.get_usr()
                if usr:
                    facts["calls"].append(
                        {
                            "usr": usr,
                            "name": qual_name(callee),
                            "line": node.location.line,
                            "off": node.location.offset,
                        }
                    )

    # -- receivers, objects, Rng ------------------------------------------

    def _member_receiver(self, call):
        """The object expression of a member call (`v.push_back(x)` -> `v`),
        or None for free-function calls."""
        cx = self.cx
        children = list(call.get_children())
        if not children:
            return None
        head = children[0]
        if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(head.get_children())
            return peel(cx, inner[0]) if inner else head
        return None

    def _obj_key(self, expr):
        """Stable identity for a receiver object, so reserve() sites can
        suppress later growth on the same container."""
        cx = self.cx
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = expr.referenced
            return decl.get_usr() if decl is not None else None
        if expr.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(expr.get_children())
            base = self._obj_key(inner[0]) if inner else "this"
            return f"{base}.{expr.spelling}" if base else None
        if expr.kind == cx.CursorKind.CXX_THIS_EXPR:
            return "this"
        return None

    def _maybe_rng_draw(self, node, fn, facts, name, boundary):
        """Record a state-advancing draw on an Rng that is shared relative
        to `boundary` (the lambda for parallel bodies, else the function).
        Draws on boundary-local Rngs and on split() results are safe."""
        cx = self.cx
        if name not in DRAW_METHODS:
            return
        children = list(node.get_children())
        if not children:
            return
        head = children[0]
        if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
            inner = list(head.get_children())
            recv = peel(cx, inner[0]) if inner else None
            implicit_this = not inner
            if implicit_this:
                callee = node.referenced
                owner = callee.semantic_parent if callee is not None else None
                if owner is None or owner.spelling != "Rng":
                    return
        else:
            # operator() via CXXOperatorCallExpr: args follow the callee ref.
            recv = peel(cx, children[1]) if name == "operator()" and len(children) > 1 else None
            implicit_this = False
            if recv is None:
                return
        if recv is not None and "zka::util::Rng" not in _canonical(recv.type):
            return
        if recv is None and not implicit_this:
            return
        kind, obj = self._classify_object(recv, fn, boundary, implicit_this)
        if kind is None:
            return
        facts["rng_draws"].append(
            {"line": node.location.line, "obj": obj, "kind": kind}
        )

    def _classify_object(self, recv, fn, boundary, implicit_this):
        """(kind, spelling) where kind is param/member/outer for shared
        state, or (None, None) when the object is boundary-local or derives
        from Rng::split."""
        cx = self.cx
        if implicit_this or (recv is not None and recv.kind == cx.CursorKind.CXX_THIS_EXPR):
            return "member", "this"
        if recv is None:
            return None, None
        if recv.kind == cx.CursorKind.CALL_EXPR:
            callee = recv.referenced
            if callee is not None and callee.spelling == "split":
                return None, None  # rng.split(salt)(...) — sanctioned
            return None, None  # opaque temporary; assume fresh
        if recv.kind == cx.CursorKind.MEMBER_REF_EXPR:
            return "member", recv.spelling
        if recv.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = recv.referenced
            if decl is None:
                return None, None
            if boundary is not None and self._declared_inside(decl, boundary):
                return None, None  # fresh per-task object
            if decl.kind == cx.CursorKind.PARM_DECL:
                return "param", decl.spelling
            if decl.kind == cx.CursorKind.VAR_DECL:
                if boundary is None and self._declared_inside(decl, fn):
                    return None, None  # function-local, single-threaded here
                return "outer", decl.spelling
            if decl.kind == cx.CursorKind.FIELD_DECL:
                return "member", decl.spelling
        return None, None

    @staticmethod
    def _declared_inside(decl, scope_cursor) -> bool:
        decl_file = decl.location.file
        scope_file = scope_cursor.extent.start.file
        if decl_file is None or scope_file is None or decl_file.name != scope_file.name:
            return False
        off = decl.location.offset
        return (
            scope_cursor.extent.start.offset <= off <= scope_cursor.extent.end.offset
        )

    # -- declarations, assignment, returns --------------------------------

    def _on_var_decl(self, node, facts):
        """Container constructions that allocate: sized/filled constructors
        and copy-constructions. Default construction, move construction and
        materializing a returned value are free."""
        cx = self.cx
        if not _contains(node.type, CONTAINER_MARKERS):
            return
        exprs = [c for c in node.get_children() if c.kind.is_expression()]
        if not exprs:
            return
        init = peel(cx, exprs[-1])
        if init.kind == cx.CursorKind.CALL_EXPR:
            callee = init.referenced
            if callee is not None and callee.kind == cx.CursorKind.CONSTRUCTOR:
                is_move = getattr(callee, "is_move_constructor", lambda: False)()
                is_copy = getattr(callee, "is_copy_constructor", lambda: False)()
                if is_move:
                    return
                if is_copy:
                    facts["allocs"].append(self._alloc(node, "copy-construct"))
                    return
                if list(init.get_arguments()):
                    facts["allocs"].append(self._alloc(node, "sized-construct"))
                return
            if callee is not None and callee.spelling == "move":
                return
            # Plain call initializer: the result is materialized in place.
            return
        if init.kind in (cx.CursorKind.DECL_REF_EXPR, cx.CursorKind.MEMBER_REF_EXPR):
            if _canonical(init.type) == _canonical(node.type):
                facts["allocs"].append(self._alloc(node, "copy-construct"))
            return
        if init.kind == cx.CursorKind.INIT_LIST_EXPR:
            if list(init.get_children()):
                facts["allocs"].append(self._alloc(node, "list-construct"))

    def _on_assign_call(self, node, facts):
        """operator= on containers (copy-assign allocates) and on span
        members (rule A8's view-retention footgun)."""
        cx = self.cx
        args = list(node.get_arguments())
        if len(args) != 2:
            children = list(node.get_children())
            if len(children) < 2:
                return
            args = children[-2:]
        lhs, rhs = peel(cx, args[0]), peel(cx, args[1])
        if _contains(lhs.type, CONTAINER_MARKERS):
            if rhs.kind == cx.CursorKind.CALL_EXPR:
                return  # move-assign / assigning a produced value
            if rhs.kind in (cx.CursorKind.DECL_REF_EXPR, cx.CursorKind.MEMBER_REF_EXPR):
                if _canonical(rhs.type) == _canonical(lhs.type):
                    facts["allocs"].append(
                        self._alloc(node, "copy-assign", recv=self._obj_key(lhs))
                    )
            return
        if "std::span<" in _canonical(lhs.type):
            if lhs.kind == cx.CursorKind.MEMBER_REF_EXPR:
                src = self._view_source(rhs)
                if src is not None and src.kind in (
                    cx.CursorKind.PARM_DECL,
                    cx.CursorKind.VAR_DECL,
                ):
                    facts["view_stores"].append(
                        {"line": node.location.line, "what": src.spelling}
                    )

    def _on_range_for(self, node, facts):
        children = list(node.get_children())
        for child in children[:-1]:
            if self._mentions_unordered(child):
                facts["unordered_iters"].append({"line": node.location.line})
                return

    def _mentions_unordered(self, node) -> bool:
        if any(m in _canonical(node.type) for m in UNORDERED_MARKERS):
            return True
        return any(self._mentions_unordered(c) for c in node.get_children())

    def _on_return(self, node, fn, facts):
        cx = self.cx
        result = fn.result_type.get_canonical()
        is_view = "std::span<" in result.spelling or result.kind == cx.TypeKind.POINTER
        if not is_view:
            return
        children = list(node.get_children())
        if not children:
            return
        src = self._view_source(children[0])
        if src is None or src.kind != cx.CursorKind.VAR_DECL:
            return
        if not self._declared_inside(src, fn):
            return
        storage = getattr(src, "storage_class", None)
        if storage is not None and storage == cx.StorageClass.STATIC:
            return
        if _contains(src.type, OWNER_MARKERS):
            facts["ret_views"].append(
                {"line": node.location.line, "what": src.spelling}
            )

    _VIEW_HOPS = frozenset(
        {"data", "raw", "subspan", "first", "last", "c_str", "begin", "front", "back", "get", "span"}
    )

    def _view_source(self, expr, depth=0):
        """The declaration whose storage ultimately backs a span/pointer
        expression, hopping through data()/raw()/subspan()/span(...) chains."""
        cx = self.cx
        if depth > 10:
            return None
        expr = peel(cx, expr)
        if expr.kind == cx.CursorKind.DECL_REF_EXPR:
            return expr.referenced
        if expr.kind == cx.CursorKind.CALL_EXPR:
            callee = expr.referenced
            name = callee.spelling if callee is not None else ""
            if callee is not None and callee.kind == cx.CursorKind.CONSTRUCTOR:
                args = list(expr.get_arguments()) or list(expr.get_children())
                return self._view_source(args[0], depth + 1) if args else None
            if name in self._VIEW_HOPS:
                children = list(expr.get_children())
                if children:
                    head = children[0]
                    if head.kind == cx.CursorKind.MEMBER_REF_EXPR:
                        inner = list(head.get_children())
                        if inner:
                            return self._view_source(inner[0], depth + 1)
                        return None  # implicit this: member storage
                    return self._view_source(head, depth + 1)
            return None
        if expr.kind in (
            cx.CursorKind.UNARY_OPERATOR,
            cx.CursorKind.ARRAY_SUBSCRIPT_EXPR,
        ):
            children = list(expr.get_children())
            return self._view_source(children[0], depth + 1) if children else None
        children = list(expr.get_children())
        if len(children) == 1:
            return self._view_source(children[0], depth + 1)
        return None
