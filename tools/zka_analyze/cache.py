"""Persistent per-TU index cache for the two-phase analyzer.

Phase 1 (libclang parse + A1-A5 + summary extraction) dominates the
analyzer's runtime, so its result is cached per translation unit and
keyed on content: a TU is re-analyzed only when its own bytes, the bytes
of any repo-internal header it pulled in last time, the compile flags,
or the analyzer implementation itself (the `salt`) change. Phase 2 is
pure Python over the merged summaries and always re-runs — it is
milliseconds and depends on the whole index.

Entry format (JSON, one file per TU under the cache dir):

    {"sig": "<sha256 over schema+salt+file+flags>",
     "deps": {"/abs/path": "<sha256 of bytes>", ...},
     "payload": {"findings": [...], "summaries": {...},
                 "analyzed_paths": [...]}}

The payload is exactly what the compute callback returned minus "deps"
(re-recorded at validation time). Corrupt or stale entries are treated
as misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
import os

SCHEMA_VERSION = 1


def file_sha256(path: str) -> str | None:
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return None


class TuCache:
    def __init__(self, cache_dir: str, salt: str = ""):
        self.cache_dir = cache_dir
        self.salt = salt
        self.hits = 0
        self.misses = 0

    def _entry_path(self, file_path: str) -> str:
        digest = hashlib.sha256(file_path.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.cache_dir, f"{digest}.json")

    def _signature(self, cmd) -> str:
        blob = json.dumps(
            [SCHEMA_VERSION, self.salt, cmd.file, cmd.directory, list(cmd.args)]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def get_or_compute(self, cmd, compute):
        """compute(cmd) must return a dict with a "deps" key listing every
        absolute file path whose content the result depends on (the TU
        itself plus transitively included repo headers). The stored payload
        is returned verbatim on a hit."""
        entry_path = self._entry_path(cmd.file)
        sig = self._signature(cmd)
        record = None
        try:
            with open(entry_path, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            record = None
        if (
            record is not None
            and record.get("sig") == sig
            and record.get("deps")
            and all(
                file_sha256(path) == digest
                for path, digest in record["deps"].items()
            )
        ):
            self.hits += 1
            return record["payload"]

        self.misses += 1
        payload = compute(cmd)
        deps = {}
        cacheable = True
        for path in payload.get("deps", ()):
            digest = file_sha256(path)
            if digest is None:
                cacheable = False
                break
            deps[path] = digest
        if cacheable and deps:
            stored = {k: v for k, v in payload.items() if k != "deps"}
            try:
                os.makedirs(self.cache_dir, exist_ok=True)
                tmp = entry_path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump({"sig": sig, "deps": deps, "payload": stored}, fh)
                os.replace(tmp, entry_path)
            except OSError:
                pass  # cache is best-effort; analysis result is unaffected
        return payload
