#!/usr/bin/env python3
"""AST-level policy analyzer for the ZKA codebase.

Drives libclang over the CMake-exported compile_commands.json and
enforces the five semantic policy rules (A1-A5; see rules.py and
DESIGN.md "Static analysis"). The regex half of the policy suite lives
in tools/check_invariants.py.

Usage:
    python3 tools/zka_analyze/zka_analyze.py \
        --compile-commands build/compile_commands.json \
        [--baseline tools/zka_analyze/baseline.txt] \
        [--strict-baseline] [--json findings.json] [--only A1 A3] [-v]

Exit codes:
    0   clean (all findings suppressed by escapes or baseline)
    1   non-baselined findings, or (with --strict-baseline) stale
        baseline entries / unused allow() escapes
    2   environment error (missing/unparsable compile_commands, TU parse
        failure)
    77  libclang unavailable -- registered with ctest as
        SKIP_RETURN_CODE so the test is skipped, not failed
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine
from clang_loader import load_cindex, resource_dir_args

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

# Only translation units under these roots are analyzed (their headers
# come along transitively).
TU_ROOTS = ("src/", "tests/", "bench/", "examples/")


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compile-commands",
        default=os.path.join(REPO_ROOT, "build", "compile_commands.json"),
        help="path to the CMake-exported compilation database",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "tools", "zka_analyze", "baseline.txt"),
        help="grandfathered-findings file; pass an empty string to disable",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail on stale baseline entries and unused allow() escapes "
        "(CI mode); default only warns",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write findings and baseline state as JSON",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="RULE",
        help="restrict to a subset of rules, e.g. --only A1 A3",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="log each TU as it is parsed"
    )
    return parser.parse_args(argv)


def make_line_provider(repo_root):
    cache: dict = {}

    def provider(rel_path):
        if rel_path not in cache:
            full = os.path.join(repo_root, rel_path)
            try:
                with open(full, encoding="utf-8") as fh:
                    cache[rel_path] = fh.read().splitlines()
            except OSError:
                cache[rel_path] = None
        return cache[rel_path]

    return provider


def main(argv=None) -> int:
    args = parse_args(argv)

    cindex = load_cindex()
    if cindex is None:
        print(
            "zka_analyze: libclang unavailable (pip install libclang, or set "
            "ZKA_LIBCLANG to the shared library); skipping",
            file=sys.stderr,
        )
        return engine.EXIT_SKIP

    import rules as rules_mod  # after the loader check: imports clang helpers

    if not os.path.exists(args.compile_commands):
        print(
            f"zka_analyze: {args.compile_commands} not found; configure the "
            f"build first (cmake --preset release)",
            file=sys.stderr,
        )
        return engine.EXIT_ENV

    try:
        commands = engine.load_compile_commands(args.compile_commands)
    except (OSError, ValueError, KeyError) as exc:
        print(f"zka_analyze: bad compilation database: {exc}", file=sys.stderr)
        return engine.EXIT_ENV

    scope = engine.Scope(REPO_ROOT)
    rule_set = rules_mod.build_rules(cindex, only=args.only)
    index = cindex.Index.create()
    extra_args = resource_dir_args()
    # Expression trees nest deeply; the default recursion limit is too
    # tight for a full TU walk.
    sys.setrecursionlimit(100000)

    all_findings = []
    analyzed_paths = set()
    parsed = 0
    for cmd in commands:
        if not cmd.file.startswith(REPO_ROOT + os.sep):
            continue
        rel = os.path.relpath(cmd.file, REPO_ROOT).replace(os.sep, "/")
        if not rel.startswith(TU_ROOTS) or rel.startswith(engine.DEFAULT_EXCLUDES):
            continue
        if args.verbose:
            print(f"zka_analyze: parsing {rel}", file=sys.stderr)
        try:
            tu = engine.parse_tu(
                cindex, index, cmd.file, cmd.args + extra_args, cmd.directory
            )
        except engine.AnalysisError as exc:
            print(f"zka_analyze: {exc}", file=sys.stderr)
            return engine.EXIT_ENV
        parsed += 1
        analyzed_paths.add(rel)
        for f in engine.run_rules(cindex, tu, scope, rule_set):
            analyzed_paths.add(f.path)
            all_findings.append(f)

    if parsed == 0:
        print(
            "zka_analyze: compilation database contained no analyzable "
            "translation units",
            file=sys.stderr,
        )
        return engine.EXIT_ENV

    findings = engine.dedupe(all_findings)
    provider = make_line_provider(REPO_ROOT)
    findings, used_escapes = engine.filter_allows(findings, provider)
    unused = engine.find_unused_allows(
        analyzed_paths, provider, used_escapes, set(rules_mod.ALL_RULE_IDS)
    )

    baseline_entries = []
    if args.baseline and os.path.exists(args.baseline):
        try:
            baseline_entries = engine.load_baseline(args.baseline)
        except ValueError as exc:
            print(f"zka_analyze: {exc}", file=sys.stderr)
            return engine.EXIT_ENV
    remaining, stale = engine.apply_baseline(findings, baseline_entries)

    if args.json:
        payload = {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "function": f.function,
                    "message": f.message,
                }
                for f in remaining
            ],
            "baselined": len(findings) - len(remaining),
            "stale_baseline": [e.render() for e in stale],
            "unused_escapes": unused,
            "translation_units": parsed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for f in remaining:
        print(f.render())
    for line in unused:
        severity = "error" if args.strict_baseline else "warning"
        print(f"zka_analyze: {severity}: {line}")
    for e in stale:
        severity = "error" if args.strict_baseline else "warning"
        print(
            f"zka_analyze: {severity}: stale baseline entry "
            f"(baseline.txt:{e.lineno}: {e.render()}) matched nothing; "
            f"delete it -- the baseline only shrinks"
        )

    if remaining:
        print(
            f"zka_analyze: {len(remaining)} finding(s) "
            f"({len(findings) - len(remaining)} baselined, {parsed} TUs)",
            file=sys.stderr,
        )
        return engine.EXIT_FINDINGS
    if args.strict_baseline and (stale or unused):
        return engine.EXIT_FINDINGS
    print(
        f"zka_analyze: OK ({parsed} TUs, {len(findings) - len(remaining)} "
        f"baselined finding(s))"
    )
    return engine.EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
