#!/usr/bin/env python3
"""AST-level policy analyzer for the ZKA codebase.

Two phases over the CMake-exported compile_commands.json:

  phase 1 (libclang, cached per TU): parse each translation unit, run
          the single-TU semantic rules (A1-A5; rules.py) and extract the
          per-function summary facts (summary.py). Results are cached
          under --cache-dir keyed on file content hashes, so an
          unchanged tree re-analyzes nothing.
  phase 2 (pure Python): merge the summaries into a USR-keyed call
          graph and run the cross-TU dataflow rules (A6-A10; xtu.py)
          configured by hotpaths.json.

The regex half of the policy suite lives in tools/check_invariants.py.

Usage:
    python3 tools/zka_analyze/zka_analyze.py \
        --compile-commands build/compile_commands.json \
        [--baseline tools/zka_analyze/baseline.txt] \
        [--strict-baseline] [--json findings.json] [--only A1 A6] \
        [--cache-dir DIR | --no-cache] [--stats] [-v]

Exit codes:
    0   clean (all findings suppressed by escapes or baseline)
    1   non-baselined findings, or (with --strict-baseline) stale
        baseline entries / unused allow() escapes
    2   environment error (missing/unparsable compile_commands, TU parse
        failure)
    77  libclang unavailable -- registered with ctest as
        SKIP_RETURN_CODE so the test is skipped, not failed
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine
from cache import TuCache, file_sha256
from clang_loader import load_cindex, resource_dir_args

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)
PKG_DIR = os.path.dirname(os.path.abspath(__file__))

# Only translation units under these roots are analyzed (their headers
# come along transitively).
TU_ROOTS = ("src/", "tests/", "bench/", "examples/")


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compile-commands",
        default=os.path.join(REPO_ROOT, "build", "compile_commands.json"),
        help="path to the CMake-exported compilation database",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(PKG_DIR, "baseline.txt"),
        help="grandfathered-findings file; pass an empty string to disable",
    )
    parser.add_argument(
        "--hotpaths",
        default=os.path.join(PKG_DIR, "hotpaths.json"),
        help="A6/A7 hot-root and boundary configuration",
    )
    parser.add_argument(
        "--trust",
        default=os.path.join(PKG_DIR, "trust.json"),
        help="A11-A15 taint-source / sanitizer / sink-scope configuration",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail on stale baseline entries and unused allow() escapes "
        "(CI mode); default only warns",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write findings, per-rule counts and baseline state as JSON",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="RULE",
        help="restrict to a subset of rules, e.g. --only A1 A6",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="per-TU index cache directory (default: "
        "<compile-commands dir>/zka_analyze_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-analyze every TU, bypassing the index cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print TU, cache and per-phase timing statistics",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="log each TU as it is parsed"
    )
    return parser.parse_args(argv)


def make_line_provider(repo_root):
    cache: dict = {}

    def provider(rel_path):
        if rel_path not in cache:
            full = os.path.join(repo_root, rel_path)
            try:
                with open(full, encoding="utf-8") as fh:
                    cache[rel_path] = fh.read().splitlines()
            except OSError:
                cache[rel_path] = None
        return cache[rel_path]

    return provider


def select_commands(commands):
    """The repo-internal TUs the analyzer owns, with their repo paths."""
    selected = []
    for cmd in commands:
        if not cmd.file.startswith(REPO_ROOT + os.sep):
            continue
        rel = os.path.relpath(cmd.file, REPO_ROOT).replace(os.sep, "/")
        if not rel.startswith(TU_ROOTS) or rel.startswith(engine.DEFAULT_EXCLUDES):
            continue
        selected.append((cmd, rel))
    return selected


def analyzer_salt() -> str:
    """Content hash of the analyzer implementation: any rule or extractor
    change invalidates every cache entry."""
    parts = []
    for name in ("engine.py", "rules.py", "summary.py", "xtu.py"):
        parts.append(file_sha256(os.path.join(PKG_DIR, name)) or "")
    return ":".join(parts)


def tu_dependencies(tu, main_file: str) -> list:
    """The TU plus every repo-internal file it included — the content set
    the cache entry is keyed on."""
    deps = {os.path.realpath(main_file)}
    try:
        for inc in tu.get_includes():
            name = getattr(inc.include, "name", None)
            if not name:
                continue
            real = os.path.realpath(name)
            if real.startswith(REPO_ROOT + os.sep) and "/build/" not in real:
                deps.add(real)
    except Exception:  # noqa: BLE001 -- missing includes only weaken caching
        pass
    return sorted(deps)


def load_hotpaths(path: str):
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv=None) -> int:
    args = parse_args(argv)

    # Database problems are environment errors regardless of libclang, so
    # they are diagnosed first (and are testable on machines without it).
    if not os.path.exists(args.compile_commands):
        print(
            f"zka_analyze: {args.compile_commands} not found; configure the "
            f"build first (cmake --preset release)",
            file=sys.stderr,
        )
        return engine.EXIT_ENV
    try:
        commands = engine.load_compile_commands(args.compile_commands)
    except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
        print(f"zka_analyze: bad compilation database: {exc}", file=sys.stderr)
        return engine.EXIT_ENV
    selected = select_commands(commands)
    if not selected:
        print(
            "zka_analyze: compilation database contained no analyzable "
            "translation units",
            file=sys.stderr,
        )
        return engine.EXIT_ENV

    try:
        hot_config = load_hotpaths(args.hotpaths)
    except (OSError, ValueError) as exc:
        print(f"zka_analyze: bad hotpaths config: {exc}", file=sys.stderr)
        return engine.EXIT_ENV

    try:
        trust_config = load_hotpaths(args.trust)
    except (OSError, ValueError) as exc:
        print(f"zka_analyze: bad trust config: {exc}", file=sys.stderr)
        return engine.EXIT_ENV

    cindex = load_cindex()
    if cindex is None:
        print(
            "zka_analyze: libclang unavailable (pip install libclang, or set "
            "ZKA_LIBCLANG to the shared library); skipping",
            file=sys.stderr,
        )
        return engine.EXIT_SKIP

    import rules as rules_mod
    import summary as summary_mod
    import xtu

    all_rule_ids = (
        tuple(rules_mod.ALL_RULE_IDS)
        + tuple(xtu.XTU_RULE_IDS)
        + tuple(xtu.TAINT_RULE_IDS)
    )

    scope = engine.Scope(REPO_ROOT)
    rule_set = rules_mod.build_rules(cindex, only=args.only)
    index = cindex.Index.create()
    extra_args = resource_dir_args()
    # Expression trees nest deeply; the default recursion limit is too
    # tight for a full TU walk.
    sys.setrecursionlimit(100000)

    tu_cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(
            os.path.dirname(os.path.abspath(args.compile_commands)),
            "zka_analyze_cache",
        )
        tu_cache = TuCache(cache_dir, salt=analyzer_salt())

    def compute(cmd):
        tu = engine.parse_tu(
            cindex, index, cmd.file, cmd.args + extra_args, cmd.directory
        )
        extractor = summary_mod.SummaryExtractor(cindex, scope)
        tu_findings = engine.run_rules(cindex, tu, scope, rule_set, extractor)
        rel = os.path.relpath(cmd.file, REPO_ROOT).replace(os.sep, "/")
        return {
            "findings": [f.__dict__ for f in tu_findings],
            "summaries": extractor.summaries,
            "analyzed_paths": sorted({rel} | {f.path for f in tu_findings}),
            "deps": tu_dependencies(tu, cmd.file),
        }

    phase1_start = time.monotonic()
    all_findings = []
    analyzed_paths = set()
    summaries: dict = {}
    for cmd, rel in selected:
        if args.verbose:
            print(f"zka_analyze: analyzing {rel}", file=sys.stderr)
        try:
            payload = (
                tu_cache.get_or_compute(cmd, compute)
                if tu_cache is not None
                else compute(cmd)
            )
        except engine.AnalysisError as exc:
            print(f"zka_analyze: {exc}", file=sys.stderr)
            return engine.EXIT_ENV
        for d in payload["findings"]:
            all_findings.append(engine.Finding(**d))
        analyzed_paths.update(payload["analyzed_paths"])
        for usr, s in payload["summaries"].items():
            # Header-inline functions appear in several TUs; first wins.
            summaries.setdefault(usr, s)
    phase1_s = time.monotonic() - phase1_start

    phase2_start = time.monotonic()
    xtu_findings = xtu.run_xtu_rules(
        summaries, hot_config, only=args.only, trust=trust_config
    )
    for f in xtu_findings:
        analyzed_paths.add(f.path)
        all_findings.append(f)
    phase2_s = time.monotonic() - phase2_start

    findings = engine.dedupe(all_findings)
    raw_count = len(findings)
    provider = make_line_provider(REPO_ROOT)
    findings, used_escapes = engine.filter_allows(findings, provider)
    unused = engine.find_unused_allows(
        analyzed_paths, provider, used_escapes, set(all_rule_ids)
    )

    baseline_entries = []
    if args.baseline and os.path.exists(args.baseline):
        try:
            baseline_entries = engine.load_baseline(args.baseline)
        except ValueError as exc:
            print(f"zka_analyze: {exc}", file=sys.stderr)
            return engine.EXIT_ENV
    remaining, stale = engine.apply_baseline(findings, baseline_entries)

    per_rule = {}
    for rule_id in all_rule_ids:
        found = [f for f in findings if f.rule == rule_id]
        left = [f for f in remaining if f.rule == rule_id]
        if found or (args.only and rule_id in args.only) or not args.only:
            per_rule[rule_id] = {
                "found": len(found),
                "baselined": len(found) - len(left),
                "remaining": len(left),
            }

    if args.json:
        payload = {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "function": f.function,
                    "message": f.message,
                }
                for f in remaining
            ],
            "per_rule": per_rule,
            "baselined": len(findings) - len(remaining),
            "stale_baseline": [e.render() for e in stale],
            "unused_escapes": unused,
            "translation_units": len(selected),
            "functions_indexed": len(summaries),
            "cache": {
                "hits": tu_cache.hits if tu_cache else 0,
                "misses": tu_cache.misses if tu_cache else len(selected),
                "enabled": tu_cache is not None,
            },
            "phase_seconds": {"parse_and_extract": phase1_s, "dataflow": phase2_s},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for f in remaining:
        print(f.render())
    for line in unused:
        severity = "error" if args.strict_baseline else "warning"
        print(f"zka_analyze: {severity}: {line}")
    for e in stale:
        severity = "error" if args.strict_baseline else "warning"
        print(
            f"zka_analyze: {severity}: stale baseline entry "
            f"(baseline.txt:{e.lineno}: {e.render()}) matched nothing; "
            f"delete it -- the baseline only shrinks"
        )

    if args.stats:
        hits = tu_cache.hits if tu_cache else 0
        misses = tu_cache.misses if tu_cache else len(selected)
        print(
            f"zka_analyze: stats: {len(selected)} TUs "
            f"({hits} cached, {misses} analyzed), "
            f"{len(summaries)} functions indexed, "
            f"{raw_count} raw finding(s); "
            f"phase1 {phase1_s:.2f}s, phase2 {phase2_s:.3f}s",
            file=sys.stderr,
        )

    if remaining:
        print(
            f"zka_analyze: {len(remaining)} finding(s) "
            f"({len(findings) - len(remaining)} baselined, "
            f"{len(selected)} TUs)",
            file=sys.stderr,
        )
        return engine.EXIT_FINDINGS
    if args.strict_baseline and (stale or unused):
        return engine.EXIT_FINDINGS
    print(
        f"zka_analyze: OK ({len(selected)} TUs, {len(findings) - len(remaining)} "
        f"baselined finding(s))"
    )
    return engine.EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
