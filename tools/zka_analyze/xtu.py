"""Phase 2 of the cross-TU analyzer: call-graph dataflow rules A6-A15.

Consumes the merged per-function summaries produced by summary.py (plain
dicts — this module never touches libclang, so every rule here is
unit-testable on any machine) and reasons transitively over the
USR-keyed call graph:

  A6  heap allocation reachable from a parallel_for body or a configured
      hot root (the round loop), through any depth of calls
  A7  a shared (non-split) Rng drawn inside a parallel region
  A8  span/raw-pointer escape beyond its backing buffer's lifetime
  A9  stream_update/finish_stream reachable without a dominating
      begin_stream; hash-ordered accumulation inside finish_stream
  A10 unordered-container iteration feeding an aggregate/craft entry
      point through callees (A5 covers the direct case)

plus the taint rules, driven by trust.json (sources, sanitizers, sink
scope) over the extractor's flow/sink/guard facts:

  A11 tainted value sizes an allocation (resize/reserve/sized-construct)
      with no dominating range check
  A12 tainted denominator with no nonzero/positive guard
  A13 tainted float folded into an accumulation with no finite guard on
      the flow — one crafted NaN owns the whole mean
  A14 tainted index/offset or loop bound with no bounds check
  A15 taint laundering: a sanitizer that forwards a tainted parameter it
      never actually checked

Roots and sanctioned call-boundaries for A6/A7 live in hotpaths.json;
boundaries name functions whose internals are accepted allocation zones
until ROADMAP item 3's arena allocator lands.
"""

from __future__ import annotations

from engine import Finding
from summary import ENTRY_NAMES, SANITIZE_PREFIXES

XTU_RULE_IDS = ("A6", "A7", "A8", "A9", "A10")

TAINT_RULE_IDS = ("A11", "A12", "A13", "A14", "A15")

XTU_RULE_SUMMARIES = {
    "A6": "hot-path-alloc: heap allocation reachable from a parallel region or hot loop",
    "A7": "shared-rng-draw: non-split Rng drawn inside a parallel region",
    "A8": "span-escape: view outlives the buffer that backs it",
    "A9": "stream-protocol: stream call without dominating begin_stream / unordered fold",
    "A10": "transitive-unordered: hash-ordered iteration feeding aggregation",
    "A11": "tainted-alloc-size: untrusted value sizes an allocation unchecked",
    "A12": "tainted-denominator: untrusted divisor without a nonzero guard",
    "A13": "tainted-accumulation: untrusted float folded in without a finite guard",
    "A14": "tainted-index: untrusted index/offset/loop bound without a bounds check",
    "A15": "taint-laundering: sanitizer forwards a parameter it never checks",
}

# Rng's own methods legitimately mutate their own state; drawing *through*
# them is judged at the caller's receiver, not here.
_RNG_SELF_PREFIX = "zka::util::Rng::"

_MAX_DEPTH = 32


def live_allocs(facts):
    """Allocation facts minus container growth dominated by an earlier
    reserve() on the same object — the sanctioned hoist-and-reserve
    pattern."""
    reserved = facts.get("reserves", ())
    out = []
    for alloc in facts.get("allocs", ()):
        recv = alloc.get("recv")
        if recv is not None and any(
            r["recv"] == recv and r["off"] < alloc["off"] for r in reserved if r["recv"]
        ):
            continue
        out.append(alloc)
    return out


def _in_loop(facts, off) -> bool:
    return any(l["start"] <= off <= l["end"] for l in facts.get("loops", ()))


class _Index:
    def __init__(self, summaries, config):
        self.by_usr = summaries
        self.by_name: dict = {}
        for usr, s in summaries.items():
            self.by_name.setdefault(s["name"], []).append(usr)
        config = config or {}
        self.boundaries = {}
        for b in config.get("boundaries", ()):
            for usr in self.by_name.get(b["function"], ()):
                self.boundaries[usr] = b.get("note", "")
        self.hot_roots = config.get("hot_roots", ())

    def resolve(self, name):
        return self.by_name.get(name, ())


def _walk(index, facts, label, boundaries=True):
    """Yield (summary, chain) for every in-index function reachable from
    `facts` through call edges, breadth-first, visiting each function
    once. `label` seeds the chain description."""
    seen = set()
    queue = [(c["usr"], f"{label} -> {c['name']}") for c in facts.get("calls", ())]
    depth = 0
    while queue and depth < _MAX_DEPTH:
        depth += 1
        next_queue = []
        for usr, chain in queue:
            if usr in seen:
                continue
            seen.add(usr)
            if boundaries and usr in index.boundaries:
                continue
            summary = index.by_usr.get(usr)
            if summary is None:
                continue
            yield summary, chain
            for c in summary["facts"].get("calls", ()):
                if c["usr"] not in seen:
                    next_queue.append((c["usr"], f"{chain} -> {c['name']}"))
        queue = next_queue


def _parallel_roots(index):
    """(label, facts, path, fn_name) for every parallel execution root:
    parallel_for bodies, plus lambdas handed to parallel wrappers
    (functions that run a callable parameter inside a parallel region)."""
    wrappers = {
        usr
        for usr, s in index.by_usr.items()
        if s["facts"].get("parallel_params")
    }
    roots = []
    for s in index.by_usr.values():
        for pb in s["facts"].get("parallel_bodies", ()):
            roots.append(
                (
                    f"parallel_for body in {s['name']}",
                    pb["facts"],
                    s["path"],
                    s["name"],
                )
            )
        for call in s["facts"].get("calls", ()):
            if call["usr"] in wrappers and call.get("lambdas"):
                for lam_facts in call["lambdas"]:
                    roots.append(
                        (
                            f"callback to parallel wrapper {call['name']} "
                            f"from {s['name']}",
                            lam_facts,
                            s["path"],
                            s["name"],
                        )
                    )
    return roots


# ---------------------------------------------------------------------------
# A6: heap allocation on parallel / hot paths


def _check_a6(index, findings):
    reported = set()

    def report(summary_path, fn_name, alloc, chain):
        key = (summary_path, alloc["line"], alloc["what"])
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                path=summary_path,
                line=alloc["line"],
                rule="A6",
                message=(
                    f"heap allocation ({alloc['what']}) on a hot path: {chain}; "
                    f"hoist or reserve the buffer outside the loop (arena "
                    f"allocator: ROADMAP item 3)"
                ),
                function=fn_name,
            )
        )

    for label, facts, path, fn_name in _parallel_roots(index):
        for alloc in live_allocs(facts):
            report(path, fn_name, alloc, label)
        for summary, chain in _walk(index, facts, label):
            for alloc in live_allocs(summary["facts"]):
                report(summary["path"], summary["name"], alloc, chain)

    for root in index.hot_roots:
        for usr in index.resolve(root["function"]):
            summary = index.by_usr.get(usr)
            if summary is None:
                continue
            facts = summary["facts"]
            label = f"hot loop {summary['name']}"
            # One-time setup allocations before/after the loop are the
            # sanctioned hoist target; only per-iteration ones are hot.
            for alloc in live_allocs(facts):
                if _in_loop(facts, alloc["off"]):
                    report(summary["path"], summary["name"], alloc, label)
            if root.get("transitive"):
                loop_facts = dict(facts)
                loop_facts["calls"] = [
                    c for c in facts.get("calls", ()) if _in_loop(facts, c["off"])
                ]
                for reached, chain in _walk(index, loop_facts, label):
                    for alloc in live_allocs(reached["facts"]):
                        report(reached["path"], reached["name"], alloc, chain)


# ---------------------------------------------------------------------------
# A7: shared Rng draws inside parallel regions


def _check_a7(index, findings):
    reported = set()

    def report(path, fn_name, draw, chain):
        key = (path, draw["line"])
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                path=path,
                line=draw["line"],
                rule="A7",
                message=(
                    f"Rng '{draw['obj']}' ({draw['kind']}) drawn inside a "
                    f"parallel region without Rng::split ({chain}); draw "
                    f"order becomes thread-count-dependent — split a "
                    f"per-task generator instead"
                ),
                function=fn_name,
            )
        )

    for label, facts, path, fn_name in _parallel_roots(index):
        for draw in facts.get("rng_draws", ()):
            report(path, fn_name, draw, label)
        for summary, chain in _walk(index, facts, label):
            if summary["name"].startswith(_RNG_SELF_PREFIX):
                continue
            for draw in summary["facts"].get("rng_draws", ()):
                report(summary["path"], summary["name"], draw, chain)


# ---------------------------------------------------------------------------
# A8: views escaping their backing buffer


def _check_a8(index, findings):
    for summary in index.by_usr.values():
        facts = summary["facts"]
        for rv in facts.get("ret_views", ()):
            findings.append(
                Finding(
                    path=summary["path"],
                    line=rv["line"],
                    rule="A8",
                    message=(
                        f"returns a span/pointer into function-local buffer "
                        f"'{rv['what']}', which dies with the call — return "
                        f"an owning container or take caller storage"
                    ),
                    function=summary["name"],
                )
            )
        for vs in facts.get("view_stores", ()):
            findings.append(
                Finding(
                    path=summary["path"],
                    line=vs["line"],
                    rule="A8",
                    message=(
                        f"stores a view of caller-owned '{vs['what']}' into "
                        f"member state; the Aggregator API requires views to "
                        f"be dead once the call returns — copy instead"
                    ),
                    function=summary["name"],
                )
            )


# ---------------------------------------------------------------------------
# A9: streaming-protocol misuse


def _first_begin(facts):
    offs = [s["off"] for s in facts.get("stream_calls", ()) if s["kind"] == "begin_stream"]
    return min(offs) if offs else None


def _check_a9(index, findings):
    # A function "needs a begin" when, in source order, it issues (or calls
    # something that issues) stream_update/finish_stream before any
    # begin_stream of its own. Propagate up the call graph to a fixpoint,
    # then report only at functions nobody in the index calls — interior
    # functions are the responsibility of their (guarded or flagged)
    # callers. Implementations of the hooks themselves don't *call* the
    # hooks, so they never enter the set.
    needs = {}
    for usr, s in index.by_usr.items():
        first = _first_begin(s["facts"])
        for sc in s["facts"].get("stream_calls", ()):
            if sc["kind"] == "begin_stream":
                continue
            if first is None or sc["off"] < first:
                needs[usr] = (sc["line"], f"{sc['kind']} in {s['name']}")
                break

    changed = True
    while changed:
        changed = False
        for usr, s in index.by_usr.items():
            if usr in needs:
                continue
            first = _first_begin(s["facts"])
            for call in s["facts"].get("calls", ()):
                if call["usr"] not in needs or call["usr"] == usr:
                    continue
                if first is None or call["off"] < first:
                    _, why = needs[call["usr"]]
                    needs[usr] = (call["line"], f"call to {call['name']} ({why})")
                    changed = True
                    break

    called = set()
    for s in index.by_usr.values():
        for call in s["facts"].get("calls", ()):
            called.add(call["usr"])
    for usr, (line, why) in sorted(needs.items()):
        if usr in called:
            continue
        s = index.by_usr[usr]
        if s["entry"] in ("stream_update", "finish_stream"):
            continue  # the hook implementation, not a protocol client
        findings.append(
            Finding(
                path=s["path"],
                line=line,
                rule="A9",
                message=(
                    f"{why} is reachable with no dominating begin_stream on "
                    f"this path; the streaming contract is begin_stream -> "
                    f"stream_update* -> finish_stream"
                ),
                function=s["name"],
            )
        )

    # Order-dependence: a finish_stream implementation folding through
    # hash-ordered iteration cannot be bitwise-equal to the batch path.
    for usr, s in index.by_usr.items():
        if s["entry"] != "finish_stream":
            continue
        for reached, chain in _walk(index, s["facts"], s["name"], boundaries=False):
            for it in reached["facts"].get("unordered_iters", ()):
                findings.append(
                    Finding(
                        path=reached["path"],
                        line=it["line"],
                        rule="A9",
                        message=(
                            f"finish_stream folds through hash-ordered "
                            f"iteration ({chain}); streaming must accumulate "
                            f"in submission order to stay bitwise-equal to "
                            f"aggregate()"
                        ),
                        function=reached["name"],
                    )
                )


# ---------------------------------------------------------------------------
# A10: transitive unordered iteration feeding aggregation


def _check_a10(index, findings):
    reported = set()
    for usr, s in index.by_usr.items():
        if s["entry"] not in ("aggregate", "do_aggregate", "craft"):
            continue
        for reached, chain in _walk(index, s["facts"], s["name"], boundaries=False):
            for it in reached["facts"].get("unordered_iters", ()):
                key = (reached["path"], it["line"])
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        path=reached["path"],
                        line=it["line"],
                        rule="A10",
                        message=(
                            f"unordered-container iteration feeds "
                            f"{s['name']} ({chain}); hash order varies "
                            f"across platforms and poisons the aggregate — "
                            f"iterate sorted keys or an ordered container"
                        ),
                        function=reached["name"],
                    )
                )


# ---------------------------------------------------------------------------
# A11-A15: taint propagation from trust.json sources


# Defaults when no trust config is given (fixture mode): every parameter
# of the public entry points is attacker-controlled, craft/reported_weight
# results are attacker-controlled, sinks everywhere are in scope.
_PARAM_SOURCE_ENTRIES = ("aggregate", "begin_stream", "stream_update", "stream_replay")
_RET_SOURCE_NAMES = ("craft", "reported_weight")


def _last(name: str) -> str:
    return name.rsplit("::", 1)[-1]


class _Trust:
    """Parsed trust.json: taint sources, sanitizers, and sink scope."""

    def __init__(self, trust):
        self.param_sources: dict = {}  # entry -> None (all params) | set(names)
        self.ret_sources: set = set()
        self.sanitizers: set = set()
        if trust:
            for src in trust.get("sources", ()):
                entry = src.get("entry")
                if not entry:
                    continue
                if src.get("what") == "return":
                    self.ret_sources.add(entry)
                else:
                    names = src.get("params")
                    self.param_sources[entry] = set(names) if names else None
            for sn in trust.get("sanitizers", ()):
                if sn.get("function"):
                    self.sanitizers.add(sn["function"])
            scope = trust.get("sink_scope") or {}
            self.include = tuple(scope.get("include", ()))
            self.exclude = tuple(scope.get("exclude", ()))
        else:
            self.param_sources = {e: None for e in _PARAM_SOURCE_ENTRIES}
            self.ret_sources = set(_RET_SOURCE_NAMES)
            self.include = ()
            self.exclude = ()

    def is_sanitizer(self, name: str) -> bool:
        return name in self.sanitizers or _last(name).startswith(SANITIZE_PREFIXES)

    def in_scope(self, path: str) -> bool:
        if any(path.startswith(e) for e in self.exclude):
            return False
        if not self.include:
            return True
        return any(path.startswith(i) for i in self.include)


def _kill_offsets(facts) -> dict:
    """key -> earliest offset at which a sanitizer call launders it; the
    key is clean at any use after that offset in the same function."""
    kills: dict = {}
    for sc in facts.get("sanitize_calls", ()):
        for key in sc.get("keys", ()):
            if key not in kills or sc["off"] < kills[key]:
                kills[key] = sc["off"]
    return kills


def _killed(kills, key, off) -> bool:
    """Strictly after the sanitize call: the arguments of the call itself
    are still raw (the extractor records the kill and the call edge at the
    same offset, and the sanitizer must receive the dirty values — that is
    both its job and how taint reaches its params for A15)."""
    return key in kills and kills[key] < off


def _components(facts) -> dict:
    """key -> set of locally flow-related keys (undirected closure over
    this function's flows). A guard on any related key credits the whole
    component: checking the element checks the container it came from."""
    adj: dict = {}
    for fl in facts.get("flows", ()):
        for src in fl["srcs"]:
            adj.setdefault(fl["dst"], set()).add(src)
            adj.setdefault(src, set()).add(fl["dst"])
    comp: dict = {}
    for start in adj:
        if start in comp:
            continue
        members: set = set()
        stack = [start]
        while stack:
            cur = stack.pop()
            if cur in members:
                continue
            members.add(cur)
            stack.extend(adj.get(cur, ()))
        for m in members:
            comp[m] = members
    return comp


def _related(comp, keys) -> set:
    out = set()
    for key in keys:
        out.add(key)
        out.update(comp.get(key, ()))
    return out


class _TaintState:
    """Global set-once taint map over decl USRs and ret:<name> keys,
    computed to a fixpoint over flows, call arguments and returns.
    Sanitizers block propagation: their return keys never taint, and
    keys they were handed are clean downstream of the call. Guards do
    NOT block propagation — a bounds check in a caller does not bound
    what a callee does with its own copy; sinks must be guarded in the
    function that owns them (or behind a sanitizer)."""

    def __init__(self, index, trust):
        self.index = index
        self.trust = trust
        self.tainted: dict = {}  # key -> origin label
        self.vret: dict = {}  # entry-hook unqualified name -> origin
        self.kills = {
            usr: _kill_offsets(s["facts"]) for usr, s in index.by_usr.items()
        }
        self._seed()
        self._propagate()

    def origin(self, key):
        o = self.tainted.get(key)
        if o is not None:
            return o
        if key.startswith("ret:"):
            name = key[4:]
            if self.trust.is_sanitizer(name):
                return None
            last = _last(name)
            if last in self.trust.ret_sources:
                return f"return of {name}"
            # Calls through a pure-virtual entry hook: any tainted
            # implementation return taints the dispatch site.
            return self.vret.get(last)
        return None

    def _seed(self):
        for s in self.index.by_usr.values():
            entry = s["entry"]
            if entry not in self.trust.param_sources:
                continue
            selected = self.trust.param_sources[entry]
            for p in s["facts"].get("params", ()):
                if selected is None or p["name"] in selected:
                    self.tainted[p["usr"]] = f"{p['name']}, param of {s['name']}"

    def _flow_origin(self, keys, kills, off):
        for key in keys:
            if _killed(kills, key, off):
                continue
            o = self.origin(key)
            if o is not None:
                return o
        return None

    def _resolve(self, call):
        """Callee summaries for a call edge: direct by USR, else — for
        the Aggregator/Attack virtual hooks, whose base declarations have
        no body and hence no summary — every implementation override."""
        s = self.index.by_usr.get(call["usr"])
        if s is not None:
            return (s,)
        last = _last(call["name"])
        if last not in ENTRY_NAMES:
            return ()
        return tuple(
            cs for cs in self.index.by_usr.values() if cs["entry"] == last
        )

    def _propagate(self):
        changed = True
        rounds = 0
        while changed and rounds < 64:
            changed = False
            rounds += 1
            for usr, s in self.index.by_usr.items():
                facts = s["facts"]
                kills = self.kills[usr]
                for fl in facts.get("flows", ()):
                    if fl["dst"] in self.tainted:
                        continue
                    o = self._flow_origin(fl["srcs"], kills, fl["off"])
                    if o is not None:
                        self.tainted[fl["dst"]] = o
                        changed = True
                for call in facts.get("calls", ()):
                    args = call.get("args")
                    if not args:
                        continue
                    for callee in self._resolve(call):
                        params = callee["facts"].get("params", ())
                        for i, keys in enumerate(args):
                            if i >= len(params):
                                break
                            pusr = params[i]["usr"]
                            if pusr in self.tainted:
                                continue
                            o = self._flow_origin(keys, kills, call["off"])
                            if o is not None:
                                self.tainted[pusr] = o
                                changed = True
                if self.trust.is_sanitizer(s["name"]):
                    continue  # a sanitizer's return is trusted by contract
                rkey = "ret:" + s["name"]
                for tr in facts.get("taint_returns", ()):
                    o = self._flow_origin(tr["keys"], kills, tr["off"])
                    if o is None:
                        continue
                    if rkey not in self.tainted:
                        self.tainted[rkey] = o
                        changed = True
                    if s["entry"] and _last(s["name"]) not in self.vret:
                        self.vret[_last(s["name"])] = o
                        changed = True
                    break


def _guarded(facts, comp, key, off, need) -> bool:
    rel = _related(comp, (key,))
    for g in facts.get("guards", ()):
        if need not in g["kinds"] or g["off"] >= off:
            continue
        if rel & _related(comp, g["keys"]):
            return True
    return False


_SINK_RULES = {
    "alloc": (
        "A11",
        "check",
        "ZKA_CHECK a bound on the size before allocating",
    ),
    "div": (
        "A12",
        "check",
        "guard the denominator (nonzero/positive) before dividing",
    ),
    "accum": (
        "A13",
        "finite",
        "finite-check the flow first (defense/sanitize.h ingress or std::isfinite)",
    ),
    "index": (
        "A14",
        "check",
        "ZKA_CHECK the index against the valid range first",
    ),
    "loop_bound": (
        "A14",
        "check",
        "ZKA_CHECK a bound on the trip count first",
    ),
}


def _check_taint_sinks(index, taint, trust, findings, only):
    for usr, s in index.by_usr.items():
        if not trust.in_scope(s["path"]):
            continue
        facts = s["facts"]
        comp = _components(facts)
        kills = taint.kills.get(usr, {})
        for sink in facts.get("sinks", ()):
            rule, need, fix = _SINK_RULES[sink["kind"]]
            if only and rule not in only:
                continue
            for key in sink["keys"]:
                if _killed(kills, key, sink["off"]):
                    continue
                origin = taint.origin(key)
                if origin is None:
                    continue
                if _guarded(facts, comp, key, sink["off"], need):
                    continue
                findings.append(
                    Finding(
                        path=s["path"],
                        line=sink["line"],
                        rule=rule,
                        message=(
                            f"untrusted value ({origin}) reaches "
                            f"{sink['what']} with no dominating "
                            f"{'finite' if need == 'finite' else 'range'} "
                            f"guard; {fix}"
                        ),
                        function=s["name"],
                    )
                )
                break  # one finding per sink site


def _check_a15(index, taint, trust, findings):
    """Taint laundering: a sanitizer that forwards (via a call, a nested
    sanitizer hand-off, or its return value) a tainted parameter whose
    flow component it never guarded or re-sanitized. Callers trust the
    whole signature once the sanitizer returns, so a skipped parameter
    is laundered, not cleaned."""
    for usr, s in index.by_usr.items():
        if not trust.in_scope(s["path"]):
            continue
        if not trust.is_sanitizer(s["name"]):
            continue
        facts = s["facts"]
        comp = _components(facts)
        forwarded: set = set()
        for call in facts.get("calls", ()):
            for keys in call.get("args", ()):
                forwarded.update(keys)
        for tr in facts.get("taint_returns", ()):
            forwarded.update(tr["keys"])
        for p in facts.get("params", ()):
            if taint.origin(p["usr"]) is None:
                continue
            rel = _related(comp, (p["usr"],))
            if not rel & forwarded:
                continue
            credited = False
            for g in facts.get("guards", ()):
                if rel & _related(comp, g["keys"]):
                    credited = True
                    break
            if not credited:
                for sc in facts.get("sanitize_calls", ()):
                    if rel & _related(comp, sc.get("keys", ())):
                        credited = True
                        break
            if not credited:
                findings.append(
                    Finding(
                        path=s["path"],
                        line=s["line"],
                        rule="A15",
                        message=(
                            f"sanitizer {s['name']} forwards tainted "
                            f"parameter '{p['name']}' without checking it; "
                            f"callers trust every parameter once a "
                            f"sanitizer returns — check it or rename the "
                            f"function"
                        ),
                        function=s["name"],
                    )
                )


# ---------------------------------------------------------------------------


_CHECKS = {
    "A6": _check_a6,
    "A7": _check_a7,
    "A8": _check_a8,
    "A9": _check_a9,
    "A10": _check_a10,
}


def run_xtu_rules(summaries, config=None, only=None, trust=None):
    """All A6-A15 findings over the merged summary index. `config` is the
    parsed hotpaths.json ({"hot_roots": [...], "boundaries": [...]});
    `trust` is the parsed trust.json (None selects the built-in defaults,
    which is what the fixture driver runs under); `only`, when set,
    restricts to that subset of rule ids."""
    index = _Index(summaries, config)
    findings: list = []
    for rule_id, check in _CHECKS.items():
        if only and rule_id not in only:
            continue
        check(index, findings)
    if not only or any(r in only for r in TAINT_RULE_IDS):
        trust_cfg = _Trust(trust)
        taint = _TaintState(index, trust_cfg)
        _check_taint_sinks(index, taint, trust_cfg, findings, only)
        if not only or "A15" in only:
            _check_a15(index, taint, trust_cfg, findings)
    return findings
