"""Phase 2 of the cross-TU analyzer: call-graph dataflow rules A6-A10.

Consumes the merged per-function summaries produced by summary.py (plain
dicts — this module never touches libclang, so every rule here is
unit-testable on any machine) and reasons transitively over the
USR-keyed call graph:

  A6  heap allocation reachable from a parallel_for body or a configured
      hot root (the round loop), through any depth of calls
  A7  a shared (non-split) Rng drawn inside a parallel region
  A8  span/raw-pointer escape beyond its backing buffer's lifetime
  A9  stream_update/finish_stream reachable without a dominating
      begin_stream; hash-ordered accumulation inside finish_stream
  A10 unordered-container iteration feeding an aggregate/craft entry
      point through callees (A5 covers the direct case)

Roots and sanctioned call-boundaries for A6/A7 live in hotpaths.json;
boundaries name functions whose internals are accepted allocation zones
until ROADMAP item 3's arena allocator lands.
"""

from __future__ import annotations

from engine import Finding

XTU_RULE_IDS = ("A6", "A7", "A8", "A9", "A10")

XTU_RULE_SUMMARIES = {
    "A6": "hot-path-alloc: heap allocation reachable from a parallel region or hot loop",
    "A7": "shared-rng-draw: non-split Rng drawn inside a parallel region",
    "A8": "span-escape: view outlives the buffer that backs it",
    "A9": "stream-protocol: stream call without dominating begin_stream / unordered fold",
    "A10": "transitive-unordered: hash-ordered iteration feeding aggregation",
}

# Rng's own methods legitimately mutate their own state; drawing *through*
# them is judged at the caller's receiver, not here.
_RNG_SELF_PREFIX = "zka::util::Rng::"

_MAX_DEPTH = 32


def live_allocs(facts):
    """Allocation facts minus container growth dominated by an earlier
    reserve() on the same object — the sanctioned hoist-and-reserve
    pattern."""
    reserved = facts.get("reserves", ())
    out = []
    for alloc in facts.get("allocs", ()):
        recv = alloc.get("recv")
        if recv is not None and any(
            r["recv"] == recv and r["off"] < alloc["off"] for r in reserved if r["recv"]
        ):
            continue
        out.append(alloc)
    return out


def _in_loop(facts, off) -> bool:
    return any(l["start"] <= off <= l["end"] for l in facts.get("loops", ()))


class _Index:
    def __init__(self, summaries, config):
        self.by_usr = summaries
        self.by_name: dict = {}
        for usr, s in summaries.items():
            self.by_name.setdefault(s["name"], []).append(usr)
        config = config or {}
        self.boundaries = {}
        for b in config.get("boundaries", ()):
            for usr in self.by_name.get(b["function"], ()):
                self.boundaries[usr] = b.get("note", "")
        self.hot_roots = config.get("hot_roots", ())

    def resolve(self, name):
        return self.by_name.get(name, ())


def _walk(index, facts, label, boundaries=True):
    """Yield (summary, chain) for every in-index function reachable from
    `facts` through call edges, breadth-first, visiting each function
    once. `label` seeds the chain description."""
    seen = set()
    queue = [(c["usr"], f"{label} -> {c['name']}") for c in facts.get("calls", ())]
    depth = 0
    while queue and depth < _MAX_DEPTH:
        depth += 1
        next_queue = []
        for usr, chain in queue:
            if usr in seen:
                continue
            seen.add(usr)
            if boundaries and usr in index.boundaries:
                continue
            summary = index.by_usr.get(usr)
            if summary is None:
                continue
            yield summary, chain
            for c in summary["facts"].get("calls", ()):
                if c["usr"] not in seen:
                    next_queue.append((c["usr"], f"{chain} -> {c['name']}"))
        queue = next_queue


def _parallel_roots(index):
    """(label, facts, path, fn_name) for every parallel execution root:
    parallel_for bodies, plus lambdas handed to parallel wrappers
    (functions that run a callable parameter inside a parallel region)."""
    wrappers = {
        usr
        for usr, s in index.by_usr.items()
        if s["facts"].get("parallel_params")
    }
    roots = []
    for s in index.by_usr.values():
        for pb in s["facts"].get("parallel_bodies", ()):
            roots.append(
                (
                    f"parallel_for body in {s['name']}",
                    pb["facts"],
                    s["path"],
                    s["name"],
                )
            )
        for call in s["facts"].get("calls", ()):
            if call["usr"] in wrappers and call.get("lambdas"):
                for lam_facts in call["lambdas"]:
                    roots.append(
                        (
                            f"callback to parallel wrapper {call['name']} "
                            f"from {s['name']}",
                            lam_facts,
                            s["path"],
                            s["name"],
                        )
                    )
    return roots


# ---------------------------------------------------------------------------
# A6: heap allocation on parallel / hot paths


def _check_a6(index, findings):
    reported = set()

    def report(summary_path, fn_name, alloc, chain):
        key = (summary_path, alloc["line"], alloc["what"])
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                path=summary_path,
                line=alloc["line"],
                rule="A6",
                message=(
                    f"heap allocation ({alloc['what']}) on a hot path: {chain}; "
                    f"hoist or reserve the buffer outside the loop (arena "
                    f"allocator: ROADMAP item 3)"
                ),
                function=fn_name,
            )
        )

    for label, facts, path, fn_name in _parallel_roots(index):
        for alloc in live_allocs(facts):
            report(path, fn_name, alloc, label)
        for summary, chain in _walk(index, facts, label):
            for alloc in live_allocs(summary["facts"]):
                report(summary["path"], summary["name"], alloc, chain)

    for root in index.hot_roots:
        for usr in index.resolve(root["function"]):
            summary = index.by_usr.get(usr)
            if summary is None:
                continue
            facts = summary["facts"]
            label = f"hot loop {summary['name']}"
            # One-time setup allocations before/after the loop are the
            # sanctioned hoist target; only per-iteration ones are hot.
            for alloc in live_allocs(facts):
                if _in_loop(facts, alloc["off"]):
                    report(summary["path"], summary["name"], alloc, label)
            if root.get("transitive"):
                loop_facts = dict(facts)
                loop_facts["calls"] = [
                    c for c in facts.get("calls", ()) if _in_loop(facts, c["off"])
                ]
                for reached, chain in _walk(index, loop_facts, label):
                    for alloc in live_allocs(reached["facts"]):
                        report(reached["path"], reached["name"], alloc, chain)


# ---------------------------------------------------------------------------
# A7: shared Rng draws inside parallel regions


def _check_a7(index, findings):
    reported = set()

    def report(path, fn_name, draw, chain):
        key = (path, draw["line"])
        if key in reported:
            return
        reported.add(key)
        findings.append(
            Finding(
                path=path,
                line=draw["line"],
                rule="A7",
                message=(
                    f"Rng '{draw['obj']}' ({draw['kind']}) drawn inside a "
                    f"parallel region without Rng::split ({chain}); draw "
                    f"order becomes thread-count-dependent — split a "
                    f"per-task generator instead"
                ),
                function=fn_name,
            )
        )

    for label, facts, path, fn_name in _parallel_roots(index):
        for draw in facts.get("rng_draws", ()):
            report(path, fn_name, draw, label)
        for summary, chain in _walk(index, facts, label):
            if summary["name"].startswith(_RNG_SELF_PREFIX):
                continue
            for draw in summary["facts"].get("rng_draws", ()):
                report(summary["path"], summary["name"], draw, chain)


# ---------------------------------------------------------------------------
# A8: views escaping their backing buffer


def _check_a8(index, findings):
    for summary in index.by_usr.values():
        facts = summary["facts"]
        for rv in facts.get("ret_views", ()):
            findings.append(
                Finding(
                    path=summary["path"],
                    line=rv["line"],
                    rule="A8",
                    message=(
                        f"returns a span/pointer into function-local buffer "
                        f"'{rv['what']}', which dies with the call — return "
                        f"an owning container or take caller storage"
                    ),
                    function=summary["name"],
                )
            )
        for vs in facts.get("view_stores", ()):
            findings.append(
                Finding(
                    path=summary["path"],
                    line=vs["line"],
                    rule="A8",
                    message=(
                        f"stores a view of caller-owned '{vs['what']}' into "
                        f"member state; the Aggregator API requires views to "
                        f"be dead once the call returns — copy instead"
                    ),
                    function=summary["name"],
                )
            )


# ---------------------------------------------------------------------------
# A9: streaming-protocol misuse


def _first_begin(facts):
    offs = [s["off"] for s in facts.get("stream_calls", ()) if s["kind"] == "begin_stream"]
    return min(offs) if offs else None


def _check_a9(index, findings):
    # A function "needs a begin" when, in source order, it issues (or calls
    # something that issues) stream_update/finish_stream before any
    # begin_stream of its own. Propagate up the call graph to a fixpoint,
    # then report only at functions nobody in the index calls — interior
    # functions are the responsibility of their (guarded or flagged)
    # callers. Implementations of the hooks themselves don't *call* the
    # hooks, so they never enter the set.
    needs = {}
    for usr, s in index.by_usr.items():
        first = _first_begin(s["facts"])
        for sc in s["facts"].get("stream_calls", ()):
            if sc["kind"] == "begin_stream":
                continue
            if first is None or sc["off"] < first:
                needs[usr] = (sc["line"], f"{sc['kind']} in {s['name']}")
                break

    changed = True
    while changed:
        changed = False
        for usr, s in index.by_usr.items():
            if usr in needs:
                continue
            first = _first_begin(s["facts"])
            for call in s["facts"].get("calls", ()):
                if call["usr"] not in needs or call["usr"] == usr:
                    continue
                if first is None or call["off"] < first:
                    _, why = needs[call["usr"]]
                    needs[usr] = (call["line"], f"call to {call['name']} ({why})")
                    changed = True
                    break

    called = set()
    for s in index.by_usr.values():
        for call in s["facts"].get("calls", ()):
            called.add(call["usr"])
    for usr, (line, why) in sorted(needs.items()):
        if usr in called:
            continue
        s = index.by_usr[usr]
        if s["entry"] in ("stream_update", "finish_stream"):
            continue  # the hook implementation, not a protocol client
        findings.append(
            Finding(
                path=s["path"],
                line=line,
                rule="A9",
                message=(
                    f"{why} is reachable with no dominating begin_stream on "
                    f"this path; the streaming contract is begin_stream -> "
                    f"stream_update* -> finish_stream"
                ),
                function=s["name"],
            )
        )

    # Order-dependence: a finish_stream implementation folding through
    # hash-ordered iteration cannot be bitwise-equal to the batch path.
    for usr, s in index.by_usr.items():
        if s["entry"] != "finish_stream":
            continue
        for reached, chain in _walk(index, s["facts"], s["name"], boundaries=False):
            for it in reached["facts"].get("unordered_iters", ()):
                findings.append(
                    Finding(
                        path=reached["path"],
                        line=it["line"],
                        rule="A9",
                        message=(
                            f"finish_stream folds through hash-ordered "
                            f"iteration ({chain}); streaming must accumulate "
                            f"in submission order to stay bitwise-equal to "
                            f"aggregate()"
                        ),
                        function=reached["name"],
                    )
                )


# ---------------------------------------------------------------------------
# A10: transitive unordered iteration feeding aggregation


def _check_a10(index, findings):
    reported = set()
    for usr, s in index.by_usr.items():
        if s["entry"] not in ("aggregate", "craft"):
            continue
        for reached, chain in _walk(index, s["facts"], s["name"], boundaries=False):
            for it in reached["facts"].get("unordered_iters", ()):
                key = (reached["path"], it["line"])
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        path=reached["path"],
                        line=it["line"],
                        rule="A10",
                        message=(
                            f"unordered-container iteration feeds "
                            f"{s['name']} ({chain}); hash order varies "
                            f"across platforms and poisons the aggregate — "
                            f"iterate sorted keys or an ordered container"
                        ),
                        function=reached["name"],
                    )
                )


# ---------------------------------------------------------------------------


_CHECKS = {
    "A6": _check_a6,
    "A7": _check_a7,
    "A8": _check_a8,
    "A9": _check_a9,
    "A10": _check_a10,
}


def run_xtu_rules(summaries, config=None, only=None):
    """All A6-A10 findings over the merged summary index. `config` is the
    parsed hotpaths.json ({"hot_roots": [...], "boundaries": [...]});
    `only`, when set, restricts to that subset of rule ids."""
    index = _Index(summaries, config)
    findings: list = []
    for rule_id, check in _CHECKS.items():
        if only and rule_id not in only:
            continue
        check(index, findings)
    return findings
