"""Locate libclang and hand back a working `clang.cindex` module.

The analyzer must degrade to "skipped" (exit 77) on machines without
libclang -- developer laptops and minimal containers -- so every probing
failure here is swallowed and reported as unavailability, never raised.

Resolution order:
  1. `ZKA_LIBCLANG` env var: explicit path to the shared library.
  2. Whatever `clang.cindex` finds on its own (the `libclang` pip wheel
     bundles its own native library, so this is the CI path).
  3. A list of well-known distro sonames.
"""

from __future__ import annotations

import glob
import os
import re

# Newest first; the analyzer only uses API surface that has been stable
# since clang 10 (CursorKind/TypeKind enums, extents, tokens).
_CANDIDATE_LIBS = [
    "libclang.so",
    "libclang-19.so.1",
    "libclang.so.19",
    "libclang-18.so.1",
    "libclang.so.18",
    "libclang-17.so.1",
    "libclang.so.17",
    "libclang-16.so.1",
    "libclang.so.16",
    "libclang-15.so.1",
    "libclang.so.15",
    "libclang-14.so.1",
    "libclang.so.14",
    "libclang.so.1",
]


def _usable(cindex) -> bool:
    try:
        cindex.Index.create()
        return True
    except Exception:
        return False


def load_cindex():
    """Return the `clang.cindex` module with a loadable library, or None."""
    try:
        from clang import cindex
    except ImportError:
        return None

    override = os.environ.get("ZKA_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception:
            pass
        return cindex if _usable(cindex) else None

    if _usable(cindex):
        return cindex

    for name in _CANDIDATE_LIBS:
        try:
            cindex.Config.set_library_file(name)
        except Exception:
            # set_library_file refuses once a library is loaded; if one is
            # loaded, _usable() above already succeeded, so this only
            # triggers on exotic cindex versions -- give up cleanly.
            return None
        if _usable(cindex):
            return cindex
    return None


def resource_dir_args() -> list:
    """Extra parse args pointing at clang's builtin headers.

    The libclang pip wheel ships only the shared library; without the
    resource directory (stddef.h, stdarg.h, ...) every TU that touches a
    system header fails to parse. A distro clang tool (clang-tidy is
    installed in the CI lint job) provides one under /usr/lib. Returns []
    when none is found -- some libclang builds resolve it themselves.
    """
    override = os.environ.get("ZKA_CLANG_RESOURCE_DIR")
    if override:
        return ["-resource-dir", override]
    best, best_ver = None, ()
    for pattern in (
        "/usr/lib/llvm-*/lib/clang/*",
        "/usr/lib/clang/*",
        "/usr/local/lib/clang/*",
    ):
        for candidate in glob.glob(pattern):
            if not os.path.isfile(
                os.path.join(candidate, "include", "stddef.h")
            ):
                continue
            ver = tuple(
                int(x) for x in re.findall(r"\d+", os.path.basename(candidate))
            ) or (0,)
            if ver >= best_ver:
                best, best_ver = candidate, ver
    return ["-resource-dir", best] if best else []
