"""The five AST rules (A1-A5).

These are the semantic half of the repo's policy suite; the regex half
(R1-R6) lives in tools/check_invariants.py. Each rule is a small class
with `check(node, rel, func_stack) -> list[Finding]`, dispatched from a
single AST walk in engine.run_rules.

cindex pitfalls this file works around:
  * ImplicitCastExpr surfaces as UNEXPOSED_EXPR whose `.type` is the
    cast-TO type. The pre-conversion type lives one (or more) children
    down, so operand types are read through `peel()`.
  * Binary operator spellings are not exposed on the cursor; the
    operator token is found by scanning the tokens that sit between the
    two operand extents.
  * Macro bodies attribute their cursors to the expansion site, so
    token-level checks (rule A4) use `get_tokens()`, which reads the
    spelled source and therefore still sees macro names like ZKA_CHECK.

Known, deliberate limitations (documented in DESIGN.md): A1 does not
model call-argument conversions (the -Wdouble-promotion/-Wfloat-conversion
build flags own that half); A2 only tracks direct mutation of captured
scalars, not mutation through captured pointers; A3 only matches
arithmetic applied directly to a `Tensor::raw()`/`Tensor::data()` call
result, not pointers stored first.
"""

from __future__ import annotations

from engine import Finding

ALL_RULE_IDS = ("A1", "A2", "A3", "A4", "A5")

RULE_SUMMARIES = {
    "A1": "mixed-precision: implicit float<->double conversion",
    "A2": "parallel-ref-mutation: racy capture in parallel_for body",
    "A3": "raw-tensor-arith: pointer arithmetic on Tensor storage",
    "A4": "entry-contract: aggregate/craft without a contract check",
    "A5": "unordered-iteration: nondeterministic container order",
}


def build_rules(cindex, only=None):
    rules = [
        MixedPrecisionRule(cindex),
        ParallelRefMutationRule(cindex),
        RawTensorArithRule(cindex),
        EntryContractRule(cindex),
        UnorderedIterationRule(cindex),
    ]
    if only:
        rules = [r for r in rules if r.rule_id in only]
    return rules


# ---------------------------------------------------------------------------
# Shared cursor helpers


def peel(cindex, cursor):
    """Strip implicit-cast (UNEXPOSED_EXPR) and paren wrappers so `.type`
    reflects the expression as written, not post-conversion."""
    wrappers = (cindex.CursorKind.UNEXPOSED_EXPR, cindex.CursorKind.PAREN_EXPR)
    while cursor.kind in wrappers:
        children = list(cursor.get_children())
        if len(children) != 1:
            break
        cursor = children[0]
    return cursor


def float_class(cindex, type_obj) -> str | None:
    """'float' / 'double' / 'long double' for floating types (through
    references), else None."""
    canonical = type_obj.get_canonical()
    if canonical.kind in (
        cindex.TypeKind.LVALUEREFERENCE,
        cindex.TypeKind.RVALUEREFERENCE,
    ):
        canonical = canonical.get_pointee().get_canonical()
    return {
        cindex.TypeKind.FLOAT: "float",
        cindex.TypeKind.DOUBLE: "double",
        cindex.TypeKind.LONGDOUBLE: "long double",
    }.get(canonical.kind)


def binop_spelling(node) -> str:
    """The operator token of a binary/compound-assignment cursor: the first
    punctuation token between the operand extents. Empty when tokens are
    unavailable (e.g. fully macro-generated code)."""
    children = list(node.get_children())
    if len(children) != 2:
        return ""
    lhs, rhs = children
    lo = lhs.extent.end.offset
    hi = rhs.extent.start.offset
    for tok in node.get_tokens():
        off = tok.extent.start.offset
        if (
            lo <= off < hi
            and tok.kind.name == "PUNCTUATION"
            and tok.spelling not in ("(", ")")
        ):
            return tok.spelling
    return ""


def enclosing_function_name(func_stack) -> str:
    if not func_stack:
        return "*"
    node = func_stack[-1]
    parent = node.semantic_parent
    if parent is not None and parent.kind.is_declaration() and parent.spelling:
        qualifier = parent.spelling
        if qualifier not in ("", node.translation_unit.spelling):
            return f"{qualifier}::{node.spelling}"
    return node.spelling


def type_spelling_contains(cursor_type, needle: str) -> bool:
    return needle in cursor_type.get_canonical().spelling


# ---------------------------------------------------------------------------
# A1: mixed precision


class MixedPrecisionRule:
    """Implicit float<->double conversions in src/.

    The numeric policy requires every precision change to be spelled with
    an explicit cast so accumulation precision is visible at the call
    site (reductions accumulate in double on a float wire format; see
    DESIGN.md "Numeric policy")."""

    rule_id = "A1"

    _ARITH_OPS = frozenset({"+", "-", "*", "/", "=", "<", ">", "<=", ">=", "==", "!="})

    def __init__(self, cindex):
        self.cx = cindex

    def check(self, node, rel, func_stack):
        if not rel.startswith("src/"):
            return ()
        cx = self.cx
        kind = node.kind
        if kind == cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            return self._check_binary(node, rel, func_stack, compound=True)
        if kind == cx.CursorKind.BINARY_OPERATOR:
            return self._check_binary(node, rel, func_stack, compound=False)
        if kind == cx.CursorKind.VAR_DECL:
            return self._check_var_decl(node, rel, func_stack)
        return ()

    def _operand_classes(self, node):
        children = list(node.get_children())
        if len(children) != 2:
            return None
        cx = self.cx
        lhs, rhs = children
        lhs_cls = float_class(cx, peel(cx, lhs).type)
        rhs_cls = float_class(cx, peel(cx, rhs).type)
        return lhs_cls, rhs_cls

    def _check_binary(self, node, rel, func_stack, compound):
        classes = self._operand_classes(node)
        if classes is None:
            return ()
        lhs_cls, rhs_cls = classes
        if lhs_cls is None or rhs_cls is None or lhs_cls == rhs_cls:
            return ()
        op = binop_spelling(node)
        if not compound and op not in self._ARITH_OPS:
            return ()
        what = "accumulation" if compound or op == "=" else f"operand of '{op}'"
        return [
            Finding(
                path=rel,
                line=node.location.line,
                rule=self.rule_id,
                message=(
                    f"implicit {rhs_cls}<->{lhs_cls} {what}; spell the "
                    f"conversion with static_cast so the accumulation "
                    f"precision is explicit"
                ),
                function=enclosing_function_name(func_stack),
            )
        ]

    def _check_var_decl(self, node, rel, func_stack):
        cx = self.cx
        var_cls = float_class(cx, node.type)
        if var_cls is None:
            return ()
        children = [
            c
            for c in node.get_children()
            if c.kind.is_expression()
        ]
        if not children:
            return ()
        init_cls = float_class(cx, peel(cx, children[-1]).type)
        if init_cls is None or init_cls == var_cls:
            return ()
        return [
            Finding(
                path=rel,
                line=node.location.line,
                rule=self.rule_id,
                message=(
                    f"'{node.spelling}' is {var_cls} but its initializer is "
                    f"{init_cls}; spell the conversion with static_cast"
                ),
                function=enclosing_function_name(func_stack),
            )
        ]


# ---------------------------------------------------------------------------
# A2: racy mutation inside parallel_for bodies


class ParallelRefMutationRule:
    """ThreadPool::parallel_for shares ONE closure across all workers (the
    body is `const std::function&`), so any mutation of state declared
    outside the lambda races unless it is atomic or a per-index slot.
    Flags direct mutations of captured non-atomic variables, of members
    (through captured `this` or a captured object), and of pointees
    through captured pointers. Subscripted stores stay exempt as the
    sanctioned per-thread-slot pattern."""

    rule_id = "A2"

    def __init__(self, cindex):
        self.cx = cindex

    def check(self, node, rel, func_stack):
        cx = self.cx
        if node.kind != cx.CursorKind.CALL_EXPR:
            return ()
        callee = node.referenced
        if callee is None or callee.spelling != "parallel_for":
            return ()
        lam = self._find_lambda(node)
        if lam is None:
            return ()
        findings = []
        self._scan_body(lam, lam, rel, func_stack, findings)
        return findings

    def _find_lambda(self, node):
        cx = self.cx
        stack = list(node.get_children())
        while stack:
            cur = stack.pop()
            if cur.kind == cx.CursorKind.LAMBDA_EXPR:
                return cur
            stack.extend(cur.get_children())
        return None

    def _scan_body(self, node, lam, rel, func_stack, findings):
        cx = self.cx
        target = None
        if node.kind == cx.CursorKind.UNARY_OPERATOR:
            tokens = [t.spelling for t in node.get_tokens()]
            if "++" in tokens or "--" in tokens:
                children = list(node.get_children())
                target = children[0] if children else None
        elif node.kind == cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            children = list(node.get_children())
            target = children[0] if children else None
        elif node.kind == cx.CursorKind.BINARY_OPERATOR and binop_spelling(node) == "=":
            children = list(node.get_children())
            target = children[0] if children else None
        if target is not None:
            finding = self._classify_target(target, lam, rel, func_stack, node)
            if finding is not None:
                findings.append(finding)
        for child in node.get_children():
            self._scan_body(child, lam, rel, func_stack, findings)

    def _classify_target(self, target, lam, rel, func_stack, mutation):
        cx = self.cx
        target = peel(cx, target)
        if target.kind == cx.CursorKind.DECL_REF_EXPR:
            decl = target.referenced
            if decl is None or decl.kind != cx.CursorKind.VAR_DECL:
                return None
            if self._declared_inside(decl, lam):
                return None
            if type_spelling_contains(decl.type, "atomic"):
                return None
            return self._finding(decl.spelling, rel, func_stack, mutation)
        if target.kind == cx.CursorKind.MEMBER_REF_EXPR:
            # st.hits / this->count_ / implicit count_: the member lives on
            # an object captured by the shared closure.
            if type_spelling_contains(target.type, "atomic"):
                return None
            inner = list(target.get_children())
            if not inner:  # implicit this
                return self._finding(target.spelling, rel, func_stack, mutation)
            base = peel(cx, inner[0])
            if base.kind == cx.CursorKind.CXX_THIS_EXPR:
                return self._finding(
                    f"this->{target.spelling}", rel, func_stack, mutation
                )
            if base.kind == cx.CursorKind.DECL_REF_EXPR:
                decl = base.referenced
                if decl is None or self._declared_inside(decl, lam):
                    return None
                return self._finding(
                    f"{decl.spelling}.{target.spelling}", rel, func_stack, mutation
                )
            return None
        if target.kind == cx.CursorKind.UNARY_OPERATOR:
            # *p = ... through a captured pointer aliases shared storage.
            tokens = [t.spelling for t in target.get_tokens()]
            if not tokens or tokens[0] != "*":
                return None
            children = list(target.get_children())
            if not children:
                return None
            base = peel(cx, children[0])
            if base.kind != cx.CursorKind.DECL_REF_EXPR:
                return None
            decl = base.referenced
            if decl is None or decl.kind not in (
                cx.CursorKind.VAR_DECL,
                cx.CursorKind.PARM_DECL,
            ):
                return None
            if self._declared_inside(decl, lam):
                return None
            if type_spelling_contains(decl.type, "atomic"):
                return None
            return self._finding(f"*{decl.spelling}", rel, func_stack, mutation)
        # Subscripted stores (slots[i] = ...) remain the sanctioned
        # per-thread-slot pattern.
        return None

    def _finding(self, what, rel, func_stack, mutation):
        return Finding(
            path=rel,
            line=mutation.location.line,
            rule=self.rule_id,
            message=(
                f"'{what}' is declared outside this parallel_for "
                f"lambda and mutated inside it; the closure is shared by "
                f"every worker, so use std::atomic or a per-index slot"
            ),
            function=enclosing_function_name(func_stack),
        )

    @staticmethod
    def _declared_inside(decl, lam) -> bool:
        decl_file = decl.location.file
        lam_file = lam.extent.start.file
        if decl_file is None or lam_file is None or decl_file.name != lam_file.name:
            return False
        off = decl.location.offset
        return lam.extent.start.offset <= off <= lam.extent.end.offset


# ---------------------------------------------------------------------------
# A3: raw pointer arithmetic on Tensor storage


class RawTensorArithRule:
    """Pointer arithmetic applied directly to Tensor::raw()/data() outside
    src/tensor/ bypasses the ZKA_CHECK bounds layer; callers should slice
    with data().subspan(...) instead. src/tensor/ itself owns the raw
    layout and is exempt."""

    rule_id = "A3"

    _ACCESSORS = frozenset({"raw", "data"})

    def __init__(self, cindex):
        self.cx = cindex

    def check(self, node, rel, func_stack):
        cx = self.cx
        if rel.startswith("src/tensor/"):
            return ()
        if node.kind != cx.CursorKind.BINARY_OPERATOR:
            return ()
        op = binop_spelling(node)
        if op not in ("+", "-"):
            return ()
        for operand in node.get_children():
            operand = peel(cx, operand)
            if operand.kind != cx.CursorKind.CALL_EXPR:
                continue
            callee = operand.referenced
            if callee is None or callee.spelling not in self._ACCESSORS:
                continue
            parent = callee.semantic_parent
            if parent is None or parent.spelling != "Tensor":
                continue
            return [
                Finding(
                    path=rel,
                    line=node.location.line,
                    rule=self.rule_id,
                    message=(
                        f"pointer arithmetic on Tensor::{callee.spelling}() "
                        f"bypasses the bounds-checked span layer; slice with "
                        f"data().subspan(offset, count) instead"
                    ),
                    function=enclosing_function_name(func_stack),
                )
            ]
        return ()


# ---------------------------------------------------------------------------
# A4: contract check at aggregation/attack entry points


class EntryContractRule:
    """Every Aggregator::aggregate / Attack::craft override must establish
    its preconditions before touching updates: a validate_updates /
    validate_context call or a ZKA_CHECK* in the body. Token-level scan so
    macro names (erased from the AST) still count."""

    rule_id = "A4"

    _ENTRY_NAMES = frozenset({"aggregate", "do_aggregate", "craft"})
    _BASE_NAMES = frozenset({"Aggregator", "Attack"})
    _CONTRACT_TOKENS = frozenset(
        {
            "ZKA_CHECK",
            "ZKA_DCHECK",
            "ZKA_CHECK_SHAPE",
            "validate_updates",
            "validate_context",
        }
    )

    def __init__(self, cindex):
        self.cx = cindex

    def check(self, node, rel, func_stack):
        if not rel.startswith("src/"):
            return ()
        cx = self.cx
        if node.kind != cx.CursorKind.CXX_METHOD:
            return ()
        if node.spelling not in self._ENTRY_NAMES or not node.is_definition():
            return ()
        cls = node.semantic_parent
        if cls is None or not self._in_hierarchy(cls):
            return ()
        body = None
        for child in node.get_children():
            if child.kind == cx.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return ()
        for tok in body.get_tokens():
            if tok.spelling in self._CONTRACT_TOKENS:
                return ()
        return [
            Finding(
                path=rel,
                line=node.location.line,
                rule=self.rule_id,
                message=(
                    f"{cls.spelling}::{node.spelling} has no contract check; "
                    f"call validate_updates/validate_context (or ZKA_CHECK "
                    f"the preconditions) before using the inputs"
                ),
                function=f"{cls.spelling}::{node.spelling}",
            )
        ]

    def _in_hierarchy(self, cls) -> bool:
        if cls.spelling in self._BASE_NAMES:
            return True
        # Out-of-line definitions hand back the class *declaration*; base
        # specifiers only hang off the definition cursor.
        cls = cls.get_definition() or cls
        return self._derives(cls, set())

    def _derives(self, cls, seen) -> bool:
        cx = self.cx
        key = cls.get_usr()
        if key in seen:
            return False
        seen.add(key)
        for child in cls.get_children():
            if child.kind != cx.CursorKind.CXX_BASE_SPECIFIER:
                continue
            base = child.type.get_declaration()
            if base is None:
                continue
            if base.spelling in self._BASE_NAMES:
                return True
            base_def = base.get_definition()
            if base_def is not None and self._derives(base_def, seen):
                return True
        return False


# ---------------------------------------------------------------------------
# A5: iteration over unordered containers


class UnorderedIterationRule:
    """Range-for over std::unordered_map/unordered_set visits elements in a
    hash-dependent order, which varies across libstdc++ versions and
    poisons run-to-run determinism; iterate a sorted view instead."""

    rule_id = "A5"

    def __init__(self, cindex):
        self.cx = cindex

    def check(self, node, rel, func_stack):
        cx = self.cx
        if node.kind != cx.CursorKind.CXX_FOR_RANGE_STMT:
            return ()
        # The loop body is the last child; the range expression and the
        # implicit begin/end machinery come before it.
        children = list(node.get_children())
        if not children:
            return ()
        for child in children[:-1]:
            if self._mentions_unordered(child):
                return [
                    Finding(
                        path=rel,
                        line=node.location.line,
                        rule=self.rule_id,
                        message=(
                            "range-for over an unordered container; iteration "
                            "order is hash- and platform-dependent, which "
                            "breaks run-to-run determinism -- iterate sorted "
                            "keys or switch to an ordered container"
                        ),
                        function=enclosing_function_name(func_stack),
                    )
                ]
        return ()

    def _mentions_unordered(self, node) -> bool:
        spelling = node.type.get_canonical().spelling
        if "unordered_map<" in spelling or "unordered_set<" in spelling:
            return True
        return any(self._mentions_unordered(c) for c in node.get_children())
