"""AST analysis engine shared by the CLI and the fixture driver.

Responsibilities: load compile_commands.json entries, parse translation
units, walk every in-scope cursor through the rule set, and apply the
two suppression layers (inline `// zka-lint: allow(<rule>)` escapes and
the committed baseline file).

This module deliberately has no top-level `clang` import: it receives
the `cindex` module from clang_loader so it stays importable -- and the
exit-77 skip path stays reachable -- on machines without libclang.
"""

from __future__ import annotations

import json
import os
import re
import shlex
from dataclasses import dataclass

ALLOW_RE = re.compile(r"zka-lint:\s*allow\(([A-Za-z0-9-]+)\)")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ENV = 2
EXIT_SKIP = 77

# Repo-relative prefixes never analyzed: generated trees and the lint
# fixtures (which are violations on purpose).
DEFAULT_EXCLUDES = ("build/", "third_party/", "tools/zka_analyze/tests/")


@dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes (virtual path in fixtures)
    line: int
    rule: str  # "A1".."A5"
    message: str
    function: str = "*"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule: str
    function: str  # "*" matches any enclosing function
    max_count: int
    lineno: int  # line in baseline.txt, for stale-entry reporting

    def render(self) -> str:
        return f"{self.path}|{self.rule}|{self.function}|{self.max_count}"


@dataclass
class CompileCommand:
    file: str  # absolute, realpath'd
    directory: str
    args: list


# ---------------------------------------------------------------------------
# compile_commands.json


def load_compile_commands(path: str) -> list[CompileCommand]:
    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    commands = []
    for entry in entries:
        directory = entry.get("directory", ".")
        file_path = entry["file"]
        if not os.path.isabs(file_path):
            file_path = os.path.join(directory, file_path)
        file_path = os.path.realpath(file_path)
        if "arguments" in entry:
            raw = list(entry["arguments"])
        else:
            raw = shlex.split(entry["command"])
        commands.append(
            CompileCommand(
                file=file_path,
                directory=directory,
                args=_clean_args(raw, file_path),
            )
        )
    return commands


def _clean_args(raw: list, file_path: str) -> list:
    """Keep the flags libclang needs (-I/-D/-std/...), drop the compiler
    invocation mechanics (-c, -o, dependency-file flags, the source)."""
    args = []
    skip_next = False
    for i, arg in enumerate(raw):
        if i == 0:  # the compiler executable itself
            continue
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ", "-Xclang", "--serialize-diagnostics"):
            skip_next = True
            continue
        if arg in ("-c", "-MD", "-MMD", "-MP"):
            continue
        if not arg.startswith("-"):
            if os.path.realpath(os.path.join(".", arg)) == file_path or os.path.basename(
                arg
            ) == os.path.basename(file_path):
                continue
        args.append(arg)
    return args


# ---------------------------------------------------------------------------
# Parsing and rule dispatch


class AnalysisError(Exception):
    """Environment-level failure (unparsable TU); maps to exit code 2."""


def parse_tu(cindex, index, file_path: str, args: list, directory: str | None = None):
    """Parse one TU; raises AnalysisError on hard parse failure."""
    full_args = list(args)
    if directory:
        full_args.append("-working-directory=" + directory)
    # The build owns warnings; the analyzer only cares about its own rules.
    full_args.append("-Wno-everything")
    try:
        tu = index.parse(file_path, args=full_args)
    except Exception as exc:  # TranslationUnitLoadError has no useful payload
        raise AnalysisError(f"{file_path}: libclang failed to parse: {exc}") from exc
    errors = [
        d
        for d in tu.diagnostics
        if d.severity >= cindex.Diagnostic.Error
    ]
    if errors:
        detail = "; ".join(f"{d.location.line}: {d.spelling}" for d in errors[:5])
        raise AnalysisError(f"{file_path}: parse errors: {detail}")
    return tu


class Scope:
    """Maps cursors to repo-relative paths and decides what is in scope.

    `path_map` rewrites real files to virtual paths (fixture mode: a file
    under tools/zka_analyze/tests/ pretends to live under src/ so the
    path-scoped rules fire). `restrict_to`, when non-empty, limits
    analysis to exactly those real files.
    """

    def __init__(self, repo_root, path_map=None, restrict_to=None, excludes=DEFAULT_EXCLUDES):
        self.repo_root = os.path.realpath(repo_root)
        self.path_map = {os.path.realpath(k): v for k, v in (path_map or {}).items()}
        self.restrict_to = {os.path.realpath(p) for p in (restrict_to or ())} or None
        self.excludes = excludes
        self._cache: dict = {}

    def rel_path(self, cursor) -> str | None:
        loc_file = cursor.location.file
        if loc_file is None:
            return None
        name = loc_file.name
        cached = self._cache.get(name, False)
        if cached is not False:
            return cached
        real = os.path.realpath(name)
        rel = None
        if self.restrict_to is not None and real not in self.restrict_to:
            rel = None
        elif real in self.path_map:
            rel = self.path_map[real]
        elif real.startswith(self.repo_root + os.sep):
            candidate = os.path.relpath(real, self.repo_root).replace(os.sep, "/")
            if not candidate.startswith(self.excludes):
                rel = candidate
        self._cache[name] = rel
        return rel


def run_rules(cindex, tu, scope: Scope, rules, extractor=None) -> list[Finding]:
    """Single pre-order walk; every in-scope cursor visits every rule.

    `extractor`, when given, is a summary.SummaryExtractor: it sees every
    in-scope cursor alongside the rules and distills the phase-1
    per-function facts for the cross-TU rules (A6-A10) in the same pass.
    """
    findings: list[Finding] = []
    func_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }
    func_stack: list = []

    def visit(node):
        entered = False
        if node.kind in func_kinds and node.is_definition():
            func_stack.append(node)
            entered = True
        rel = scope.rel_path(node)
        if rel is not None:
            for rule in rules:
                hits = rule.check(node, rel, func_stack)
                if hits:
                    findings.extend(hits)
            if extractor is not None:
                extractor.visit(node, rel, func_stack)
        for child in node.get_children():
            visit(child)
        if entered:
            func_stack.pop()

    visit(tu.cursor)
    return findings


def dedupe(findings) -> list[Finding]:
    """Headers are parsed once per including TU; collapse repeats and give
    the output a stable order."""
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule, f.message))


# ---------------------------------------------------------------------------
# Suppression: inline escapes, then baseline


def filter_allows(findings, line_provider):
    """Drop findings escaped by `// zka-lint: allow(<rule>)` on the finding
    line or the line above (same convention as tools/check_invariants.py).

    `line_provider(path)` returns the file's lines (or None if unreadable).
    Returns (kept_findings, used_escape_locations) where the second item is
    a set of (path, lineno_0based) marking escapes that suppressed something.
    """
    kept = []
    used = set()
    for f in findings:
        lines = line_provider(f.path)
        suppressed = False
        if lines:
            idx = f.line - 1
            for probe in (idx, idx - 1):
                if 0 <= probe < len(lines) and f.rule in ALLOW_RE.findall(lines[probe]):
                    used.add((f.path, probe))
                    suppressed = True
        if not suppressed:
            kept.append(f)
    return kept, used


def find_unused_allows(analyzed_paths, line_provider, used, rule_ids):
    """Escapes naming an analyzer rule that suppressed nothing, in files the
    analyzer actually walked. Reported so dead escapes cannot accumulate."""
    unused = []
    for path in sorted(analyzed_paths):
        lines = line_provider(path)
        if not lines:
            continue
        for idx, line in enumerate(lines):
            for rule in ALLOW_RE.findall(line):
                if rule in rule_ids and (path, idx) not in used:
                    unused.append(f"{path}:{idx + 1}: unused escape allow({rule})")
    return unused


# ---------------------------------------------------------------------------
# Baseline


def load_baseline(path: str) -> list[BaselineEntry]:
    entries = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) != 4:
                raise ValueError(
                    f"{path}:{lineno}: expected 'path|rule|function|max_count', got {line!r}"
                )
            entries.append(
                BaselineEntry(
                    path=parts[0].strip(),
                    rule=parts[1].strip(),
                    function=parts[2].strip(),
                    max_count=int(parts[3]),
                    lineno=lineno,
                )
            )
    return entries


def apply_baseline(findings, entries):
    """Absorb findings into baseline entries (first matching entry with
    headroom wins). Returns (remaining_findings, stale_entries); an entry
    that absorbed nothing is stale and should be deleted, never grown."""
    used = {id(e): 0 for e in entries}
    remaining = []
    for f in findings:
        matched = None
        for e in entries:
            if (
                e.path == f.path
                and e.rule == f.rule
                and (e.function == "*" or e.function == f.function)
                and used[id(e)] < e.max_count
            ):
                matched = e
                break
        if matched is not None:
            used[id(matched)] += 1
        else:
            remaining.append(f)
    stale = [e for e in entries if used[id(e)] == 0]
    return remaining, stale
