#!/usr/bin/env python3
"""Repo-invariant lint for the ZKA codebase.

Enforces the cross-cutting rules that keep runs reproducible and the
numeric policy coherent -- the invariants that a compiler cannot check
and that code review keeps re-litigating:

  R1 rng-source            All randomness flows through util/rng
                           (std::rand, std::random_device, raw std
                           engines like std::mt19937, and wall-clock
                           seeding make runs irreproducible or
                           unsplittable).
  R2 threading-primitives  All parallelism flows through util/thread_pool
                           (raw std::thread / OpenMP would break the
                           fixed-block determinism guarantees and the
                           nesting-safety protocol).
  R3 float32-kernel-precision
                           The GEMM/conv hot-path kernels accumulate in
                           float32 by policy; double accumulation belongs
                           in the reduce toolkit, which owns the
                           fixed-association double path.
  R4 sort-network-strict-fp
                           The column-sort network pads tiles with +inf
                           and relies on IEEE min/max ordering, so no
                           build file may enable -ffast-math family
                           flags, and the sort/reduce kernels must not
                           use std::fmin/fmax (different NaN semantics
                           than the comparator the network needs).
  R5 defense-raw-reduce    Defense aggregators must not hand-roll
                           multiply-accumulate reductions over updates;
                           tensor::dot / squared_norm / squared_distance
                           / axpy / weighted_sum own the accumulation
                           order (and hence bitwise determinism).
  R6 prof-timing           Library code must not read clocks directly
                           (std::chrono, clock_gettime, ...); timing goes
                           through util/prof (scoped timers + now_ns),
                           which is the single switchable, mergeable
                           source of timing truth.

A line can opt out with a trailing or preceding comment:

    // zka-lint: allow(rule-name) -- justification

Escape hygiene is enforced too: an allow() naming an unknown rule is an
error, and an allow() for an R-rule that no longer suppresses anything
is an error (dead escapes must be deleted, not accumulate). Escapes for
the AST rules A1-A10 are name-validated only here; their usage is
checked by tools/zka_analyze, which owns those rules.

Runs from the repo root (CMake registers it as the `check_invariants`
test); exits non-zero and prints `path:line: [rule] message` per hit.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CXX_EXTS = {".cpp", ".h", ".inl"}
SCAN_ROOTS = ["src", "tests", "bench", "examples", "tools"]
# Never scanned: the zka_analyze fixtures are deliberate violations with
# their own expectations and driver.
DENY_ROOTS = ("tools/zka_analyze/tests",)

ALLOW_RE = re.compile(r"zka-lint:\s*allow\(([A-Za-z0-9-]+)\)")

# Rules owned by tools/zka_analyze (AST-level); escapes naming them are
# validated here but their usage is checked by the analyzer itself.
FOREIGN_RULES = {
    "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10",
    "A11", "A12", "A13", "A14", "A15",
}

TRUST_JSON = REPO / "tools" / "zka_analyze" / "trust.json"


def cxx_files(root: Path):
    if not root.exists():
        return
    for path in sorted(root.rglob("*")):
        if path.suffix in CXX_EXTS and path.is_file():
            rel = path.relative_to(REPO).as_posix()
            if rel.startswith(DENY_ROOTS):
                continue
            yield path


def strip_comments(text: str) -> list[str]:
    """Return the file's lines with // and /* */ comments blanked out.

    Keeps line numbering intact so findings map back to the real file.
    String literals are not parsed; the rule patterns below do not
    plausibly occur inside strings in this codebase.
    """
    out = []
    in_block = False
    for line in text.splitlines():
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash != -1 and (block == -1 or slash < block):
                    result.append(line[i:slash])
                    i = len(line)
                elif block != -1:
                    result.append(line[i:block])
                    in_block = True
                    i = block + 2
                else:
                    result.append(line[i:])
                    i = len(line)
        out.append("".join(result))
    return out


class Rule:
    def __init__(self, name, pattern, message, includes=None, excludes=()):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.includes = includes  # None = every scanned C++ file
        self.excludes = excludes

    def applies_to(self, rel: str) -> bool:
        if any(re.search(e, rel) for e in self.excludes):
            return False
        if self.includes is None:
            return True
        return any(re.search(i, rel) for i in self.includes)


RULES = [
    Rule(
        "rng-source",
        r"std::rand\b|\brand\s*\(|\bsrand\s*\(|std::random_device"
        r"|std::mt19937\b|std::default_random_engine\b|std::minstd_rand\b"
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)",
        "randomness must come from util/rng (seeded, splittable); "
        "std::rand / random_device / wall-clock seeds are irreproducible",
        excludes=(r"^src/util/rng\.",),
    ),
    Rule(
        "threading-primitives",
        r"#\s*pragma\s+omp\b|\bomp_[a-z_]+\s*\(|std::j?thread\b"
        r"|\bpthread_create\b",
        "parallelism must go through util/thread_pool (fixed-block "
        "deterministic splits, re-entrancy protocol); no raw threads/OpenMP",
        excludes=(r"^src/util/thread_pool\.",),
    ),
    Rule(
        "float32-kernel-precision",
        r"\bdouble\b",
        "GEMM/conv hot-path kernels accumulate in float32 by policy; "
        "double accumulation belongs in the reduce toolkit",
        includes=(
            r"^src/tensor/gemm_kernels",
            r"^src/tensor/ops\.cpp$",
        ),
    ),
    Rule(
        "sort-network-strict-fp",
        r"std::fmin\b|std::fmax\b|\bfminf?\s*\(|\bfmaxf?\s*\(",
        "the column-sort network needs IEEE comparator semantics "
        "(+inf padding, signed-zero order); fmin/fmax have different "
        "NaN behavior than the min/max sweeps it is built on",
        includes=(r"^src/tensor/reduce",),
    ),
    Rule(
        "prof-timing",
        r"std::chrono\b|\bsteady_clock\b|\bsystem_clock\b"
        r"|\bhigh_resolution_clock\b|\bclock_gettime\b|\bgettimeofday\b",
        "library code must not read clocks directly; use util/prof "
        "(ZKA_PROF_SCOPE / util::prof::now_ns), the single switchable "
        "timing source",
        includes=(r"^src/", r"^bench/"),
        excludes=(r"^src/util/prof\.",),
    ),
    Rule(
        "defense-raw-reduce",
        r"\+=\s*[^;=\n]*\*",
        "defense aggregators must not hand-roll multiply-accumulate "
        "loops; use tensor::dot/squared_norm/squared_distance/axpy/"
        "weighted_sum, which own the accumulation order",
        includes=(r"^src/defense/.*\.cpp$",),
    ),
]

# R4's build-file half: the -ffast-math family is banned everywhere (it
# would let the compiler reassociate the fixed-order reductions and
# outlaws the +inf tile padding in the sort network).
FASTMATH_RE = re.compile(r"-ffast-math|-ffinite-math-only|-funsafe-math")


def lint_cxx() -> list[str]:
    findings = []
    known_rules = {r.name for r in RULES}
    # (rel, line_idx, rule) for every escape comment, and the subset that
    # actually suppressed a finding -- the difference is dead weight.
    escapes: list[tuple[str, int, str]] = []
    used_escapes: set[tuple[str, int, str]] = set()
    for root_name in SCAN_ROOTS:
        for path in cxx_files(REPO / root_name):
            rel = path.relative_to(REPO).as_posix()
            raw_lines = path.read_text(encoding="utf-8").splitlines()
            for idx, line in enumerate(raw_lines):
                for name in ALLOW_RE.findall(line):
                    escapes.append((rel, idx, name))
            rules = [r for r in RULES if r.applies_to(rel)]
            if not rules:
                continue
            code_lines = strip_comments("\n".join(raw_lines))
            for idx, code in enumerate(code_lines):
                for rule in rules:
                    if not rule.pattern.search(code):
                        continue
                    suppressed = False
                    for probe in (idx, idx - 1):
                        if 0 <= probe < len(raw_lines) and rule.name in ALLOW_RE.findall(
                            raw_lines[probe]
                        ):
                            used_escapes.add((rel, probe, rule.name))
                            suppressed = True
                    if suppressed:
                        continue
                    findings.append(
                        f"{rel}:{idx + 1}: [{rule.name}] {rule.message}\n"
                        f"    {raw_lines[idx].strip()}"
                    )
    for rel, idx, name in escapes:
        if name in FOREIGN_RULES:
            continue  # usage checked by tools/zka_analyze
        if name not in known_rules:
            findings.append(
                f"{rel}:{idx + 1}: [escape-hygiene] allow({name}) names no "
                f"known rule (R-rules: {', '.join(sorted(known_rules))}; "
                f"AST rules: {', '.join(sorted(FOREIGN_RULES))})"
            )
        elif (rel, idx, name) not in used_escapes:
            findings.append(
                f"{rel}:{idx + 1}: [escape-hygiene] allow({name}) suppresses "
                f"nothing; delete the dead escape"
            )
    return findings


def lint_build_files() -> list[str]:
    findings = []
    build_files = sorted(REPO.rglob("CMakeLists.txt"))
    presets = REPO / "CMakePresets.json"
    if presets.exists():
        build_files.append(presets)
    for path in build_files:
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(("build", ".git")):
            continue
        for idx, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
            if FASTMATH_RE.search(line) and "zka-lint: allow" not in line:
                findings.append(
                    f"{rel}:{idx + 1}: [sort-network-strict-fp] the fast-math "
                    f"flag family is banned (reassociates fixed-order "
                    f"reductions, outlaws the sort network's +inf padding)\n"
                    f"    {line.strip()}"
                )
    return findings


def lint_trust_config() -> list[str]:
    """tools/zka_analyze/trust.json must stay anchored to real code: a
    taint source or sanitizer naming a function that no longer exists
    silently turns its A11-A15 coverage off, which is exactly the failure
    mode a trust declaration exists to prevent. Every declared entry,
    parameter name and sanitizer must occur as an identifier somewhere in
    src/, and every sink-scope prefix must match a real path."""
    import json

    rel = TRUST_JSON.relative_to(REPO).as_posix()
    if not TRUST_JSON.exists():
        return [f"{rel}: [trust-config] file is missing"]
    try:
        data = json.loads(TRUST_JSON.read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"{rel}: [trust-config] unparseable JSON: {exc}"]

    idents: set[str] = set()
    for path in cxx_files(REPO / "src"):
        idents.update(
            re.findall(r"[A-Za-z_][A-Za-z0-9_]*", path.read_text(encoding="utf-8"))
        )

    findings = []

    def check_symbol(name: str, what: str) -> None:
        last = name.rsplit("::", 1)[-1]
        if last not in idents:
            findings.append(
                f"{rel}: [trust-config] {what} '{name}' resolves to no "
                f"identifier in src/; fix the name or delete the entry"
            )

    for src in data.get("sources", []):
        entry = src.get("entry")
        if not entry:
            findings.append(f"{rel}: [trust-config] source without an 'entry'")
            continue
        check_symbol(entry, "source entry")
        if src.get("what") not in (None, "params", "return"):
            findings.append(
                f"{rel}: [trust-config] source '{entry}' has unknown "
                f"what={src['what']!r} (use 'params' or 'return')"
            )
        for pname in src.get("params") or []:
            check_symbol(pname, f"source '{entry}' parameter")
    for sn in data.get("sanitizers", []):
        fn = sn.get("function")
        if not fn:
            findings.append(f"{rel}: [trust-config] sanitizer without a 'function'")
            continue
        check_symbol(fn, "sanitizer")
    scope = data.get("sink_scope") or {}
    for field in ("include", "exclude"):
        for prefix in scope.get(field, []):
            if not (REPO / prefix).exists():
                findings.append(
                    f"{rel}: [trust-config] sink_scope {field} prefix "
                    f"'{prefix}' matches no path in the repo"
                )
    return findings


def main() -> int:
    findings = lint_cxx() + lint_build_files() + lint_trust_config()
    if findings:
        print(f"check_invariants: {len(findings)} violation(s)\n")
        for f in findings:
            print(f)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
