#!/usr/bin/env python3
"""Compare two BENCH_*.json files (schema zka-bench-v1) with a tolerance.

Usage:
  tools/bench_diff.py BASELINE.json CANDIDATE.json [--tolerance 0.10]
      [--metric-tolerance 0.0] [--missing-ok]
  tools/bench_diff.py --validate FILE.json [FILE.json ...]

Compare mode exits 1 when any shared label's ns/op mean regressed by more
than --tolerance (relative), or when a metric differs by more than
--metric-tolerance (relative; only checked when the flag is given a value
> 0 — domain metrics such as ASR are stochastic at bench scale). Labels
present in only one file are reported; with --missing-ok they do not fail
the comparison. A label introduced by the change under test should be
declared with --seed-label: it is reported as seeded and never fails,
without loosening the check for every other unshared label the way
--missing-ok does.

Validate mode checks the zka-bench-v1 schema shape and exits 1 on the
first malformed file. No third-party dependencies.
"""

import argparse
import json
import sys

SCHEMA = "zka-bench-v1"
NS_KEYS = ("mean", "min", "max", "p50", "stddev")


def fail(msg: str) -> None:
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value is not an object")
    return doc


def validate(path: str, doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key, kind in (("bench", str), ("git_rev", str), ("config", dict),
                      ("entries", list), ("prof", dict)):
        if not isinstance(doc.get(key), kind):
            fail(f"{path}: missing or mistyped field {key!r}")
    for i, entry in enumerate(doc["entries"]):
        where = f"{path}: entries[{i}]"
        if not isinstance(entry, dict) or not isinstance(
                entry.get("label"), str):
            fail(f"{where}: missing label")
        ns = entry.get("ns_op")
        if not isinstance(ns, dict):
            fail(f"{where}: missing ns_op")
        for key in NS_KEYS:
            if not isinstance(ns.get(key), (int, float)):
                fail(f"{where}: ns_op.{key} missing or not a number")
        if "metrics" in entry and not isinstance(entry["metrics"], dict):
            fail(f"{where}: metrics is not an object")
    prof = doc["prof"]
    if not isinstance(prof.get("counters"), dict) or not isinstance(
            prof.get("summary"), list):
        fail(f"{path}: prof block malformed")


def entries_by_label(doc: dict) -> dict:
    out = {}
    for entry in doc["entries"]:
        out[entry["label"]] = entry
    return out


def rel_delta(base: float, cand: float) -> float:
    if base == 0.0:
        return 0.0 if cand == 0.0 else float("inf")
    return (cand - base) / abs(base)


def compare(args: argparse.Namespace) -> int:
    base_doc, cand_doc = load(args.baseline), load(args.candidate)
    validate(args.baseline, base_doc)
    validate(args.candidate, cand_doc)
    if base_doc["bench"] != cand_doc["bench"]:
        fail(f"bench names differ: {base_doc['bench']!r} vs "
             f"{cand_doc['bench']!r}")
    if base_doc["config"] != cand_doc["config"]:
        print("bench_diff: WARNING: configs differ; timings may not be "
              "comparable", file=sys.stderr)
        for key in sorted(set(base_doc["config"]) | set(cand_doc["config"])):
            b = base_doc["config"].get(key)
            c = cand_doc["config"].get(key)
            if b != c:
                print(f"  config.{key}: {b!r} -> {c!r}", file=sys.stderr)

    base, cand = entries_by_label(base_doc), entries_by_label(cand_doc)
    failures = []
    seed_labels = frozenset(args.seed_label)
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base) - seed_labels)
    for label in only_base:
        print(f"  only in baseline:  {label}")
    for label in only_cand:
        print(f"  only in candidate: {label}")
    for label in sorted((set(cand) - set(base)) & seed_labels):
        print(f"  seeded (new benchmark): {label}")
    for label in sorted(seed_labels & set(base)):
        print(f"bench_diff: WARNING: --seed-label {label} already exists "
              f"in the baseline; it is compared normally", file=sys.stderr)
    if (only_base or only_cand) and not args.missing_ok:
        failures.append(f"{len(only_base) + len(only_cand)} label(s) not "
                        "shared (pass --missing-ok to allow, or "
                        "--seed-label for benchmarks this change adds)")

    for label in sorted(set(base) & set(cand)):
        b_ns = base[label]["ns_op"]["mean"]
        c_ns = cand[label]["ns_op"]["mean"]
        delta = rel_delta(b_ns, c_ns)
        marker = ""
        if delta > args.tolerance:
            marker = "  REGRESSION"
            failures.append(
                f"{label}: ns/op mean {b_ns:.0f} -> {c_ns:.0f} "
                f"(+{delta * 100.0:.1f}% > {args.tolerance * 100.0:.1f}%)")
        print(f"  {label}: ns/op {b_ns:.0f} -> {c_ns:.0f} "
              f"({delta * 100.0:+.1f}%){marker}")
        if args.metric_tolerance > 0.0:
            b_m = base[label].get("metrics", {})
            c_m = cand[label].get("metrics", {})
            for key in sorted(set(b_m) & set(c_m)):
                if b_m[key] is None or c_m[key] is None:
                    continue
                m_delta = abs(rel_delta(b_m[key], c_m[key]))
                if m_delta > args.metric_tolerance:
                    failures.append(
                        f"{label}: metric {key} {b_m[key]:.4f} -> "
                        f"{c_m[key]:.4f} (|{m_delta * 100.0:.1f}%| > "
                        f"{args.metric_tolerance * 100.0:.1f}%)")

    if failures:
        print(f"\nbench_diff: FAIL ({len(failures)} issue(s)):")
        for item in failures:
            print(f"  - {item}")
        return 1
    print(f"\nbench_diff: OK ({len(set(base) & set(cand))} label(s) within "
          f"{args.tolerance * 100.0:.1f}%)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="baseline + candidate, or files to --validate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative ns/op regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--metric-tolerance", type=float, default=0.0,
                        help="allowed relative metric drift; 0 disables "
                             "metric checks (default)")
    parser.add_argument("--missing-ok", action="store_true",
                        help="labels present in only one file do not fail")
    parser.add_argument("--seed-label", nargs="+", default=[],
                        metavar="LABEL",
                        help="benchmark labels introduced by this change: "
                             "candidate-only by construction, never a "
                             "failure")
    parser.add_argument("--validate", action="store_true",
                        help="only check schema validity of the given files")
    args = parser.parse_args()

    if args.validate:
        for path in args.files:
            validate(path, load(path))
            print(f"bench_diff: {path}: valid {SCHEMA}")
        return 0
    if len(args.files) != 2:
        parser.error("compare mode takes exactly BASELINE and CANDIDATE")
    args.baseline, args.candidate = args.files
    return compare(args)


if __name__ == "__main__":
    sys.exit(main())
