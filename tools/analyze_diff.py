#!/usr/bin/env python3
"""Compare two zka_analyze --json payloads and fail on per-rule growth.

Usage:
  tools/analyze_diff.py PREVIOUS.json CURRENT.json [--missing-ok]

CI runs the analyzer with --json on every push and uploads the payload as
an artifact; this tool diffs the per-rule finding counts of the current
run against the previous run's artifact. Any rule whose total `found`
count (pre-baseline, so baselined debt is tracked too) or surviving
`remaining` count grew is a regression and exits 1 -- static-analysis
debt may only shrink, mirroring the shrink-only baseline contract.

A rule present in the current payload but absent from the previous one is
NOT treated as growth from zero: either it was declared with --seed-rule
(a new rule landing in this change, seeded at its current counts) or the
diff fails explicitly -- a silently-appearing rule is a misconfigured
gate, not a phantom regression.

With --missing-ok (or when PREVIOUS.json does not exist) the comparison
passes trivially: the first run on a branch has nothing to diff against.
No third-party dependencies.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"analyze_diff: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("per_rule"), dict):
        fail(f"{path}: not a zka_analyze --json payload (missing per_rule)")
    return doc


def counts(doc: dict) -> dict:
    out = {}
    for rule, block in doc["per_rule"].items():
        out[rule] = (int(block.get("found", 0)), int(block.get("remaining", 0)))
    return out


def compare(prev_path: str, cur_path: str, seed_rules=()) -> int:
    prev, cur = counts(load(prev_path)), counts(load(cur_path))
    regressions = []
    for rule in sorted(set(prev) | set(cur), key=lambda r: (len(r), r)):
        c_found, c_rem = cur.get(rule, (0, 0))
        if rule not in prev:
            if rule in seed_rules:
                # A rule introduced by this change: its current counts are
                # the seed baseline, not growth from zero.
                print(
                    f"  {rule}: found {c_found}, remaining {c_rem}  "
                    f"SEEDED (new rule)"
                )
                continue
            regressions.append(
                f"{rule}: absent from previous payload; pass "
                f"--seed-rule {rule} when introducing a new rule"
            )
            print(f"  {rule}: found ? -> {c_found}  NEW RULE (unseeded)")
            continue
        p_found, p_rem = prev[rule]
        marker = ""
        if c_found > p_found or c_rem > p_rem:
            marker = "  REGRESSION"
            regressions.append(
                f"{rule}: found {p_found} -> {c_found}, "
                f"remaining {p_rem} -> {c_rem}"
            )
        print(
            f"  {rule}: found {p_found} -> {c_found}, "
            f"remaining {p_rem} -> {c_rem}{marker}"
        )

    if regressions:
        print(f"\nanalyze_diff: FAIL ({len(regressions)} rule(s) grew):")
        for item in regressions:
            print(f"  - {item}")
        return 1
    print(f"\nanalyze_diff: OK (no per-rule growth across {len(cur)} rule(s))")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", help="prior run's --json payload")
    parser.add_argument("current", help="this run's --json payload")
    parser.add_argument(
        "--missing-ok",
        action="store_true",
        help="pass when the previous payload does not exist (first run)",
    )
    parser.add_argument(
        "--seed-rule",
        nargs="+",
        default=[],
        metavar="RULE",
        help="rules introduced by this change: absent from the previous "
        "payload by construction, seeded at their current counts",
    )
    args = parser.parse_args()

    try:
        with open(args.previous, "r", encoding="utf-8"):
            pass
    except OSError:
        if args.missing_ok:
            print(
                f"analyze_diff: no previous payload at {args.previous}; "
                f"nothing to compare"
            )
            return 0
        fail(f"{args.previous}: not found (pass --missing-ok for first runs)")
    return compare(args.previous, args.current, frozenset(args.seed_rule))


if __name__ == "__main__":
    sys.exit(main())
