// Reduction/axpy kernel bodies, compiled once per ISA tier.
//
// Including TU must define ZKA_REDUCE_NS to the tier's namespace name
// (generic / avx2 / avx512) and is compiled with the matching -m flags.
// Do not include this anywhere else.
//
// Accumulation scheme (identical for every tier):
//   * kReduceLanes (= L) independent double accumulators; element i of the
//     main body feeds lane i % L, walking the input in stride-L blocks so
//     the compiler vectorizes the lane update without reassociating,
//   * lanes are combined lane-ascending into one scalar,
//   * the n % L tail is appended index-ascending after the lane combine.
// The order never depends on n's alignment, the tier only changes vector
// width (and FMA contraction), and there is no threading in here at all —
// callers parallelize over rows/blocks above (see reduce.h).

#include <cstddef>

#if defined(__SSE__)
#include <immintrin.h>
#endif

#include "tensor/reduce_dispatch.h"

namespace zka::tensor::detail {
namespace ZKA_REDUCE_NS {
namespace {

constexpr std::size_t L = kReduceLanes;

double dot_ff(const float* a, const float* b, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      lanes[l] +=
          static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double dot_dd(const double* a, const double* b, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double sqnorm_f(const float* a, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      const double v = static_cast<double>(a[i + l]);
      lanes[l] += v * v;
    }
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) {
    const double v = static_cast<double>(a[i]);
    acc += v * v;
  }
  return acc;
}

double sqdist_ff(const float* a, const float* b, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      const double d =
          static_cast<double>(a[i + l]) - static_cast<double>(b[i + l]);
      lanes[l] += d * d;
    }
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double sqdist_fd(const float* a, const double* b, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      const double d = static_cast<double>(a[i + l]) - b[i + l];
      lanes[l] += d * d;
    }
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double sqdist_dd(const double* a, const double* b, std::size_t n) {
  double lanes[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      const double d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  }
  double acc = 0.0;
  for (std::size_t l = 0; l < L; ++l) acc += lanes[l];
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// The axpy family is elementwise (one accumulator per output element), so
// its result is association-free; the loops exist per tier purely so the
// compiler emits full-width converts/FMAs.
void axpy_fd(double alpha, const float* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * static_cast<double>(x[i]);
  }
}

void axpy_dd(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// Elementwise y[i] += x[i] * s[i] — the inner fold of the JL sign-sketch
// (s is a ±1 pattern, but the kernel is a general elementwise FMA). Like
// the axpy family it carries one accumulator per output element, so the
// result is association-free; tiers differ only in vector width and FMA
// contraction.
void fmadd_ffd(const float* x, const float* s, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += static_cast<double>(x[i]) * static_cast<double>(s[i]);
  }
}

// Sorting-network comparator over two tile rows: a[i] <- min, b[i] <- max,
// elementwise. Branch-free and association-free, so tiers differ only in
// vector width. This is the one kernel written with explicit intrinsics:
// `x < y ? x : y` on floats cannot be auto-vectorized to min/max without
// -ffinite-math-only (the compiler must preserve signed-zero ordering),
// and callers pad their tiles with +inf, which that flag would outlaw.
// The ISA branch keys on the compiler macros the tier's -m flags define,
// so the one body still compiles once per tier like everything else.
// GCC 12's _mm512_min_ps/_mm512_max_ps expand _mm512_undefined_ps(),
// whose self-initialized temporary trips -Wmaybe-uninitialized through
// inlining (GCC bug 105593). Nothing uninitialized is actually read.
#if defined(__AVX512F__) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void cmpx_rows(float* a, float* b, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m512 x = _mm512_loadu_ps(a + i);
    const __m512 y = _mm512_loadu_ps(b + i);
    _mm512_storeu_ps(a + i, _mm512_min_ps(x, y));
    _mm512_storeu_ps(b + i, _mm512_max_ps(x, y));
  }
#elif defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(a + i);
    const __m256 y = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(a + i, _mm256_min_ps(x, y));
    _mm256_storeu_ps(b + i, _mm256_max_ps(x, y));
  }
#elif defined(__SSE__)
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(a + i);
    const __m128 y = _mm_loadu_ps(b + i);
    _mm_storeu_ps(a + i, _mm_min_ps(x, y));
    _mm_storeu_ps(b + i, _mm_max_ps(x, y));
  }
#endif
  for (; i < n; ++i) {
    const float x = a[i];
    const float y = b[i];
    a[i] = x < y ? x : y;
    b[i] = x < y ? y : x;
  }
}
#if defined(__AVX512F__) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

const ReduceKernels kernels = {
    &dot_ff,    &dot_dd,    &sqnorm_f,  &sqdist_ff,
    &sqdist_fd, &sqdist_dd, &axpy_fd,   &axpy_dd,
    &fmadd_ffd, &cmpx_rows,
};

}  // namespace ZKA_REDUCE_NS
}  // namespace zka::tensor::detail
