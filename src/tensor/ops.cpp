#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>

#include "tensor/gemm_dispatch.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/thread_pool.h"

namespace zka::tensor {
namespace {

using detail::GemmLayout;
using detail::kGemmMR;
using detail::kGemmNC;

std::atomic<bool> g_kernel_parallelism{true};

// Work below this many flops (2*m*n*k) runs single-threaded: the fork/join
// handshake costs more than the multiply.
constexpr std::int64_t kMinParallelFlops = std::int64_t{1} << 22;

struct Backend {
  detail::GemmRangesFn ranges;
  const char* name;
  /// Prof counter bumped once per gemm_driver call; fixed at startup, so
  /// ZKA_PROF_COUNT's per-call-site cell caching is sound.
  const char* tier_counter;
};

Backend select_backend() {
#if defined(__x86_64__) && defined(__GNUC__)
#if defined(ZKA_GEMM_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    return {&detail::avx512::gemm_ranges, "avx512f", "gemm/tier/avx512f"};
  }
#endif
#if defined(ZKA_GEMM_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {&detail::avx2::gemm_ranges, "avx2+fma", "gemm/tier/avx2+fma"};
  }
#endif
#endif
  return {&detail::generic::gemm_ranges, "generic", "gemm/tier/generic"};
}

const Backend& backend() {
  static const Backend b = select_backend();
  return b;
}

// Shared driver: applies beta, then computes C = alpha*op(A)@op(B) + C,
// chunked across the pool when the product is large enough. Chunks split C
// into disjoint row groups (multiples of the register-tile height) or
// column groups (multiples of the cache-block width), so every partition
// performs bitwise-identical tile computations — see ops.h.
void gemm_driver(GemmLayout layout, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float beta, float* c) {
  ZKA_DCHECK(m >= 0 && n >= 0 && k >= 0, "gemm sizes m=%lld n=%lld k=%lld",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k));
  ZKA_DCHECK(m * n == 0 || c != nullptr, "gemm: null C for %lldx%lld output",
             static_cast<long long>(m), static_cast<long long>(n));
  ZKA_DCHECK(m * n * k == 0 || (a != nullptr && b != nullptr),
             "gemm: null operand for nonempty product");
  if (m <= 0 || n <= 0) return;
  ZKA_PROF_COUNT("gemm/calls", 1);
  ZKA_PROF_COUNT("gemm/flops", 2 * m * n * k);
  ZKA_PROF_COUNT("gemm/bytes",
                 static_cast<std::int64_t>(sizeof(float)) *
                     (m * k + k * n + 2 * m * n));
  ZKA_PROF_COUNT(backend().tier_counter, 1);
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == 0.0f || k <= 0) return;

  const detail::GemmRangesFn ranges = backend().ranges;
  const std::int64_t flops = 2 * m * n * k;
  std::int64_t nchunks = 1;
  bool by_rows = true;
  if (g_kernel_parallelism.load(std::memory_order_relaxed) &&
      flops >= kMinParallelFlops) {
    const std::int64_t row_units = (m + kGemmMR - 1) / kGemmMR;
    const std::int64_t col_units = (n + kGemmNC - 1) / kGemmNC;
    by_rows = row_units >= col_units;
    const std::int64_t units = by_rows ? row_units : col_units;
    const auto threads =
        static_cast<std::int64_t>(util::global_thread_pool().size());
    // 2 chunks per thread for load balance; the partition never changes
    // results, only which thread computes which tiles. A single-worker pool
    // gains nothing from forking (the caller would just contend with its
    // one helper), so stay inline.
    if (threads > 1) nchunks = std::min(units, threads * 2);
  }
  if (nchunks <= 1) {
    ranges(layout, m, n, k, alpha, a, b, c, 0, m, 0, n);
    return;
  }
  const std::int64_t units = by_rows ? (m + kGemmMR - 1) / kGemmMR
                                     : (n + kGemmNC - 1) / kGemmNC;
  const std::int64_t unit = by_rows ? kGemmMR : kGemmNC;
  const std::int64_t extent = by_rows ? m : n;
  util::global_thread_pool().parallel_for(
      static_cast<std::size_t>(nchunks), [&](std::size_t t) {
        const auto ti = static_cast<std::int64_t>(t);
        const std::int64_t u0 = units * ti / nchunks;
        const std::int64_t u1 = units * (ti + 1) / nchunks;
        if (u0 == u1) return;
        const std::int64_t lo = u0 * unit;
        const std::int64_t hi = std::min(extent, u1 * unit);
        if (by_rows) {
          ranges(layout, m, n, k, alpha, a, b, c, lo, hi, 0, n);
        } else {
          ranges(layout, m, n, k, alpha, a, b, c, 0, m, lo, hi);
        }
      });
}

// Output-x range [x0, x1) for which ix = x*stride - pad + kx stays inside
// [0, in_w). Outside that span the patch samples the zero padding.
struct XSpan {
  std::int64_t x0;
  std::int64_t x1;
};

XSpan valid_span(std::int64_t extent, std::int64_t out_extent,
                 std::int64_t stride, std::int64_t pad,
                 std::int64_t k) noexcept {
  // Smallest x with x*stride - pad + k >= 0, and first x past the end.
  const std::int64_t lo = pad - k;
  std::int64_t x0 = lo > 0 ? (lo + stride - 1) / stride : 0;
  std::int64_t x1 = (extent + pad - k + stride - 1) / stride;
  x0 = std::min(x0, out_extent);
  x1 = std::clamp(x1, x0, out_extent);
  return {x0, x1};
}

// im2col/col2im core over one sample, writing into a column matrix whose
// rows have leading dimension `ld` and whose columns for this sample start
// at `col_offset`. Per-row the valid span is precomputed so the inner loops
// carry no bounds checks; stride 1 degenerates to memcpy.
void im2col_one(const ConvGeometry& g, const float* image, float* col,
                std::int64_t ld, std::int64_t col_offset) noexcept {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      const XSpan ys = valid_span(g.in_h, oh, g.stride, g.pad, ky);
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const XSpan xs = valid_span(g.in_w, ow, g.stride, g.pad, kx);
        float* out = col + row * ld + col_offset;
        std::memset(out, 0, static_cast<std::size_t>(ys.x0 * ow) * sizeof(float));
        std::memset(out + ys.x1 * ow, 0,
                    static_cast<std::size_t>((oh - ys.x1) * ow) * sizeof(float));
        for (std::int64_t y = ys.x0; y < ys.x1; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + ky;
          const float* src = plane + iy * g.in_w;
          float* dst = out + y * ow;
          for (std::int64_t x = 0; x < xs.x0; ++x) dst[x] = 0.0f;
          if (g.stride == 1) {
            std::memcpy(dst + xs.x0, src + (xs.x0 - g.pad + kx),
                        static_cast<std::size_t>(xs.x1 - xs.x0) * sizeof(float));
          } else {
            for (std::int64_t x = xs.x0; x < xs.x1; ++x) {
              dst[x] = src[x * g.stride - g.pad + kx];
            }
          }
          for (std::int64_t x = xs.x1; x < ow; ++x) dst[x] = 0.0f;
        }
      }
    }
  }
  ZKA_DCHECK(row == g.patch_size(), "im2col rows %lld != patch size %lld",
             static_cast<long long>(row),
             static_cast<long long>(g.patch_size()));
}

void col2im_one(const ConvGeometry& g, const float* col, float* image,
                std::int64_t ld, std::int64_t col_offset) noexcept {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      const XSpan ys = valid_span(g.in_h, oh, g.stride, g.pad, ky);
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const XSpan xs = valid_span(g.in_w, ow, g.stride, g.pad, kx);
        const float* in = col + row * ld + col_offset;
        for (std::int64_t y = ys.x0; y < ys.x1; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + ky;
          float* dst = plane + iy * g.in_w;
          const float* src = in + y * ow;
          for (std::int64_t x = xs.x0; x < xs.x1; ++x) {
            dst[x * g.stride - g.pad + kx] += src[x];
          }
        }
      }
    }
  }
  ZKA_DCHECK(row == g.patch_size(), "col2im rows %lld != patch size %lld",
             static_cast<long long>(row),
             static_cast<long long>(g.patch_size()));
}

// Geometry preconditions shared by the four im2col/col2im entry points.
// Violations are programmer errors in the conv layers, not user input, so
// this is contract-build-only.
void dcheck_geometry(const ConvGeometry& g, std::int64_t batch) noexcept {
  ZKA_DCHECK(g.in_channels > 0 && g.in_h > 0 && g.in_w > 0,
             "conv geometry: bad input %lldx%lldx%lld",
             static_cast<long long>(g.in_channels),
             static_cast<long long>(g.in_h), static_cast<long long>(g.in_w));
  ZKA_DCHECK(g.kernel > 0 && g.stride > 0 && g.pad >= 0,
             "conv geometry: kernel=%lld stride=%lld pad=%lld",
             static_cast<long long>(g.kernel),
             static_cast<long long>(g.stride), static_cast<long long>(g.pad));
  ZKA_DCHECK(g.out_h() > 0 && g.out_w() > 0 && batch >= 0,
             "conv geometry: empty output %lldx%lld (batch %lld)",
             static_cast<long long>(g.out_h()),
             static_cast<long long>(g.out_w()), static_cast<long long>(batch));
}

// Samples are independent (disjoint column slabs / disjoint images), so a
// parallel batch loop is deterministic. Only worth forking for real work.
bool batch_parallel_worthwhile(const ConvGeometry& g, std::int64_t batch) {
  return g_kernel_parallelism.load(std::memory_order_relaxed) && batch >= 4 &&
         g.patch_size() * g.out_h() * g.out_w() * batch >= (1 << 18) &&
         util::global_thread_pool().size() > 1;
}

}  // namespace

void set_kernel_parallelism(bool enabled) noexcept {
  g_kernel_parallelism.store(enabled, std::memory_order_relaxed);
}

bool kernel_parallelism_enabled() noexcept {
  return g_kernel_parallelism.load(std::memory_order_relaxed);
}

const char* gemm_backend_name() noexcept { return backend().name; }

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) noexcept {
  gemm_driver(GemmLayout::kAB, m, n, k, alpha, a, b, beta, c);
}

void gemm_at_b(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept {
  gemm_driver(GemmLayout::kAtB, m, n, k, alpha, a, b, beta, c);
}

void gemm_a_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept {
  gemm_driver(GemmLayout::kABt, m, n, k, alpha, a, b, beta, c);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  ZKA_CHECK(a.rank() == 2 && b.rank() == 2,
            "matmul requires rank-2 tensors, got %s @ %s",
            shape_to_string(a.shape()).c_str(),
            shape_to_string(b.shape()).c_str());
  ZKA_CHECK(a.dim(1) == b.dim(0), "matmul inner dimensions differ: %s @ %s",
            shape_to_string(a.shape()).c_str(),
            shape_to_string(b.shape()).c_str());
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  return c;
}

Tensor transpose2d(const Tensor& a) {
  ZKA_CHECK(a.rank() == 2, "transpose2d requires rank 2, got %s",
            shape_to_string(a.shape()).c_str());
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor t({cols, rows});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      t[j * rows + i] = a[i * cols + j];
    }
  }
  return t;
}

void im2col(const ConvGeometry& g, const float* image, float* col) noexcept {
  dcheck_geometry(g, 1);
  im2col_one(g, image, col, g.out_h() * g.out_w(), 0);
}

void col2im(const ConvGeometry& g, const float* col, float* image) noexcept {
  dcheck_geometry(g, 1);
  col2im_one(g, col, image, g.out_h() * g.out_w(), 0);
}

void im2col_batched(const ConvGeometry& g, const float* images,
                    std::int64_t batch, float* col) noexcept {
  dcheck_geometry(g, batch);
  const std::int64_t spatial = g.out_h() * g.out_w();
  const std::int64_t ld = batch * spatial;
  const std::int64_t image_size = g.in_channels * g.in_h * g.in_w;
  auto one = [&](std::size_t s) {
    const auto si = static_cast<std::int64_t>(s);
    im2col_one(g, images + si * image_size, col, ld, si * spatial);
  };
  if (batch_parallel_worthwhile(g, batch)) {
    util::global_thread_pool().parallel_for(static_cast<std::size_t>(batch),
                                            one);
  } else {
    for (std::int64_t s = 0; s < batch; ++s) {
      one(static_cast<std::size_t>(s));
    }
  }
}

void col2im_batched(const ConvGeometry& g, const float* col,
                    std::int64_t batch, float* images) noexcept {
  dcheck_geometry(g, batch);
  const std::int64_t spatial = g.out_h() * g.out_w();
  const std::int64_t ld = batch * spatial;
  const std::int64_t image_size = g.in_channels * g.in_h * g.in_w;
  auto one = [&](std::size_t s) {
    const auto si = static_cast<std::int64_t>(s);
    col2im_one(g, col, images + si * image_size, ld, si * spatial);
  };
  if (batch_parallel_worthwhile(g, batch)) {
    util::global_thread_pool().parallel_for(static_cast<std::size_t>(batch),
                                            one);
  } else {
    for (std::int64_t s = 0; s < batch; ++s) {
      one(static_cast<std::size_t>(s));
    }
  }
}

}  // namespace zka::tensor
