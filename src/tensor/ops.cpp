#include "tensor/ops.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace zka::tensor {

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept {
  // A is [K, M]; compute C[M,N] = alpha * sum_p A[p,i] * B[p,j] + beta*C.
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept {
  // B is [N, K]; C[i,j] = alpha * dot(A[i,:], B[j,:]) + beta*C[i,j].
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = alpha * static_cast<float>(acc) +
                (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument("matmul requires rank-2 tensors");
  }
  if (a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul inner dimensions differ: " +
                                shape_to_string(a.shape()) + " @ " +
                                shape_to_string(b.shape()));
  }
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.raw(), b.raw(), 0.0f, c.raw());
  return c;
}

Tensor transpose2d(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose2d requires rank 2");
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor t({cols, rows});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      t[j * rows + i] = a[i * cols + j];
    }
  }
  return t;
}

void im2col(const ConvGeometry& g, const float* image, float* col) noexcept {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = col + row * spatial;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out + y * ow, 0,
                        static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src = plane + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.pad + kx;
            out[y * ow + x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
  assert(row == g.patch_size());
}

void col2im(const ConvGeometry& g, const float* col, float* image) noexcept {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in = col + row * spatial;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.pad + kx;
            if (ix >= 0 && ix < g.in_w) dst[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
  assert(row == g.patch_size());
}

}  // namespace zka::tensor
