// Internal header: ISA dispatch for the SIMD reduction/axpy kernels.
//
// Mirrors gemm_dispatch.h: the kernel bodies live in reduce_kernels.inl and
// are compiled once per instruction-set tier (generic / AVX2+FMA /
// AVX-512F) into separate translation units, each wrapping the identical
// code in its own namespace. reduce.cpp picks the widest tier the running
// CPU supports at startup (same __builtin_cpu_supports probe as the GEMM),
// so one portable binary gets native-width SIMD without -march=native.
//
// All tiers share one accumulation scheme (see reduce.h): kReduceLanes
// independent accumulator lanes walked in a fixed stride order, combined
// lane-ascending, then the scalar tail appended index-ascending. Tiers
// therefore differ only in vector width, never in association order (FMA
// contraction aside, exactly like the GEMM tiers).
#pragma once

#include <cstddef>

namespace zka::tensor::detail {

/// Independent accumulator lanes per reduction. 16 doubles = two AVX-512
/// registers / four AVX2 registers / eight SSE2 registers: enough to hide
/// FMA latency on every tier while keeping one fixed association order.
inline constexpr std::size_t kReduceLanes = 16;

/// Per-tier kernel table. Suffixes name operand types: f = float buffer,
/// d = double buffer (e.g. sqdist_fd measures float data against a double
/// center). All reductions accumulate and return double.
struct ReduceKernels {
  double (*dot_ff)(const float* a, const float* b, std::size_t n);
  double (*dot_dd)(const double* a, const double* b, std::size_t n);
  double (*sqnorm_f)(const float* a, std::size_t n);
  double (*sqdist_ff)(const float* a, const float* b, std::size_t n);
  double (*sqdist_fd)(const float* a, const double* b, std::size_t n);
  double (*sqdist_dd)(const double* a, const double* b, std::size_t n);
  void (*axpy_fd)(double alpha, const float* x, double* y, std::size_t n);
  void (*axpy_dd)(double alpha, const double* x, double* y, std::size_t n);
  void (*fmadd_ffd)(const float* x, const float* s, double* y, std::size_t n);
  void (*cmpx_rows)(float* a, float* b, std::size_t n);
};

namespace generic {
extern const ReduceKernels kernels;
}

// The AVX tier availability macros are shared with the GEMM kernels: both
// families are compiled into zka_tensor under the same CMake checks.
#if defined(ZKA_GEMM_AVX2)
namespace avx2 {
extern const ReduceKernels kernels;
}
#endif

#if defined(ZKA_GEMM_AVX512)
namespace avx512 {
extern const ReduceKernels kernels;
}
#endif

}  // namespace zka::tensor::detail
