// AVX-512F instantiation of the blocked GEMM kernels. Compiled with
// -mavx512f -mfma (see tensor/CMakeLists.txt); only ever called after a
// runtime __builtin_cpu_supports check in ops.cpp.
#if defined(ZKA_GEMM_AVX512)
#define ZKA_GEMM_NS avx512
#include "tensor/gemm_kernels.inl"
#endif
