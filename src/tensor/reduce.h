// SIMD reduction toolkit shared by the server-side aggregation pipeline
// (defenses), the analysis layer and anything else that folds long flat
// vectors: dot products, squared norms/distances, scaled accumulation and
// deterministic weighted sums, with the same generic/AVX2/AVX-512 runtime
// dispatch as the GEMM in ops.h.
//
// ## Accumulation-order policy (shared by every reduction)
//
// Reductions accumulate in double precision (binary64) — unlike the GEMM,
// whose float32 policy suits gradient math, the defenses rank and compare
// sums over ~1e5 coordinates, where float32 accumulation would perturb
// Krum/Bulyan orderings. The association order is fixed: 16 independent
// accumulator lanes fed stride-16 (element i of the main body feeds lane
// i % 16), lanes combined lane-ascending, the n % 16 tail appended
// index-ascending. Consequences:
//   * results are bitwise identical run-to-run on a given machine, and
//     independent of thread count — the kernels themselves never fork, and
//     the parallel helpers below split work into fixed blocks whose
//     partials combine in block order, never in completion order;
//   * results may differ across ISA tiers (FMA contracts one rounding
//     step) by normal double epsilon, exactly like the GEMM tiers. The
//     selected tier is fixed per machine, so reproducibility of a run is
//     unaffected;
//   * axpy-style (elementwise) kernels carry one accumulator per output
//     element and are association-free by construction.
//
// ## Threading
//
// Single-vector reductions run on the calling thread: the defense layer
// parallelizes at row/coordinate-block granularity where splits stay
// deterministic for free. The helpers that do fork (weighted_sum,
// gram_matrix via the GEMM) honor set_kernel_parallelism and split along
// fixed block boundaries, so any ZKA_THREADS yields bitwise-equal output.
#pragma once

#include <cstddef>
#include <span>

namespace zka::tensor {

/// Name of the reduction backend selected for this CPU at startup:
/// "avx512f", "avx2+fma", or "generic". Matches gemm_backend_name() on
/// every supported CPU (both probe the same features).
const char* reduce_backend_name() noexcept;

/// Dot product, double accumulation. Spans must have equal size.
double dot(std::span<const float> a, std::span<const float> b) noexcept;
double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// Sum of squares, double accumulation.
double squared_norm(std::span<const float> a) noexcept;

/// Squared Euclidean distance; the float/double overload measures float
/// data against a double iterate (Weiszfeld center, running means).
double squared_distance(std::span<const float> a,
                        std::span<const float> b) noexcept;
double squared_distance(std::span<const float> a,
                        std::span<const double> b) noexcept;
double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept;

/// y += alpha * x (scaled accumulate). Spans must have equal size.
void axpy(double alpha, std::span<const float> x,
          std::span<double> y) noexcept;
void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept;

/// y[i] += x[i] * s[i], elementwise (one accumulator per output element,
/// association-free). The inner fold of the JL sign-sketch (see sketch.h),
/// where `s` is a ±1 pattern. Spans must have equal size.
void fmadd(std::span<const float> x, std::span<const float> s,
           std::span<double> y) noexcept;

/// out[i] = sum_k coeffs[k] * rows[k][i], accumulated k-ascending per
/// coordinate in double. Parallelized over fixed coordinate blocks (the
/// k-order inside a block never changes), so the result is bitwise
/// identical for any thread count. All rows and `out` must share one size;
/// `coeffs` must have one entry per row. `out` is overwritten.
void weighted_sum(std::span<const std::span<const float>> rows,
                  std::span<const double> coeffs, std::span<double> out);

/// Gram matrix of n equally sized rows: gram[i*n+j] = <rows[i], rows[j]>
/// accumulated in float32 by the packed GEMM (G = A Aᵀ), plus exact
/// double-accumulated squared norms per row in sqnorms. The float Gram is
/// what makes O(n²·d) pairwise geometry one cache-blocked GEMM; callers
/// that need double-accurate small distances apply a correction pass on
/// top (see defense/distance.h). gram must hold n*n floats, sqnorms n
/// doubles. Deterministic for any thread count (inherits the GEMM and
/// fixed-block guarantees).
void gram_matrix(std::span<const std::span<const float>> rows,
                 std::span<float> gram, std::span<double> sqnorms);

/// Sorts every column of a row-major [rows × width] tile ascending, in
/// place, using a Batcher odd-even merge network whose comparators are
/// elementwise min/max sweeps across row pairs (full SIMD width, every
/// column at once). `rows` must be a power of two — callers pad short
/// tiles with +inf, which sorts past the real values. Data-oblivious: the
/// comparator sequence is a pure function of `rows`, so the result never
/// depends on execution order. Runs on the calling thread (callers
/// parallelize over tiles).
void sort_columns(float* tile, std::size_t rows, std::size_t width);

}  // namespace zka::tensor
