// Baseline-ISA instantiation of the reduction kernels (no extra -m flags;
// whatever the toolchain's default target provides).
#define ZKA_REDUCE_NS generic
#include "tensor/reduce_kernels.inl"
