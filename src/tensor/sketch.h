// Seeded Johnson–Lindenstrauss sign sketch: the O(d) random projection
// that turns the robust-aggregation server path from O(n²·d) into
// O(n·d + n²·k) (see defense/sketch.h for the selection layer on top).
//
// The projection is a signed modular fold (a fixed-bucket count sketch):
//
//   out[j] = Σ_b σ(seed, b)[j] · x[b·k + j],   b = 0 .. ⌈d/k⌉ − 1
//
// i.e. the update is viewed as ⌈d/k⌉ contiguous blocks of k coordinates,
// each block is multiplied elementwise by a ±1 pattern derived
// deterministically from (seed, block index) via SplitMix64, and the
// signed blocks are summed. Each input coordinate lands in exactly one
// output bucket with a uniform random sign, so E‖Px‖² = ‖x‖² and squared
// distances are preserved in expectation with relative error O(1/√k) —
// the JL guarantee the defense layer's selection-agreement tests and
// bench quantify. Unlike a dense Gaussian projection (O(d·k) per update)
// the fold is O(d), which is what makes sketching *cheaper* than one
// exact pairwise row, not just cheaper than all of them.
//
// Determinism contract:
//   * the sign pattern is a pure function of (seed, dim, sketch_dim) —
//     block b's signs come from an independent SplitMix64 stream seeded
//     by mix(seed, b), so any block (hence any streamed update) can be
//     projected without global state;
//   * project() accumulates block-ascending into per-coordinate double
//     accumulators (association-free elementwise FMA, tensor::fmadd) and
//     never forks, so results are bitwise identical for any thread count;
//     callers parallelize over updates (disjoint output rows);
//   * like every kernel family, ISA tiers may differ by FMA contraction;
//     the tier is fixed per machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace zka::tensor {

class JlSketch {
 public:
  /// Builds the ±1 pattern table for projecting `dim`-coordinate vectors
  /// to `sketch_dim` coordinates. Requires 0 < sketch_dim <= dim. The
  /// table holds `dim` floats (the size of one update) and is shared by
  /// every projection, so per-round cost is one table build + n O(d)
  /// folds.
  JlSketch(std::size_t dim, std::size_t sketch_dim, std::uint64_t seed);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t sketch_dim() const noexcept { return k_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// out = P·x. `x` must have dim() elements, `out` sketch_dim().
  /// `scratch` must have sketch_dim() doubles (reused across calls so the
  /// hot loop allocates nothing). Single-threaded; bitwise deterministic.
  void project(std::span<const float> x, std::span<double> scratch,
               std::span<float> out) const;

  /// Convenience overload that owns its scratch (tests, one-off callers).
  void project(std::span<const float> x, std::span<float> out) const;

 private:
  std::size_t dim_;
  std::size_t k_;
  std::uint64_t seed_;
  std::vector<float> signs_;  // dim_ entries of ±1, block-major
};

}  // namespace zka::tensor
