// AVX-512F instantiation of the reduction kernels. Compiled with
// -mavx512f -mfma (see tensor/CMakeLists.txt); only ever called after a
// runtime __builtin_cpu_supports check in reduce.cpp.
#if defined(ZKA_GEMM_AVX512)
#define ZKA_REDUCE_NS avx512
#include "tensor/reduce_kernels.inl"
#endif
