#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace zka::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : shape_{0} {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_numel(shape_)) {
    throw std::invalid_argument("data size " + std::to_string(data_.size()) +
                                " does not match shape " +
                                shape_to_string(shape_));
  }
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) {
    x = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::normal(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) {
    x = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

std::int64_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("axis " + std::to_string(axis) +
                            " out of range for shape " +
                            shape_to_string(shape_));
  }
  return shape_[axis];
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  ZKA_DCHECK(idx.size() == shape_.size(), "at(): %zu indices for rank-%zu %s",
             idx.size(), shape_.size(), shape_to_string(shape_).c_str());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const std::int64_t i : idx) {
    ZKA_DCHECK(i >= 0 && i < shape_[axis],
               "at(): index %lld out of [0, %lld) on axis %zu of %s",
               static_cast<long long>(i),
               static_cast<long long>(shape_[axis]), axis,
               shape_to_string(shape_).c_str());
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape " + shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape) +
                                " changes element count");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  if (shape_.empty()) throw std::invalid_argument("slice0 on rank-0 tensor");
  if (begin < 0 || end < begin || end > shape_[0]) {
    throw std::out_of_range("slice0 range [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") out of bounds");
  }
  Shape out_shape = shape_;
  out_shape[0] = end - begin;
  const std::int64_t row = numel() / std::max<std::int64_t>(shape_[0], 1);
  std::vector<float> out(static_cast<std::size_t>((end - begin) * row));
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * row),
            data_.begin() + static_cast<std::ptrdiff_t>(end * row), out.begin());
  return Tensor(std::move(out_shape), std::move(out));
}

Tensor Tensor::index_select0(std::span<const std::int64_t> indices) const {
  if (shape_.empty()) {
    throw std::invalid_argument("index_select0 on rank-0 tensor");
  }
  Shape out_shape = shape_;
  out_shape[0] = static_cast<std::int64_t>(indices.size());
  const std::int64_t row = numel() / std::max<std::int64_t>(shape_[0], 1);
  std::vector<float> out(static_cast<std::size_t>(out_shape[0] * row));
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::int64_t i = indices[r];
    if (i < 0 || i >= shape_[0]) {
      throw std::out_of_range("index_select0 index out of range");
    }
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i * row),
              data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * row),
              out.begin() + static_cast<std::ptrdiff_t>(r) * row);
  }
  return Tensor(std::move(out_shape), std::move(out));
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  ZKA_CHECK(a.same_shape(b), "%s: shape mismatch %s vs %s", op,
            shape_to_string(a.shape()).c_str(),
            shape_to_string(b.shape()).c_str());
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(*this, other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(*this, other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(*this, other, "*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float scalar) noexcept {
  for (float& x : data_) x += scalar;
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

float Tensor::sum() const noexcept {
  double total = 0.0;
  for (const float x : data_) total += static_cast<double>(x);
  return static_cast<float>(total);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("argmax of empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::vector<std::int64_t> Tensor::argmax_rows() const {
  ZKA_CHECK(rank() == 2, "argmax_rows requires rank 2, got %s",
            shape_to_string(shape_).c_str());
  const std::int64_t rows = shape_[0];
  const std::int64_t cols = shape_[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* begin = data_.data() + r * cols;
    out[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(
        std::max_element(begin, begin + cols) - begin);
  }
  return out;
}

double Tensor::l2_norm() const noexcept {
  double sum = 0.0;
  for (const float x : data_) {
    sum += static_cast<double>(x) * static_cast<double>(x);
  }
  return std::sqrt(sum);
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, const Tensor& rhs) {
  lhs *= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

Tensor operator*(float scalar, Tensor rhs) {
  rhs *= scalar;
  return rhs;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) noexcept {
  if (!a.same_shape(b)) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace zka::tensor
