// Blocked GEMM kernel body, compiled once per ISA tier.
//
// Including TU must define ZKA_GEMM_NS to the tier's namespace name
// (generic / avx2 / avx512) and is compiled with the matching -m flags.
// Do not include this anywhere else.
//
// Scheme (identical for every operand layout):
//   * the k dimension is processed in KC panels,
//   * per panel, B columns are packed NR at a time into a contiguous
//     [kc x NR] buffer (transposed layouts are straightened here, so the
//     microkernel never sees a stride),
//   * A rows are packed MR at a time into [kc x MR] with alpha folded in,
//   * the MR x NR register tile accumulates in float32 over the packed
//     panel in a fixed order, then is added into C.
// Tails (m % MR, n % NR, k % KC) are zero-padded in the packed buffers and
// masked on writeback, so edge tiles follow the same code path.

#include <algorithm>
#include <cstring>

#include "tensor/gemm_dispatch.h"

namespace zka::tensor::detail {
namespace ZKA_GEMM_NS {
namespace {

using std::int64_t;

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;
constexpr int64_t KC = kGemmKC;
constexpr int64_t NC = kGemmNC;

// Packs B rows [pp, pp+kc) x cols [j0, j0+nv) into bpack[kc][NR]; the NR-nv
// tail is zeroed so the microkernel can run unmasked.
template <GemmLayout L>
inline void pack_b(int64_t n, int64_t k, const float* b, int64_t pp,
                   int64_t kc, int64_t j0, int64_t nv, float* bpack) {
  if constexpr (L == GemmLayout::kABt) {
    // B is [N, K]: bpack[p][u] = B[j0+u][pp+p] (transposing gather).
    for (int64_t u = 0; u < nv; ++u) {
      const float* brow = b + (j0 + u) * k + pp;
      for (int64_t p = 0; p < kc; ++p) bpack[p * NR + u] = brow[p];
    }
    if (nv < NR) {
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t u = nv; u < NR; ++u) bpack[p * NR + u] = 0.0f;
      }
    }
  } else {
    // B is [K, N] for both kAB and kAtB.
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = b + (pp + p) * n + j0;
      float* dst = bpack + p * NR;
      std::memcpy(dst, brow, static_cast<std::size_t>(nv) * sizeof(float));
      for (int64_t u = nv; u < NR; ++u) dst[u] = 0.0f;
    }
  }
  (void)n;
  (void)k;
}

// Packs A rows [i0, i0+mv) x [pp, pp+kc) into apack[kc][MR] with alpha
// folded in; the MR-mv tail is zeroed.
template <GemmLayout L>
inline void pack_a(int64_t m, int64_t k, const float* a, float alpha,
                   int64_t pp, int64_t kc, int64_t i0, int64_t mv,
                   float* apack) {
  if constexpr (L == GemmLayout::kAtB) {
    // A is [K, M]: apack[p][r] = alpha * A[pp+p][i0+r].
    for (int64_t p = 0; p < kc; ++p) {
      const float* arow = a + (pp + p) * m + i0;
      float* dst = apack + p * MR;
      for (int64_t r = 0; r < mv; ++r) dst[r] = alpha * arow[r];
      for (int64_t r = mv; r < MR; ++r) dst[r] = 0.0f;
    }
  } else {
    for (int64_t r = 0; r < mv; ++r) {
      const float* arow = a + (i0 + r) * k + pp;
      for (int64_t p = 0; p < kc; ++p) apack[p * MR + r] = alpha * arow[p];
    }
    for (int64_t r = mv; r < MR; ++r) {
      for (int64_t p = 0; p < kc; ++p) apack[p * MR + r] = 0.0f;
    }
  }
  (void)m;
  (void)k;
}

template <GemmLayout L>
void gemm_ranges_impl(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int64_t c0, int64_t c1) {
  // Stack panels: 32 KiB for B, 4 KiB for A. Small enough for pool workers.
  alignas(64) float bpack[KC * NR];
  alignas(64) float apack[KC * MR];
  for (int64_t pp = 0; pp < k; pp += KC) {
    const int64_t kc = std::min(KC, k - pp);
    for (int64_t jc = c0; jc < c1; jc += NC) {
      const int64_t jce = std::min(c1, jc + NC);
      for (int64_t j0 = jc; j0 < jce; j0 += NR) {
        const int64_t nv = std::min(NR, jce - j0);
        pack_b<L>(n, k, b, pp, kc, j0, nv, bpack);
        for (int64_t i0 = r0; i0 < r1; i0 += MR) {
          const int64_t mv = std::min(MR, r1 - i0);
          pack_a<L>(m, k, a, alpha, pp, kc, i0, mv, apack);
          // MR x NR register tile; float32 FMA accumulation in a fixed
          // order (p ascending), identical across tiers and partitions.
          float acc[MR][NR] = {};
          for (int64_t p = 0; p < kc; ++p) {
            const float* bp = bpack + p * NR;
            const float* ap = apack + p * MR;
            for (int64_t r = 0; r < MR; ++r) {
              const float av = ap[r];
              for (int64_t u = 0; u < NR; ++u) acc[r][u] += av * bp[u];
            }
          }
          for (int64_t r = 0; r < mv; ++r) {
            float* cr = c + (i0 + r) * n + j0;
            for (int64_t u = 0; u < nv; ++u) cr[u] += acc[r][u];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_ranges(GemmLayout layout, int64_t m, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b, float* c,
                 int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  switch (layout) {
    case GemmLayout::kAB:
      gemm_ranges_impl<GemmLayout::kAB>(m, n, k, alpha, a, b, c, r0, r1, c0,
                                        c1);
      break;
    case GemmLayout::kAtB:
      gemm_ranges_impl<GemmLayout::kAtB>(m, n, k, alpha, a, b, c, r0, r1, c0,
                                         c1);
      break;
    case GemmLayout::kABt:
      gemm_ranges_impl<GemmLayout::kABt>(m, n, k, alpha, a, b, c, r0, r1, c0,
                                         c1);
      break;
  }
}

}  // namespace ZKA_GEMM_NS
}  // namespace zka::tensor::detail
