// Value-semantic, contiguous, row-major float32 tensor.
//
// Deliberately small: just what the NN framework and the attacks need.
// Shapes are vectors of int64_t; rank is typically 1 (flat parameter
// vectors), 2 (dense activations / GEMM operands) or 4 (NCHW images).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace zka::util {
class Rng;
}

namespace zka::tensor {

using Shape = std::vector<std::int64_t>;

/// Product of all dimensions; 1 for a rank-0 shape.
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor();
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);
  /// Tensor adopting `data`; data.size() must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// Uniform random entries in [lo, hi).
  static Tensor uniform(Shape shape, util::Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// Gaussian random entries.
  static Tensor normal(Shape shape, util::Rng& rng, float mean = 0.0f,
                       float stddev = 1.0f);

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  std::int64_t dim(std::size_t axis) const;
  std::size_t rank() const noexcept { return shape_.size(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }
  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  // Flat element access. Unchecked in release; contract builds
  // (ZKA_CONTRACTS) abort on out-of-bounds instead of silently reading
  // whatever follows the buffer.
  float& operator[](std::int64_t i) {
    ZKA_DCHECK(i >= 0 && i < numel(), "flat index %lld out of [0, %lld)",
               static_cast<long long>(i), static_cast<long long>(numel()));
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    ZKA_DCHECK(i >= 0 && i < numel(), "flat index %lld out of [0, %lld)",
               static_cast<long long>(i), static_cast<long long>(numel()));
    return data_[static_cast<std::size_t>(i)];
  }

  /// Multi-index access (rank must match the number of indices).
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// Same data, new shape; numel must be preserved.
  Tensor reshape(Shape new_shape) const;

  /// Slice along axis 0: rows [begin, end). Copies.
  Tensor slice0(std::int64_t begin, std::int64_t end) const;

  /// Gather rows along axis 0 by index. Copies.
  Tensor index_select0(std::span<const std::int64_t> indices) const;

  void fill(float value) noexcept;

  // Elementwise in-place arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator+=(float scalar) noexcept;
  Tensor& operator*=(float scalar) noexcept;

  // Reductions.
  float sum() const noexcept;
  float mean() const noexcept;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties). Requires numel > 0.
  std::int64_t argmax() const;
  /// Per-row argmax of a rank-2 tensor.
  std::vector<std::int64_t> argmax_rows() const;

  /// L2 norm over all elements.
  double l2_norm() const noexcept;

  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

// Out-of-place elementwise arithmetic.
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);
Tensor operator*(float scalar, Tensor rhs);

/// True iff shapes match and all entries are within `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f) noexcept;

}  // namespace zka::tensor
