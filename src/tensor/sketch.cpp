#include "tensor/sketch.h"

#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/rng.h"

namespace zka::tensor {

JlSketch::JlSketch(std::size_t dim, std::size_t sketch_dim,
                   std::uint64_t seed)
    : dim_(dim), k_(sketch_dim), seed_(seed) {
  ZKA_CHECK(sketch_dim > 0 && sketch_dim <= dim,
            "JlSketch: sketch_dim %zu outside [1, dim=%zu]", sketch_dim, dim);
  signs_.resize(dim_);
  const std::size_t nblocks = (dim_ + k_ - 1) / k_;
  for (std::size_t b = 0; b < nblocks; ++b) {
    // Independent per-block SplitMix64 stream: signs for block b depend
    // only on (seed, b), never on how many blocks preceded it — the
    // deterministic per-block seeding the streaming path relies on.
    std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * (b + 1));
    const std::size_t len = std::min(k_, dim_ - b * k_);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < len; ++j) {
      if (j % 64 == 0) bits = util::splitmix64(state);
      signs_[b * k_ + j] = (bits >> (j % 64)) & 1 ? 1.0f : -1.0f;
    }
  }
}

void JlSketch::project(std::span<const float> x, std::span<double> scratch,
                       std::span<float> out) const {
  ZKA_DCHECK(x.size() == dim_, "JlSketch::project: input %zu, dim %zu",
             x.size(), dim_);
  ZKA_DCHECK(out.size() == k_, "JlSketch::project: output %zu, k %zu",
             out.size(), k_);
  ZKA_DCHECK(scratch.size() == k_, "JlSketch::project: scratch %zu, k %zu",
             scratch.size(), k_);
  ZKA_PROF_COUNT("reduce/sketch/calls", 1);
  ZKA_PROF_COUNT("reduce/sketch/elems", dim_);
  for (auto& a : scratch) a = 0.0;
  const std::size_t nblocks = (dim_ + k_ - 1) / k_;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * k_;
    const std::size_t len = std::min(k_, dim_ - off);
    fmadd(x.subspan(off, len),
          std::span<const float>(signs_.data() + off, len),
          scratch.subspan(0, len));
  }
  for (std::size_t j = 0; j < k_; ++j) {
    out[j] = static_cast<float>(scratch[j]);
  }
}

void JlSketch::project(std::span<const float> x, std::span<float> out) const {
  std::vector<double> scratch(k_);
  project(x, scratch, out);
}

}  // namespace zka::tensor
