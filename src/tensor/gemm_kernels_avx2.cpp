// AVX2+FMA instantiation of the blocked GEMM kernels. Compiled with
// -mavx2 -mfma (see tensor/CMakeLists.txt); only ever called after a
// runtime __builtin_cpu_supports check in ops.cpp.
#if defined(ZKA_GEMM_AVX2)
#define ZKA_GEMM_NS avx2
#include "tensor/gemm_kernels.inl"
#endif
