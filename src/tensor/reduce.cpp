#include "tensor/reduce.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "tensor/ops.h"
#include "tensor/reduce_dispatch.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/thread_pool.h"

namespace zka::tensor {
namespace {

// Coordinate-block width of the parallel helpers. The grid is a function
// of the problem size only — thread count decides who computes a block,
// never where its boundaries are — so partials always combine the same
// way. A multiple of kReduceLanes keeps every block on the fast path.
constexpr std::size_t kReduceBlock = 4096;

// Work below this many accumulated elements runs inline: the fork/join
// handshake costs more than the arithmetic.
constexpr std::size_t kMinParallelElems = std::size_t{1} << 18;

struct Backend {
  const detail::ReduceKernels* kernels;
  const char* name;
  /// Prof counter bumped once per entry-point call; fixed at startup, so
  /// ZKA_PROF_COUNT's per-call-site cell caching is sound.
  const char* tier_counter;
};

Backend select_backend() {
#if defined(__x86_64__) && defined(__GNUC__)
#if defined(ZKA_GEMM_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    return {&detail::avx512::kernels, "avx512f", "reduce/tier/avx512f"};
  }
#endif
#if defined(ZKA_GEMM_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {&detail::avx2::kernels, "avx2+fma", "reduce/tier/avx2+fma"};
  }
#endif
#endif
  return {&detail::generic::kernels, "generic", "reduce/tier/generic"};
}

const Backend& backend() {
  static const Backend b = select_backend();
  return b;
}

// Fixed block grid over `extent` elements, run across the pool when the
// total work is worth a fork (and parallelism is enabled).
void for_each_block(std::size_t extent, std::size_t total_work,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t nblocks = (extent + kReduceBlock - 1) / kReduceBlock;
  auto run = [&](std::size_t b) {
    const std::size_t c0 = b * kReduceBlock;
    body(c0, std::min(extent, c0 + kReduceBlock));
  };
  if (kernel_parallelism_enabled() && nblocks > 1 &&
      total_work >= kMinParallelElems &&
      util::global_thread_pool().size() > 1) {
    util::global_thread_pool().parallel_for(nblocks, run);
  } else {
    for (std::size_t b = 0; b < nblocks; ++b) run(b);
  }
}

}  // namespace

const char* reduce_backend_name() noexcept { return backend().name; }

double dot(std::span<const float> a, std::span<const float> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "dot: %zu vs %zu", a.size(), b.size());
  ZKA_PROF_COUNT("reduce/dot/calls", 1);
  ZKA_PROF_COUNT("reduce/dot/elems", a.size());
  ZKA_PROF_COUNT(backend().tier_counter, 1);
  return backend().kernels->dot_ff(a.data(), b.data(), a.size());
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "dot: %zu vs %zu", a.size(), b.size());
  ZKA_PROF_COUNT("reduce/dot/calls", 1);
  ZKA_PROF_COUNT("reduce/dot/elems", a.size());
  return backend().kernels->dot_dd(a.data(), b.data(), a.size());
}

double squared_norm(std::span<const float> a) noexcept {
  ZKA_PROF_COUNT("reduce/sqnorm/calls", 1);
  ZKA_PROF_COUNT("reduce/sqnorm/elems", a.size());
  return backend().kernels->sqnorm_f(a.data(), a.size());
}

double squared_distance(std::span<const float> a,
                        std::span<const float> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "squared_distance: %zu vs %zu", a.size(),
             b.size());
  ZKA_PROF_COUNT("reduce/sqdist/calls", 1);
  ZKA_PROF_COUNT("reduce/sqdist/elems", a.size());
  return backend().kernels->sqdist_ff(a.data(), b.data(), a.size());
}

double squared_distance(std::span<const float> a,
                        std::span<const double> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "squared_distance: %zu vs %zu", a.size(),
             b.size());
  ZKA_PROF_COUNT("reduce/sqdist/calls", 1);
  ZKA_PROF_COUNT("reduce/sqdist/elems", a.size());
  return backend().kernels->sqdist_fd(a.data(), b.data(), a.size());
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "squared_distance: %zu vs %zu", a.size(),
             b.size());
  ZKA_PROF_COUNT("reduce/sqdist/calls", 1);
  ZKA_PROF_COUNT("reduce/sqdist/elems", a.size());
  return backend().kernels->sqdist_dd(a.data(), b.data(), a.size());
}

void axpy(double alpha, std::span<const float> x,
          std::span<double> y) noexcept {
  ZKA_DCHECK(x.size() == y.size(), "axpy: %zu vs %zu", x.size(), y.size());
  ZKA_PROF_COUNT("reduce/axpy/calls", 1);
  ZKA_PROF_COUNT("reduce/axpy/elems", x.size());
  backend().kernels->axpy_fd(alpha, x.data(), y.data(), x.size());
}

void axpy(double alpha, std::span<const double> x,
          std::span<double> y) noexcept {
  ZKA_DCHECK(x.size() == y.size(), "axpy: %zu vs %zu", x.size(), y.size());
  ZKA_PROF_COUNT("reduce/axpy/calls", 1);
  ZKA_PROF_COUNT("reduce/axpy/elems", x.size());
  backend().kernels->axpy_dd(alpha, x.data(), y.data(), x.size());
}

void fmadd(std::span<const float> x, std::span<const float> s,
           std::span<double> y) noexcept {
  ZKA_DCHECK(x.size() == s.size() && x.size() == y.size(),
             "fmadd: %zu / %zu / %zu", x.size(), s.size(), y.size());
  ZKA_PROF_COUNT("reduce/fmadd/calls", 1);
  ZKA_PROF_COUNT("reduce/fmadd/elems", x.size());
  backend().kernels->fmadd_ffd(x.data(), s.data(), y.data(), x.size());
}

void weighted_sum(std::span<const std::span<const float>> rows,
                  std::span<const double> coeffs, std::span<double> out) {
  ZKA_CHECK(rows.size() == coeffs.size(),
            "weighted_sum: %zu rows vs %zu coeffs", rows.size(),
            coeffs.size());
  const std::size_t n = rows.size();
  const std::size_t dim = out.size();
  ZKA_PROF_COUNT("reduce/weighted_sum/calls", 1);
  ZKA_PROF_COUNT("reduce/weighted_sum/elems", n * dim);
  ZKA_PROF_COUNT(backend().tier_counter, 1);
  const detail::ReduceKernels& k = *backend().kernels;
  for_each_block(dim, n * dim, [&](std::size_t c0, std::size_t c1) {
    double* dst = out.data() + c0;
    std::memset(dst, 0, (c1 - c0) * sizeof(double));
    for (std::size_t r = 0; r < n; ++r) {
      ZKA_DCHECK(rows[r].size() == dim, "weighted_sum: row %zu has %zu of %zu",
                 r, rows[r].size(), dim);
      k.axpy_fd(coeffs[r], rows[r].data() + c0, dst, c1 - c0);
    }
  });
}

void gram_matrix(std::span<const std::span<const float>> rows,
                 std::span<float> gram, std::span<double> sqnorms) {
  const std::size_t n = rows.size();
  ZKA_CHECK(n > 0, "gram_matrix: no rows");
  const std::size_t d = rows.front().size();
  ZKA_CHECK(gram.size() == n * n, "gram_matrix: gram holds %zu, need %zu",
            gram.size(), n * n);
  ZKA_CHECK(sqnorms.size() == n, "gram_matrix: sqnorms holds %zu, need %zu",
            sqnorms.size(), n);

  ZKA_PROF_COUNT("reduce/gram/calls", 1);
  ZKA_PROF_COUNT("reduce/gram/elems", n * d);

  // Pack the rows contiguously so the whole pairwise geometry is one
  // [n, d] x [d, n] GEMM; the row copy and the exact norms fork over rows
  // (disjoint writes, fixed per-row order).
  std::vector<float> packed(n * d);
  const detail::ReduceKernels& k = *backend().kernels;
  auto pack_row = [&](std::size_t i) {
    ZKA_DCHECK(rows[i].size() == d, "gram_matrix: row %zu has %zu of %zu", i,
               rows[i].size(), d);
    std::memcpy(packed.data() + i * d, rows[i].data(), d * sizeof(float));
    sqnorms[i] = k.sqnorm_f(rows[i].data(), d);
  };
  if (kernel_parallelism_enabled() && n > 1 && n * d >= kMinParallelElems &&
      util::global_thread_pool().size() > 1) {
    util::global_thread_pool().parallel_for(n, pack_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) pack_row(i);
  }

  gemm_a_bt(static_cast<std::int64_t>(n), static_cast<std::int64_t>(n),
            static_cast<std::int64_t>(d), 1.0f, packed.data(), packed.data(),
            0.0f, gram.data());
}

void sort_columns(float* tile, std::size_t rows, std::size_t width) {
  ZKA_CHECK(rows > 0 && (rows & (rows - 1)) == 0,
            "sort_columns: rows %zu is not a power of two", rows);
  ZKA_PROF_COUNT("reduce/sort_columns/calls", 1);
  ZKA_PROF_COUNT("reduce/sort_columns/elems", rows * width);
  const auto cmpx = backend().kernels->cmpx_rows;
  // Batcher's odd-even mergesort (Knuth 5.2.2M), iterative form for a
  // power-of-two row count.
  for (std::size_t p = 1; p < rows; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      for (std::size_t j = k % p; j + k < rows; j += 2 * k) {
        for (std::size_t i = 0; i < k && i + j + k < rows; ++i) {
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
            cmpx(tile + (i + j) * width, tile + (i + j + k) * width, width);
          }
        }
      }
    }
  }
}

}  // namespace zka::tensor
