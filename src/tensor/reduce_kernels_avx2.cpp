// AVX2+FMA instantiation of the reduction kernels. Compiled with
// -mavx2 -mfma (see tensor/CMakeLists.txt); only ever called after a
// runtime __builtin_cpu_supports check in reduce.cpp.
#if defined(ZKA_GEMM_AVX2)
#define ZKA_REDUCE_NS avx2
#include "tensor/reduce_kernels.inl"
#endif
