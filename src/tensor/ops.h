// Dense kernels backing the NN layers: GEMM and im2col/col2im lowering for
// (transposed) convolutions.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace zka::tensor {

/// C[M,N] = alpha * A[M,K] @ B[K,N] + beta * C. Row-major raw buffers.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) noexcept;

/// C[M,N] += A^T where A is [K,M] times B [K,N]  (i.e. C = alpha*Aᵀ@B + beta*C).
void gemm_at_b(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept;

/// C[M,N] = alpha * A[M,K] @ Bᵀ where B is [N,K], plus beta*C.
void gemm_a_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept;

/// 2-D matrix multiply on tensors: [M,K] @ [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// Convolution geometry (square kernels, symmetric padding/stride).
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  std::int64_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  std::int64_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// Lowers one [C,H,W] image into columns [C*K*K, OH*OW]; out-of-image taps
/// are zero. `col` must hold patch_size() * out_h() * out_w() floats.
void im2col(const ConvGeometry& g, const float* image, float* col) noexcept;

/// Adjoint of im2col: accumulates columns back into the [C,H,W] image
/// (image must be zeroed by the caller beforehand if a fresh result is
/// wanted; contributions are added).
void col2im(const ConvGeometry& g, const float* col, float* image) noexcept;

}  // namespace zka::tensor
