// Dense kernels backing the NN layers: GEMM and im2col/col2im lowering for
// (transposed) convolutions.
//
// ## Accumulation policy (unified across all GEMM variants)
//
// Every GEMM kernel accumulates in float32 (binary32) registers, never in
// double. The cache-blocked implementation fixes the association order of
// the additions: the k dimension is walked in KC=256 panels, ascending, and
// within a panel each MRxNR register tile accumulates p = 0..kc-1 in order.
// Consequences:
//   * gemm / gemm_at_b / gemm_a_bt round identically for the same logical
//     product, so weight gradients and input gradients see one rounding
//     policy (the seed kernels mixed float and double accumulation);
//   * results are bitwise identical run-to-run and independent of both the
//     thread count and the parallel partition, because threads split C into
//     disjoint tiles along tile boundaries and never share an accumulator
//     (no atomics anywhere in the accumulation path);
//   * results may differ across ISA tiers (FMA contracts one rounding step)
//     and from the seed kernels (different association order) by normal
//     float32 epsilon. On any given machine the selected tier is fixed, so
//     this never affects reproducibility of a run.
//
// ## Threading
//
// Large GEMMs are split over the process-wide util::global_thread_pool()
// into disjoint row/column chunks aligned to the blocking scheme. Nested
// use (e.g. kernels inside an already-parallel FL client loop) is safe: the
// pool runs nested parallel_for bodies inline. set_kernel_parallelism(false)
// forces every kernel single-threaded.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace zka::tensor {

/// Enables/disables thread-pool parallelism inside the GEMM and batched
/// im2col/col2im kernels (default: enabled). Thread count never changes
/// results; this knob exists for benchmarking and for callers that manage
/// parallelism at a coarser grain themselves.
void set_kernel_parallelism(bool enabled) noexcept;
bool kernel_parallelism_enabled() noexcept;

/// Name of the GEMM backend selected for this CPU at startup:
/// "avx512f", "avx2+fma", or "generic".
const char* gemm_backend_name() noexcept;

/// C[M,N] = alpha * A[M,K] @ B[K,N] + beta * C. Row-major raw buffers.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) noexcept;

/// C[M,N] += A^T where A is [K,M] times B [K,N]  (i.e. C = alpha*Aᵀ@B + beta*C).
void gemm_at_b(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept;

/// C[M,N] = alpha * A[M,K] @ Bᵀ where B is [N,K], plus beta*C.
void gemm_a_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) noexcept;

/// 2-D matrix multiply on tensors: [M,K] @ [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// Convolution geometry (square kernels, symmetric padding/stride).
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  std::int64_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  std::int64_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// Lowers one [C,H,W] image into columns [C*K*K, OH*OW]; out-of-image taps
/// are zero. `col` must hold patch_size() * out_h() * out_w() floats.
void im2col(const ConvGeometry& g, const float* image, float* col) noexcept;

/// Adjoint of im2col: accumulates columns back into the [C,H,W] image
/// (image must be zeroed by the caller beforehand if a fresh result is
/// wanted; contributions are added).
void col2im(const ConvGeometry& g, const float* col, float* image) noexcept;

/// Batched im2col: lowers `batch` images (contiguous [N,C,H,W]) into one
/// column matrix [C*K*K, N * OH*OW], sample s occupying the column slab
/// [s*OH*OW, (s+1)*OH*OW). A convolution over the whole batch is then a
/// single GEMM against this matrix instead of N small ones. `col` must
/// hold patch_size() * batch * out_h() * out_w() floats. Parallelised over
/// samples (disjoint writes, deterministic).
void im2col_batched(const ConvGeometry& g, const float* images,
                    std::int64_t batch, float* col) noexcept;

/// Adjoint of im2col_batched: accumulates the [C*K*K, N*OH*OW] column
/// matrix back into `batch` images (contributions are added; zero `images`
/// first for a fresh result). Parallelised over samples.
void col2im_batched(const ConvGeometry& g, const float* col,
                    std::int64_t batch, float* images) noexcept;

}  // namespace zka::tensor
