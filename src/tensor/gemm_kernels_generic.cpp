// Baseline-ISA instantiation of the blocked GEMM kernels (no extra -m
// flags; whatever the toolchain's default target provides).
#define ZKA_GEMM_NS generic
#include "tensor/gemm_kernels.inl"
