// Internal header: ISA dispatch for the blocked GEMM kernels.
//
// The kernel implementation lives in gemm_kernels.inl and is compiled once
// per instruction-set tier (generic / AVX2+FMA / AVX-512F) into separate
// translation units, each wrapping the identical code in its own namespace.
// ops.cpp picks the widest tier the *running* CPU supports at startup, so a
// single portable binary gets native-width SIMD without -march=native.
//
// All tiers share one blocking scheme (MR=4 x NR=32 register tile, KC=256
// k-panel, NC=256 column panel) and one accumulation policy (see ops.h), so
// they differ only in vector width, never in the association order of the
// float additions within a tile. Results are still ISA-dependent (an FMA
// contracts the intermediate rounding) but run-to-run and thread-count
// invariant on any given machine.
#pragma once

#include <cstdint>

namespace zka::tensor::detail {

/// Operand layout of the C[M,N] = alpha * op(A) @ op(B) + beta * C kernels.
enum class GemmLayout {
  kAB,   // A is [M,K] row-major, B is [K,N] row-major
  kAtB,  // A is [K,M] (transposed), B is [K,N]
  kABt,  // A is [M,K], B is [N,K] (transposed)
};

// Register/cache blocking parameters, shared by every tier and by the
// chunking logic in ops.cpp (chunk boundaries must align to these).
inline constexpr std::int64_t kGemmMR = 4;    // rows per register tile
inline constexpr std::int64_t kGemmNR = 32;   // cols per register tile
inline constexpr std::int64_t kGemmKC = 256;  // k extent of a packed panel
inline constexpr std::int64_t kGemmNC = 256;  // column extent of an L2 block

/// Computes the rows [r0, r1) x cols [c0, c1) sub-block of
/// C = alpha * op(A) @ op(B) + C. The caller has already applied beta to C.
/// r0 must be a multiple of kGemmMR and c0 a multiple of kGemmNC, so that
/// any chunked partition tiles C exactly like a single full-range call.
using GemmRangesFn = void (*)(GemmLayout layout, std::int64_t m,
                              std::int64_t n, std::int64_t k, float alpha,
                              const float* a, const float* b, float* c,
                              std::int64_t r0, std::int64_t r1,
                              std::int64_t c0, std::int64_t c1);

namespace generic {
void gemm_ranges(GemmLayout layout, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::int64_t r0, std::int64_t r1, std::int64_t c0,
                 std::int64_t c1);
}

#if defined(ZKA_GEMM_AVX2)
namespace avx2 {
void gemm_ranges(GemmLayout layout, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::int64_t r0, std::int64_t r1, std::int64_t c0,
                 std::int64_t c1);
}
#endif

#if defined(ZKA_GEMM_AVX512)
namespace avx512 {
void gemm_ranges(GemmLayout layout, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::int64_t r0, std::int64_t r1, std::int64_t c0,
                 std::int64_t c1);
}
#endif

}  // namespace zka::tensor::detail
