#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace zka::nn {

Tensor softmax_rows(const Tensor& logits) {
  ZKA_CHECK(logits.rank() == 2, "softmax_rows requires rank-2 logits, got %s",
            tensor::shape_to_string(logits.shape()).c_str());
  const std::int64_t n = logits.dim(0);
  const std::int64_t l = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const auto in = logits.data().subspan(static_cast<std::size_t>(i * l),
                                          static_cast<std::size_t>(l));
    const auto out = probs.data().subspan(static_cast<std::size_t>(i * l),
                                          static_cast<std::size_t>(l));
    const float hi = *std::max_element(in.begin(), in.end());
    double sum = 0.0;
    for (std::int64_t j = 0; j < l; ++j) {
      out[j] = std::exp(in[j] - hi);
      sum += static_cast<double>(out[j]);
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < l; ++j) out[j] *= inv;
  }
  return probs;
}

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const std::int64_t> labels) {
  ZKA_CHECK(logits.rank() == 2 &&
                logits.dim(0) == static_cast<std::int64_t>(labels.size()),
            "SoftmaxCrossEntropy: logits %s vs %zu labels",
            tensor::shape_to_string(logits.shape()).c_str(), labels.size());
  const std::int64_t l = logits.dim(1);
  Tensor targets(logits.shape());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ZKA_CHECK(labels[i] >= 0 && labels[i] < l,
              "SoftmaxCrossEntropy: label %lld out of [0, %lld)",
              static_cast<long long>(labels[i]), static_cast<long long>(l));
    targets[static_cast<std::int64_t>(i) * l + labels[i]] = 1.0f;
  }
  return forward(logits, targets);
}

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const Tensor& soft_targets) {
  ZKA_CHECK_SHAPE(soft_targets.shape(), logits.shape(),
                  "SoftmaxCrossEntropy targets");
  probs_ = softmax_rows(logits);
  targets_ = soft_targets;
  const std::int64_t n = logits.dim(0);
  double loss = 0.0;
  for (std::int64_t i = 0; i < probs_.numel(); ++i) {
    if (targets_[i] != 0.0f) {
      loss -= static_cast<double>(targets_[i]) *
              static_cast<double>(std::log(std::max(probs_[i], 1e-12f)));
    }
  }
  return static_cast<double>(scale_) * loss /
         static_cast<double>(std::max<std::int64_t>(n, 1));
}

Tensor SoftmaxCrossEntropy::backward() const {
  ZKA_CHECK(probs_.numel() > 0,
            "SoftmaxCrossEntropy::backward before forward");
  const std::int64_t n = probs_.dim(0);
  Tensor grad = probs_;
  grad -= targets_;
  grad *= scale_ / static_cast<float>(std::max<std::int64_t>(n, 1));
  return grad;
}

double accuracy(const Tensor& logits, std::span<const std::int64_t> labels) {
  if (labels.empty()) return 0.0;
  const auto preds = logits.argmax_rows();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace zka::nn
