// Flattens [N, ...] to [N, features]; backward restores the input shape.
#pragma once

#include "nn/module.h"

namespace zka::nn {

class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

/// Inverse of Flatten for generators: reshapes [N, C*H*W] to [N, C, H, W].
class Unflatten : public Module {
 public:
  Unflatten(std::int64_t channels, std::int64_t height, std::int64_t width)
      : channels_(channels), height_(height), width_(width) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Unflatten"; }

 private:
  std::int64_t channels_;
  std::int64_t height_;
  std::int64_t width_;
};

}  // namespace zka::nn
