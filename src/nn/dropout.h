// Inverted dropout. Stateless layers elsewhere in this framework have no
// train/eval distinction; Dropout carries its own `training` flag, and the
// FL client leaves it on during local training and off for evaluation.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace zka::nn {

class Dropout : public Module {
 public:
  /// Drops activations with probability `rate` during training and scales
  /// the survivors by 1/(1-rate) so the expected activation is unchanged.
  explicit Dropout(float rate, std::uint64_t seed = 0xd20);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  void set_training(bool training) noexcept { training_ = training; }
  bool training() const noexcept { return training_; }
  float rate() const noexcept { return rate_; }

 private:
  float rate_;
  bool training_ = true;
  util::Rng rng_;
  Tensor mask_;  // scaled keep mask of the last training forward
};

}  // namespace zka::nn
