// Stochastic gradient descent with optional momentum and weight decay.
#pragma once

#include <vector>

#include "nn/module.h"

namespace zka::nn {

struct SgdOptions {
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions options);
  explicit Sgd(Module& module, SgdOptions options)
      : Sgd(module.parameters(), options) {}

  /// Applies one update from the accumulated gradients.
  void step();

  /// Zeroes the gradients of all managed parameters.
  void zero_grad();

  float learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<Parameter*> params_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // allocated lazily when momentum != 0
};

}  // namespace zka::nn
