#include "nn/sequential.h"

namespace zka::nn {

Module& Sequential::add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace zka::nn
