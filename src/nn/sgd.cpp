#include "nn/sgd.h"

#include "util/check.h"

namespace zka::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  if (options_.momentum != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_) {
      velocity_.emplace_back(p->value.shape());
    }
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    auto value = p.value.data();
    auto grad = p.grad.data();
    ZKA_DCHECK(value.size() == grad.size(),
               "Sgd: param %zu has %zu values but %zu grads", k, value.size(),
               grad.size());
    for (std::size_t i = 0; i < value.size(); ++i) {
      float g = grad[i];
      if (options_.weight_decay != 0.0f) {
        g += options_.weight_decay * value[i];
      }
      if (options_.momentum != 0.0f) {
        auto v = velocity_[k].data();
        v[i] = options_.momentum * v[i] + g;
        g = v[i];
      }
      value[i] -= options_.learning_rate * g;
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

}  // namespace zka::nn
