// 2-D convolution over NCHW input, lowered to GEMM via im2col.
#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace zka::util {
class Rng;
}

namespace zka::nn {

class Conv2d : public Module {
 public:
  /// Square kernel / stride / symmetric padding. Weight layout is
  /// [out_channels, in_channels * kernel * kernel]; He-uniform init.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

  std::int64_t in_channels() const noexcept { return in_channels_; }
  std::int64_t out_channels() const noexcept { return out_channels_; }
  std::int64_t kernel() const noexcept { return kernel_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  tensor::ConvGeometry geometry_{};
  // Scratch arenas reused across forward/backward calls so the whole batch
  // is lowered and multiplied in one GEMM without per-call allocation.
  // col_:  [patch, N*OH*OW] im2col of the cached input (forward, reused by
  //        the weight-gradient GEMM in backward).
  // buf_:  [OC, N*OH*OW] GEMM output (forward) / gathered dY (backward).
  // gcol_: [patch, N*OH*OW] column-space input gradient (backward).
  std::vector<float> col_;
  std::vector<float> buf_;
  std::vector<float> gcol_;
};

}  // namespace zka::nn
