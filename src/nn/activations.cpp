#include "nn/activations.h"

#include <cmath>

#include "util/check.h"

namespace zka::nn {

namespace {
void check_grad_shape(const Tensor& cached, const Tensor& grad,
                      const char* layer) {
  ZKA_CHECK(cached.same_shape(grad), "%s backward: grad shape %s vs %s",
            layer, tensor::shape_to_string(grad.shape()).c_str(),
            tensor::shape_to_string(cached.shape()).c_str());
}
}  // namespace

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& x : out.data()) x = x > 0.0f ? x : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  check_grad_shape(cached_input_, grad_output, "ReLU");
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& x : out.data()) x = x > 0.0f ? x : slope_ * x;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  check_grad_shape(cached_input_, grad_output, "LeakyReLU");
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] *= slope_;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& x : out.data()) x = std::tanh(x);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  check_grad_shape(cached_output_, grad_output, "Tanh");
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= 1.0f - cached_output_[i] * cached_output_[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& x : out.data()) x = 1.0f / (1.0f + std::exp(-x));
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  check_grad_shape(cached_output_, grad_output, "Sigmoid");
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= cached_output_[i] * (1.0f - cached_output_[i]);
  }
  return grad;
}

}  // namespace zka::nn
