// Layer-wise neural-network framework with explicit forward/backward.
//
// There is no tape autograd: each Module caches what its backward pass
// needs during forward, and backward(grad_output) both accumulates
// parameter gradients and returns the gradient w.r.t. the module input.
// That input gradient is exactly what the ZKA attacks exploit — they
// backpropagate through a *frozen* global classifier into a trainable
// filter layer (ZKA-R) or generator (ZKA-G) by simply not stepping the
// classifier's parameters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace zka::nn {

using tensor::Tensor;

/// A learnable tensor plus its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the output and caches whatever backward() will need.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Accumulates parameter gradients (+=) and returns dLoss/dInput.
  /// Must be called after forward() with a grad of the forward output's
  /// shape. Valid to call multiple times only after another forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters in a stable order (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  /// Zeroes all parameter gradients.
  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.fill(0.0f);
  }
};

/// Total number of scalar parameters.
std::int64_t num_params(Module& module);

/// Concatenates all parameter values into one flat vector. This is the FL
/// wire format: clients exchange flat vectors, defenses operate on them.
std::vector<float> get_flat_params(Module& module);

/// Loads a flat vector produced by get_flat_params back into the module.
/// Throws std::invalid_argument on size mismatch.
void set_flat_params(Module& module, std::span<const float> flat);

/// Concatenates all parameter gradients into one flat vector.
std::vector<float> get_flat_grads(Module& module);

/// Adds `delta` (flat, same layout as get_flat_params) onto the gradients.
/// Used to inject regularizer gradients such as the distance term L_d.
void add_to_flat_grads(Module& module, std::span<const float> delta);

}  // namespace zka::nn
