#include "nn/dropout.h"

#include <stdexcept>

namespace zka::nn {

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  const float keep_scale = 1.0f / (1.0f - rate_);
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = rng_.uniform() >= rate_;
    mask_[i] = keep ? keep_scale : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.numel() == 0) return grad_output;  // eval mode pass-through
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument("Dropout backward: grad shape mismatch");
  }
  Tensor grad = grad_output;
  grad *= mask_;
  return grad;
}

}  // namespace zka::nn
