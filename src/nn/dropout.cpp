#include "nn/dropout.h"

#include "util/check.h"

namespace zka::nn {

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  ZKA_CHECK(rate >= 0.0f && rate < 1.0f, "Dropout: rate %g not in [0, 1)",
            static_cast<double>(rate));
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  const float keep_scale = 1.0f / (1.0f - rate_);
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = rng_.uniform() >= static_cast<double>(rate_);
    mask_[i] = keep ? keep_scale : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.numel() == 0) return grad_output;  // eval mode pass-through
  ZKA_CHECK_SHAPE(grad_output.shape(), mask_.shape(),
                  "Dropout backward grad");
  Tensor grad = grad_output;
  grad *= mask_;
  return grad;
}

}  // namespace zka::nn
