#include "nn/linear.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace zka::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor({out_features, in_features})),
      bias_(Tensor({out_features})) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features));  // He-uniform.
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor Linear::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 2 && input.dim(1) == in_features_,
            "Linear: expected [N, %lld], got %s",
            static_cast<long long>(in_features_),
            tensor::shape_to_string(input.shape()).c_str());
  cached_input_ = input;
  const std::int64_t n = input.dim(0);
  // Prefill each output row with the bias and let the GEMM accumulate onto
  // it (beta = 1) — saves a second pass over the output.
  Tensor out({n, out_features_});
  const auto bias = bias_.value.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto row =
        out.data().subspan(static_cast<std::size_t>(i * out_features_),
                           static_cast<std::size_t>(out_features_));
    std::copy(bias.begin(), bias.end(), row.begin());
  }
  tensor::gemm_a_bt(n, out_features_, in_features_, 1.0f, input.raw(),
                    weight_.value.raw(), 1.0f, out.raw());
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  ZKA_CHECK(cached_input_.rank() == 2, "Linear::backward before forward");
  const std::int64_t n = cached_input_.dim(0);
  ZKA_CHECK_SHAPE(grad_output.shape(), (tensor::Shape{n, out_features_}),
                  "Linear backward grad");
  // dW += dYᵀ @ X ; dY is [N, out], X is [N, in].
  tensor::gemm_at_b(out_features_, in_features_, n, 1.0f, grad_output.raw(),
                    cached_input_.raw(), 1.0f, weight_.grad.raw());
  // db += column sums of dY.
  for (std::int64_t i = 0; i < n; ++i) {
    const auto row = grad_output.data().subspan(
        static_cast<std::size_t>(i * out_features_),
        static_cast<std::size_t>(out_features_));
    for (std::int64_t j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
  }
  // dX = dY @ W.
  Tensor grad_input({n, in_features_});
  tensor::gemm(n, in_features_, out_features_, 1.0f, grad_output.raw(),
               weight_.value.raw(), 0.0f, grad_input.raw());
  return grad_input;
}

}  // namespace zka::nn
