#include "nn/batchnorm.h"

#include <cmath>
#include <span>

#include "util/check.h"

namespace zka::nn {
namespace {

/// Bounds-checked view of the NCHW plane (sample s, channel c): `spatial`
/// contiguous floats starting at (s * channels + c) * spatial.
std::span<const float> plane_of(const Tensor& t, std::int64_t s,
                                std::int64_t channels, std::int64_t c,
                                std::int64_t spatial) {
  return t.data().subspan(
      static_cast<std::size_t>((s * channels + c) * spatial),
      static_cast<std::size_t>(spatial));
}

std::span<float> plane_of(Tensor& t, std::int64_t s, std::int64_t channels,
                          std::int64_t c, std::int64_t spatial) {
  return t.data().subspan(
      static_cast<std::size_t>((s * channels + c) * spatial),
      static_cast<std::size_t>(spatial));
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, float epsilon, float momentum)
    : channels_(channels), epsilon_(epsilon), momentum_(momentum),
      gamma_(Tensor({channels}, 1.0f)), beta_(Tensor({channels})),
      running_mean_(Tensor({channels})),
      running_var_(Tensor({channels}, 1.0f)) {
  ZKA_CHECK(channels > 0, "BatchNorm2d: channels %lld <= 0",
            static_cast<long long>(channels));
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 4 && input.dim(1) == channels_,
            "BatchNorm2d: expected [N, %lld, H, W], got %s",
            static_cast<long long>(channels_),
            tensor::shape_to_string(input.shape()).c_str());
  input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t spatial = h * w;
  const std::int64_t m = n * spatial;

  Tensor out(input.shape());
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0);

  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      for (std::int64_t s = 0; s < n; ++s) {
        const auto in_plane = plane_of(input, s, channels_, c, spatial);
        for (std::int64_t i = 0; i < spatial; ++i) {
          mean += static_cast<double>(in_plane[i]);
        }
      }
      mean /= static_cast<double>(m);
      for (std::int64_t s = 0; s < n; ++s) {
        const auto in_plane = plane_of(input, s, channels_, c, spatial);
        for (std::int64_t i = 0; i < spatial; ++i) {
          const double d = static_cast<double>(in_plane[i]) - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);  // biased, as in training-mode BN
      running_mean_.value[c] =
          momentum_ * running_mean_.value[c] +
          (1.0f - momentum_) * static_cast<float>(mean);
      running_var_.value[c] = momentum_ * running_var_.value[c] +
                              (1.0f - momentum_) * static_cast<float>(var);
    } else {
      mean = running_mean_.value[c];
      var = running_var_.value[c];
    }
    const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(epsilon_));
    cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::int64_t s = 0; s < n; ++s) {
      const auto in_plane = plane_of(input, s, channels_, c, spatial);
      const auto xhat_plane = plane_of(cached_xhat_, s, channels_, c, spatial);
      const auto out_plane = plane_of(out, s, channels_, c, spatial);
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float xhat = static_cast<float>(
            (static_cast<double>(in_plane[i]) - mean) * inv_std);
        xhat_plane[i] = xhat;
        out_plane[i] = g * xhat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  ZKA_CHECK(!input_shape_.empty(), "BatchNorm2d::backward before forward");
  ZKA_CHECK_SHAPE(grad_output.shape(), input_shape_,
                  "BatchNorm2d backward grad");
  const std::int64_t n = input_shape_[0];
  const std::int64_t spatial = input_shape_[2] * input_shape_[3];
  const std::int64_t m = n * spatial;

  Tensor grad_input(input_shape_);
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Reductions: sum(dy), sum(dy * xhat).
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const auto dy = plane_of(grad_output, s, channels_, c, spatial);
      const auto xhat = plane_of(cached_xhat_, s, channels_, c, spatial);
      for (std::int64_t i = 0; i < spatial; ++i) {
        sum_dy += static_cast<double>(dy[i]);
        sum_dy_xhat +=
            static_cast<double>(dy[i]) * static_cast<double>(xhat[i]);
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const double inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const double g = gamma_.value[c];
    if (training_) {
      const double mean_dy = sum_dy / static_cast<double>(m);
      const double mean_dy_xhat = sum_dy_xhat / static_cast<double>(m);
      for (std::int64_t s = 0; s < n; ++s) {
        const auto dy = plane_of(grad_output, s, channels_, c, spatial);
        const auto xhat = plane_of(cached_xhat_, s, channels_, c, spatial);
        const auto dx = plane_of(grad_input, s, channels_, c, spatial);
        for (std::int64_t i = 0; i < spatial; ++i) {
          dx[i] = static_cast<float>(
              g * inv_std *
              (static_cast<double>(dy[i]) - mean_dy -
               static_cast<double>(xhat[i]) * mean_dy_xhat));
        }
      }
    } else {
      // Eval mode: statistics are constants.
      for (std::int64_t s = 0; s < n; ++s) {
        const auto dy = plane_of(grad_output, s, channels_, c, spatial);
        const auto dx = plane_of(grad_input, s, channels_, c, spatial);
        for (std::int64_t i = 0; i < spatial; ++i) {
          dx[i] = static_cast<float>(g * inv_std * static_cast<double>(dy[i]));
        }
      }
    }
  }
  return grad_input;
}

}  // namespace zka::nn
