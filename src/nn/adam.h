// Adam optimizer (Kingma & Ba). Used by the extension experiments for
// generator training; SGD remains the default everywhere the paper's
// pipeline is reproduced.
#pragma once

#include <vector>

#include "nn/module.h"

namespace zka::nn {

struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions options);
  explicit Adam(Module& module, AdamOptions options)
      : Adam(module.parameters(), options) {}

  /// Applies one bias-corrected update from the accumulated gradients.
  void step();

  /// Zeroes the gradients of all managed parameters.
  void zero_grad();

  std::int64_t steps_taken() const noexcept { return t_; }
  float learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<Parameter*> params_;
  AdamOptions options_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  std::int64_t t_ = 0;
};

}  // namespace zka::nn
