// Max pooling over NCHW input; backward routes gradients to the argmax taps.
#pragma once

#include "nn/module.h"

namespace zka::nn {

class MaxPool2d : public Module {
 public:
  /// Square window, stride defaults to the window size (non-overlapping).
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  tensor::Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

}  // namespace zka::nn
