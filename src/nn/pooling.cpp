#include "nn/pooling.h"

#include "util/check.h"

namespace zka::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  ZKA_CHECK(kernel_ > 0 && stride_ > 0,
            "MaxPool2d: kernel %lld / stride %lld must be positive",
            static_cast<long long>(kernel_), static_cast<long long>(stride_));
}

Tensor MaxPool2d::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 4, "MaxPool2d: expected NCHW input, got %s",
            tensor::shape_to_string(input.shape()).c_str());
  input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  ZKA_CHECK(oh > 0 && ow > 0, "MaxPool2d: window %lld larger than input %s",
            static_cast<long long>(kernel_),
            tensor::shape_to_string(input.shape()).c_str());
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  std::int64_t o = 0;
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const std::int64_t plane_off = (s * c + ch) * h * w;
      const auto plane = input.data().subspan(
          static_cast<std::size_t>(plane_off),
          static_cast<std::size_t>(h * w));
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++o) {
          float best = plane[(y * stride_) * w + (x * stride_)];
          std::int64_t best_idx = (y * stride_) * w + (x * stride_);
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = y * stride_ + ky;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = x * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          out[o] = best;
          argmax_[static_cast<std::size_t>(o)] = plane_off + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  ZKA_CHECK(grad_output.numel() == static_cast<std::int64_t>(argmax_.size()),
            "MaxPool2d backward: grad numel %lld != %zu",
            static_cast<long long>(grad_output.numel()), argmax_.size());
  Tensor grad_input(input_shape_);
  for (std::size_t o = 0; o < argmax_.size(); ++o) {
    grad_input[argmax_[o]] += grad_output[static_cast<std::int64_t>(o)];
  }
  return grad_input;
}

}  // namespace zka::nn
