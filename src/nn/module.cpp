#include "nn/module.h"

#include <algorithm>
#include <stdexcept>

namespace zka::nn {

std::int64_t num_params(Module& module) {
  std::int64_t n = 0;
  for (const Parameter* p : module.parameters()) n += p->value.numel();
  return n;
}

std::vector<float> get_flat_params(Module& module) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(num_params(module)));
  for (const Parameter* p : module.parameters()) {
    const auto data = p->value.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void set_flat_params(Module& module, std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t n = static_cast<std::size_t>(p->value.numel());
    if (offset + n > flat.size()) {
      throw std::invalid_argument("set_flat_params: vector too short");
    }
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + n),
              p->value.data().begin());
    offset += n;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("set_flat_params: vector too long (" +
                                std::to_string(flat.size()) + " vs " +
                                std::to_string(offset) + " params)");
  }
}

std::vector<float> get_flat_grads(Module& module) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(num_params(module)));
  for (const Parameter* p : module.parameters()) {
    const auto data = p->grad.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void add_to_flat_grads(Module& module, std::span<const float> delta) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t n = static_cast<std::size_t>(p->grad.numel());
    if (offset + n > delta.size()) {
      throw std::invalid_argument("add_to_flat_grads: vector too short");
    }
    auto grad = p->grad.data();
    for (std::size_t i = 0; i < n; ++i) grad[i] += delta[offset + i];
    offset += n;
  }
  if (offset != delta.size()) {
    throw std::invalid_argument("add_to_flat_grads: vector too long");
  }
}

}  // namespace zka::nn
