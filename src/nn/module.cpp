#include "nn/module.h"

#include <algorithm>

#include "util/check.h"

namespace zka::nn {

std::int64_t num_params(Module& module) {
  std::int64_t n = 0;
  for (const Parameter* p : module.parameters()) n += p->value.numel();
  return n;
}

std::vector<float> get_flat_params(Module& module) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(num_params(module)));
  for (const Parameter* p : module.parameters()) {
    const auto data = p->value.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void set_flat_params(Module& module, std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t n = static_cast<std::size_t>(p->value.numel());
    ZKA_CHECK(offset + n <= flat.size(),
              "set_flat_params: vector of %zu too short at offset %zu",
              flat.size(), offset);
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + n),
              p->value.data().begin());
    offset += n;
  }
  ZKA_CHECK(offset == flat.size(),
            "set_flat_params: vector too long (%zu vs %zu params)",
            flat.size(), offset);
}

std::vector<float> get_flat_grads(Module& module) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(num_params(module)));
  for (const Parameter* p : module.parameters()) {
    const auto data = p->grad.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void add_to_flat_grads(Module& module, std::span<const float> delta) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t n = static_cast<std::size_t>(p->grad.numel());
    ZKA_CHECK(offset + n <= delta.size(),
              "add_to_flat_grads: vector of %zu too short at offset %zu",
              delta.size(), offset);
    auto grad = p->grad.data();
    for (std::size_t i = 0; i < n; ++i) grad[i] += delta[offset + i];
    offset += n;
  }
  ZKA_CHECK(offset == delta.size(),
            "add_to_flat_grads: vector too long (%zu vs %zu params)",
            delta.size(), offset);
}

}  // namespace zka::nn
