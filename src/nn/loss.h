// Softmax + cross-entropy with hard labels or soft target distributions.
//
// Soft targets are what ZKA-R optimizes against (the maximally ambiguous
// Y_D = [1/L, ..., 1/L]); the sign-flippable `scale` is what ZKA-G uses to
// *maximize* cross-entropy w.r.t. the decoy label Ỹ (scale = -1).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace zka::nn {

using tensor::Tensor;

/// Row-wise numerically stable softmax of rank-2 logits.
Tensor softmax_rows(const Tensor& logits);

class SoftmaxCrossEntropy {
 public:
  /// `scale` multiplies the loss (and thus its gradient); -1 turns
  /// minimization into maximization under a gradient-descent optimizer.
  explicit SoftmaxCrossEntropy(float scale = 1.0f) : scale_(scale) {}

  /// Mean cross-entropy over the batch against integer class labels.
  double forward(const Tensor& logits, std::span<const std::int64_t> labels);

  /// Mean cross-entropy against per-row target distributions [N, L].
  double forward(const Tensor& logits, const Tensor& soft_targets);

  /// Gradient w.r.t. the logits of the last forward call:
  /// scale * (softmax - target) / N.
  Tensor backward() const;

  /// Softmax probabilities from the last forward call.
  const Tensor& probabilities() const noexcept { return probs_; }

  float scale() const noexcept { return scale_; }
  void set_scale(float scale) noexcept { scale_ = scale; }

 private:
  float scale_;
  Tensor probs_;
  Tensor targets_;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const std::int64_t> labels);

}  // namespace zka::nn
