#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace zka::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor({out_channels, in_channels * kernel * kernel})),
      bias_(Tensor({out_channels})) {
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: expected [N, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                tensor::shape_to_string(input.shape()));
  }
  cached_input_ = input;
  geometry_ = tensor::ConvGeometry{in_channels_, input.dim(2), input.dim(3),
                                   kernel_, stride_, pad_};
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  const std::int64_t spatial = oh * ow;
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_plane = in_channels_ * input.dim(2) * input.dim(3);
  Tensor out({n, out_channels_, oh, ow});
  std::vector<float> col(static_cast<std::size_t>(patch * spatial));
  for (std::int64_t s = 0; s < n; ++s) {
    tensor::im2col(geometry_, input.raw() + s * in_plane, col.data());
    float* dst = out.raw() + s * out_channels_ * spatial;
    tensor::gemm(out_channels_, spatial, patch, 1.0f, weight_.value.raw(),
                 col.data(), 0.0f, dst);
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float b = bias_.value[c];
      float* plane = dst + c * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) plane[i] += b;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  const std::int64_t spatial = oh * ow;
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_plane =
      in_channels_ * cached_input_.dim(2) * cached_input_.dim(3);
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d backward: bad grad shape " +
                                tensor::shape_to_string(grad_output.shape()));
  }
  Tensor grad_input(cached_input_.shape());
  std::vector<float> col(static_cast<std::size_t>(patch * spatial));
  std::vector<float> grad_col(static_cast<std::size_t>(patch * spatial));
  for (std::int64_t s = 0; s < n; ++s) {
    const float* gout = grad_output.raw() + s * out_channels_ * spatial;
    // dW += dY @ colᵀ  (dY is [OC, spatial], col is [patch, spatial]).
    tensor::im2col(geometry_, cached_input_.raw() + s * in_plane, col.data());
    tensor::gemm_a_bt(out_channels_, patch, spatial, 1.0f, gout, col.data(),
                      1.0f, weight_.grad.raw());
    // db += spatial sums.
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float* plane = gout + c * spatial;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < spatial; ++i) acc += plane[i];
      bias_.grad[c] += acc;
    }
    // dcol = Wᵀ @ dY, then scatter back with col2im.
    tensor::gemm_at_b(patch, spatial, out_channels_, 1.0f, weight_.value.raw(),
                      gout, 0.0f, grad_col.data());
    tensor::col2im(geometry_, grad_col.data(), grad_input.raw() + s * in_plane);
  }
  return grad_input;
}

}  // namespace zka::nn
