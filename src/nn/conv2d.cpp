#include "nn/conv2d.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace zka::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor({out_channels, in_channels * kernel * kernel})),
      bias_(Tensor({out_channels})) {
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 4 && input.dim(1) == in_channels_,
            "Conv2d: expected [N, %lld, H, W], got %s",
            static_cast<long long>(in_channels_),
            tensor::shape_to_string(input.shape()).c_str());
  cached_input_ = input;
  geometry_ = tensor::ConvGeometry{in_channels_, input.dim(2), input.dim(3),
                                   kernel_, stride_, pad_};
  const std::int64_t n = input.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  ZKA_CHECK(oh > 0 && ow > 0, "Conv2d: kernel %lld larger than padded %s",
            static_cast<long long>(kernel_),
            tensor::shape_to_string(input.shape()).c_str());
  const std::int64_t spatial = oh * ow;
  const std::int64_t cols = n * spatial;
  const std::int64_t patch = geometry_.patch_size();

  // Whole batch lowered into one [patch, N*spatial] column matrix, then a
  // single GEMM for all samples. The scratch arenas persist across calls.
  col_.resize(static_cast<std::size_t>(patch * cols));
  tensor::im2col_batched(geometry_, input.raw(), n, col_.data());
  buf_.resize(static_cast<std::size_t>(out_channels_ * cols));
  tensor::gemm(out_channels_, cols, patch, 1.0f, weight_.value.raw(),
               col_.data(), 0.0f, buf_.data());

  // buf_ is [OC, N*spatial]; the output wants [N, OC, spatial]. Fuse the
  // permutation with the bias add.
  Tensor out({n, out_channels_, oh, ow});
  for (std::int64_t c = 0; c < out_channels_; ++c) {
    const float bias = bias_.value[c];
    const float* src = buf_.data() + c * cols;
    for (std::int64_t s = 0; s < n; ++s) {
      // zka-lint: allow(A3) -- innermost permute+bias walk of the im2col
      float* dst = out.raw() + (s * out_channels_ + c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) dst[i] = src[s * spatial + i] + bias;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  ZKA_CHECK(cached_input_.rank() == 4, "Conv2d::backward before forward");
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  const std::int64_t spatial = oh * ow;
  const std::int64_t cols = n * spatial;
  const std::int64_t patch = geometry_.patch_size();
  ZKA_CHECK_SHAPE(grad_output.shape(),
                  (tensor::Shape{n, out_channels_, oh, ow}),
                  "Conv2d backward grad");

  // Gather dY into [OC, N*spatial] (the layout the batched GEMMs want) and
  // accumulate the bias gradient along the way.
  buf_.resize(static_cast<std::size_t>(out_channels_ * cols));
  for (std::int64_t c = 0; c < out_channels_; ++c) {
    float* dst = buf_.data() + c * cols;
    float acc = 0.0f;
    for (std::int64_t s = 0; s < n; ++s) {
      // zka-lint: allow(A3) -- dY gather feeding the batched GEMMs
      const float* src = grad_output.raw() + (s * out_channels_ + c) * spatial;
      std::memcpy(dst + s * spatial, src,
                  static_cast<std::size_t>(spatial) * sizeof(float));
      for (std::int64_t i = 0; i < spatial; ++i) acc += src[i];
    }
    bias_.grad[c] += acc;
  }

  // dW += dY @ colᵀ in one GEMM over the whole batch; col_ still holds the
  // columns of cached_input_ from forward().
  tensor::gemm_a_bt(out_channels_, patch, cols, 1.0f, buf_.data(), col_.data(),
                    1.0f, weight_.grad.raw());

  // dcol = Wᵀ @ dY, then scatter every sample's columns back to the image.
  gcol_.resize(static_cast<std::size_t>(patch * cols));
  tensor::gemm_at_b(patch, cols, out_channels_, 1.0f, weight_.value.raw(),
                    buf_.data(), 0.0f, gcol_.data());
  Tensor grad_input(cached_input_.shape());
  tensor::col2im_batched(geometry_, gcol_.data(), n, grad_input.raw());
  return grad_input;
}

}  // namespace zka::nn
