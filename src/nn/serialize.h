// Binary (de)serialization of flat parameter vectors — checkpointing for
// federations and crafted updates. Format: magic "ZKAW", u32 version,
// u64 count, raw little-endian float32 payload, u64 FNV-1a checksum.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace zka::nn {

/// Writes the parameter vector to `path`. Throws std::runtime_error on
/// I/O failure.
void save_params(const std::string& path, std::span<const float> params);

/// Reads a parameter vector written by save_params. Throws
/// std::runtime_error on I/O failure, bad magic/version, or checksum
/// mismatch (truncated/corrupted file).
std::vector<float> load_params(const std::string& path);

/// FNV-1a over the raw bytes of the parameter payload (exposed for tests).
std::uint64_t params_checksum(std::span<const float> params) noexcept;

}  // namespace zka::nn
