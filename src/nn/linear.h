// Fully connected layer: y = x @ Wᵀ + b over rank-2 [batch, features] input.
#pragma once

#include "nn/module.h"

namespace zka::util {
class Rng;
}

namespace zka::nn {

class Linear : public Module {
 public:
  /// He-uniform initialized weights [out_features, in_features], zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const noexcept { return in_features_; }
  std::int64_t out_features() const noexcept { return out_features_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace zka::nn
