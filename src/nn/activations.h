// Elementwise activations; each caches what its derivative needs.
#pragma once

#include "nn/module.h"

namespace zka::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace zka::nn
