#include "nn/flatten.h"

#include <stdexcept>

namespace zka::nn {

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 1) throw std::invalid_argument("Flatten: rank-0 input");
  input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t features = n > 0 ? input.numel() / n : 0;
  return input.reshape({n, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshape(input_shape_);
}

Tensor Unflatten::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != channels_ * height_ * width_) {
    throw std::invalid_argument("Unflatten: expected [N, " +
                                std::to_string(channels_ * height_ * width_) +
                                "], got " +
                                tensor::shape_to_string(input.shape()));
  }
  return input.reshape({input.dim(0), channels_, height_, width_});
}

Tensor Unflatten::backward(const Tensor& grad_output) {
  return grad_output.reshape(
      {grad_output.dim(0), channels_ * height_ * width_});
}

}  // namespace zka::nn
