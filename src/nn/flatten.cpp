#include "nn/flatten.h"

#include "util/check.h"

namespace zka::nn {

Tensor Flatten::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() >= 1, "Flatten: rank-0 input");
  input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t features = n > 0 ? input.numel() / n : 0;
  return input.reshape({n, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  ZKA_CHECK(!input_shape_.empty(), "Flatten::backward before forward");
  return grad_output.reshape(input_shape_);
}

Tensor Unflatten::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 2 && input.dim(1) == channels_ * height_ * width_,
            "Unflatten: expected [N, %lld], got %s",
            static_cast<long long>(channels_ * height_ * width_),
            tensor::shape_to_string(input.shape()).c_str());
  return input.reshape({input.dim(0), channels_, height_, width_});
}

Tensor Unflatten::backward(const Tensor& grad_output) {
  ZKA_CHECK(grad_output.rank() == 4, "Unflatten backward: grad rank %zu != 4",
            grad_output.rank());
  return grad_output.reshape(
      {grad_output.dim(0), channels_ * height_ * width_});
}

}  // namespace zka::nn
