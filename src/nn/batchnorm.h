// 2-D batch normalization over NCHW input (per-channel statistics).
//
// Training mode normalizes with batch statistics and maintains running
// estimates; eval mode normalizes with the running estimates. Note for FL
// use: the running statistics are part of the parameter vector on purpose
// — federated aggregation of BatchNorm state is exactly the kind of
// side-channel robust aggregators must handle, and keeping them in the
// flat wire format means defenses see them too.
#pragma once

#include "nn/module.h"

namespace zka::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float epsilon = 1e-5f,
                       float momentum = 0.9f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// gamma, beta, running mean, running variance — all aggregated in FL.
  std::vector<Parameter*> parameters() override {
    return {&gamma_, &beta_, &running_mean_, &running_var_};
  }
  std::string name() const override { return "BatchNorm2d"; }

  void set_training(bool training) noexcept { training_ = training; }
  bool training() const noexcept { return training_; }

 private:
  std::int64_t channels_;
  float epsilon_;
  float momentum_;
  bool training_ = true;
  Parameter gamma_;
  Parameter beta_;
  Parameter running_mean_;  // grad unused; carried as state
  Parameter running_var_;
  // Cached for backward.
  Tensor cached_xhat_;
  std::vector<double> cached_inv_std_;
  tensor::Shape input_shape_;
};

}  // namespace zka::nn
