// Transposed (fractionally strided) 2-D convolution over NCHW input.
//
// Used by the ZKA-G generator (TCNN) to upsample a latent feature map into
// an image. Implemented as the exact adjoint of Conv2d: forward scatters
// with col2im, backward gathers with im2col.
#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace zka::util {
class Rng;
}

namespace zka::nn {

class ConvTranspose2d : public Module {
 public:
  /// Output spatial size: (H-1)*stride - 2*pad + kernel.
  /// Weight layout: [in_channels, out_channels * kernel * kernel]
  /// (mirrors torch's ConvTranspose2d [in, out, kH, kW]).
  ConvTranspose2d(std::int64_t in_channels, std::int64_t out_channels,
                  std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                  util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "ConvTranspose2d"; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // Geometry of the *equivalent forward conv* that maps the transposed
  // conv's output back to its input: in_channels = out_channels_ here.
  tensor::ConvGeometry geometry_{};
  // Scratch arenas reused across forward/backward calls (one big GEMM over
  // the batch instead of one per sample).
  // xperm_: [IC, N*H*W] input gathered channel-major (forward, reused by
  //         the weight-gradient GEMM in backward).
  // col_:   [patch, N*H*W] column matrix — Wᵀ@x in forward, im2col of the
  //         output gradient in backward.
  // buf_:   [IC, N*H*W] input gradient before scattering back to NCHW.
  std::vector<float> xperm_;
  std::vector<float> col_;
  std::vector<float> buf_;
};

}  // namespace zka::nn
