// Ordered container of modules; forward chains them, backward reverses.
#pragma once

#include <memory>

#include "nn/module.h"

namespace zka::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer and returns a reference for optional further wiring.
  Module& add(std::unique_ptr<Module> layer);

  template <typename Layer, typename... Args>
  Layer& emplace(Args&&... args) {
    auto layer = std::make_unique<Layer>(std::forward<Args>(args)...);
    Layer& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const noexcept { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace zka::nn
