#include "nn/adam.h"

#include <cmath>

#include "util/check.h"

namespace zka::nn {

Adam::Adam(std::vector<Parameter*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(options_.beta1,
                                      static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(options_.beta2,
                                      static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[k].data();
    auto v = v_[k].data();
    ZKA_DCHECK(value.size() == grad.size() && value.size() == m.size(),
               "Adam: param %zu sizes disagree (%zu values, %zu grads)", k,
               value.size(), grad.size());
    for (std::size_t i = 0; i < value.size(); ++i) {
      float g = grad[i];
      if (options_.weight_decay != 0.0f) {
        g += options_.weight_decay * value[i];
      }
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      value[i] -= options_.learning_rate * m_hat /
                  (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

}  // namespace zka::nn
