#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace zka::nn {

namespace {
constexpr char kMagic[4] = {'Z', 'K', 'A', 'W'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::uint64_t params_checksum(std::span<const float> params) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const float value : params) {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

void save_params(const std::string& path, std::span<const float> params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  const std::uint64_t checksum = params_checksum(params);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

std::vector<float> load_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("load_params: unsupported version in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("load_params: truncated header in " + path);
  std::vector<float> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) throw std::runtime_error("load_params: truncated payload in " + path);
  if (stored != params_checksum(params)) {
    throw std::runtime_error("load_params: checksum mismatch in " + path);
  }
  return params;
}

}  // namespace zka::nn
