#include "nn/conv_transpose2d.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace zka::nn {

ConvTranspose2d::ConvTranspose2d(std::int64_t in_channels,
                                 std::int64_t out_channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor({in_channels, out_channels * kernel * kernel})),
      bias_(Tensor({out_channels})) {
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor ConvTranspose2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("ConvTranspose2d: expected [N, " +
                                std::to_string(in_channels_) +
                                ", H, W], got " +
                                tensor::shape_to_string(input.shape()));
  }
  cached_input_ = input;
  const std::int64_t n = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = (h - 1) * stride_ - 2 * pad_ + kernel_;
  const std::int64_t ow = (w - 1) * stride_ - 2 * pad_ + kernel_;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("ConvTranspose2d: non-positive output size");
  }
  geometry_ = tensor::ConvGeometry{out_channels_, oh, ow, kernel_, stride_, pad_};
  const std::int64_t spatial_in = h * w;
  const std::int64_t spatial_out = oh * ow;
  const std::int64_t patch = geometry_.patch_size();  // OC*K*K
  Tensor out({n, out_channels_, oh, ow});
  std::vector<float> col(static_cast<std::size_t>(patch * spatial_in));
  for (std::int64_t s = 0; s < n; ++s) {
    const float* x = input.raw() + s * in_channels_ * spatial_in;
    // col[OC*K*K, H*W] = Wᵀ[OCKK, IC] @ x[IC, H*W].
    tensor::gemm_at_b(patch, spatial_in, in_channels_, 1.0f,
                      weight_.value.raw(), x, 0.0f, col.data());
    // Scatter columns into the (zero-initialized) output image.
    float* dst = out.raw() + s * out_channels_ * spatial_out;
    tensor::col2im(geometry_, col.data(), dst);
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float b = bias_.value[c];
      float* plane = dst + c * spatial_out;
      for (std::int64_t i = 0; i < spatial_out; ++i) plane[i] += b;
    }
  }
  return out;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t h = cached_input_.dim(2);
  const std::int64_t w = cached_input_.dim(3);
  const std::int64_t spatial_in = h * w;
  const std::int64_t spatial_out = geometry_.in_h * geometry_.in_w;
  const std::int64_t patch = geometry_.patch_size();
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_channels_ ||
      grad_output.dim(2) != geometry_.in_h ||
      grad_output.dim(3) != geometry_.in_w) {
    throw std::invalid_argument("ConvTranspose2d backward: bad grad shape " +
                                tensor::shape_to_string(grad_output.shape()));
  }
  Tensor grad_input(cached_input_.shape());
  std::vector<float> col_g(static_cast<std::size_t>(patch * spatial_in));
  for (std::int64_t s = 0; s < n; ++s) {
    const float* gout = grad_output.raw() + s * out_channels_ * spatial_out;
    const float* x = cached_input_.raw() + s * in_channels_ * spatial_in;
    // Gather the output gradient into columns (adjoint of the scatter).
    tensor::im2col(geometry_, gout, col_g.data());
    // dW[IC, OCKK] += x[IC, HW] @ col_g[OCKK, HW]ᵀ.
    tensor::gemm_a_bt(in_channels_, patch, spatial_in, 1.0f, x, col_g.data(),
                      1.0f, weight_.grad.raw());
    // db += spatial sums of the output gradient.
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float* plane = gout + c * spatial_out;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < spatial_out; ++i) acc += plane[i];
      bias_.grad[c] += acc;
    }
    // dx[IC, HW] = W[IC, OCKK] @ col_g[OCKK, HW].
    tensor::gemm(in_channels_, spatial_in, patch, 1.0f, weight_.value.raw(),
                 col_g.data(), 0.0f,
                 grad_input.raw() + s * in_channels_ * spatial_in);
  }
  return grad_input;
}

}  // namespace zka::nn
