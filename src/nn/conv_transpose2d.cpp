#include "nn/conv_transpose2d.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace zka::nn {

ConvTranspose2d::ConvTranspose2d(std::int64_t in_channels,
                                 std::int64_t out_channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor({in_channels, out_channels * kernel * kernel})),
      bias_(Tensor({out_channels})) {
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Tensor ConvTranspose2d::forward(const Tensor& input) {
  ZKA_CHECK(input.rank() == 4 && input.dim(1) == in_channels_,
            "ConvTranspose2d: expected [N, %lld, H, W], got %s",
            static_cast<long long>(in_channels_),
            tensor::shape_to_string(input.shape()).c_str());
  cached_input_ = input;
  const std::int64_t n = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = (h - 1) * stride_ - 2 * pad_ + kernel_;
  const std::int64_t ow = (w - 1) * stride_ - 2 * pad_ + kernel_;
  ZKA_CHECK(oh > 0 && ow > 0,
            "ConvTranspose2d: non-positive output %lldx%lld for input %s",
            static_cast<long long>(oh), static_cast<long long>(ow),
            tensor::shape_to_string(input.shape()).c_str());
  geometry_ = tensor::ConvGeometry{out_channels_, oh, ow, kernel_, stride_, pad_};
  const std::int64_t spatial_in = h * w;
  const std::int64_t spatial_out = oh * ow;
  const std::int64_t cols = n * spatial_in;
  const std::int64_t patch = geometry_.patch_size();  // OC*K*K

  // Gather the batch channel-major into xperm_[IC, N*H*W] so the whole
  // batch goes through one GEMM; backward reuses it for the weight grad.
  xperm_.resize(static_cast<std::size_t>(in_channels_ * cols));
  for (std::int64_t s = 0; s < n; ++s) {
    // zka-lint: allow(A3) -- channel-major gather into the GEMM arena
    const float* x = input.raw() + s * in_channels_ * spatial_in;
    for (std::int64_t c = 0; c < in_channels_; ++c) {
      std::memcpy(xperm_.data() + c * cols + s * spatial_in,
                  x + c * spatial_in,
                  static_cast<std::size_t>(spatial_in) * sizeof(float));
    }
  }

  // col[OC*K*K, N*H*W] = Wᵀ[OCKK, IC] @ xperm[IC, N*H*W], then scatter every
  // sample's column slab into its (zero-initialized) output image.
  col_.resize(static_cast<std::size_t>(patch * cols));
  tensor::gemm_at_b(patch, cols, in_channels_, 1.0f, weight_.value.raw(),
                    xperm_.data(), 0.0f, col_.data());
  Tensor out({n, out_channels_, oh, ow});
  tensor::col2im_batched(geometry_, col_.data(), n, out.raw());
  for (std::int64_t s = 0; s < n; ++s) {
    // zka-lint: allow(A3) -- bias add over the scattered output planes
    float* dst = out.raw() + s * out_channels_ * spatial_out;
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float b = bias_.value[c];
      float* plane = dst + c * spatial_out;
      for (std::int64_t i = 0; i < spatial_out; ++i) plane[i] += b;
    }
  }
  return out;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  ZKA_CHECK(cached_input_.rank() == 4,
            "ConvTranspose2d::backward before forward");
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t h = cached_input_.dim(2);
  const std::int64_t w = cached_input_.dim(3);
  const std::int64_t spatial_in = h * w;
  const std::int64_t spatial_out = geometry_.in_h * geometry_.in_w;
  const std::int64_t cols = n * spatial_in;
  const std::int64_t patch = geometry_.patch_size();
  ZKA_CHECK_SHAPE(
      grad_output.shape(),
      (tensor::Shape{n, out_channels_, geometry_.in_h, geometry_.in_w}),
      "ConvTranspose2d backward grad");

  // Gather the output gradient into columns (adjoint of forward's scatter),
  // all samples at once; col_ is free to reuse after forward.
  col_.resize(static_cast<std::size_t>(patch * cols));
  tensor::im2col_batched(geometry_, grad_output.raw(), n, col_.data());

  // dW[IC, OCKK] += xperm[IC, N*HW] @ colᵀ; xperm_ is cached from forward.
  tensor::gemm_a_bt(in_channels_, patch, cols, 1.0f, xperm_.data(),
                    col_.data(), 1.0f, weight_.grad.raw());

  // db += spatial sums of the output gradient.
  for (std::int64_t s = 0; s < n; ++s) {
    // zka-lint: allow(A3) -- bias-gradient reduction over dY planes
    const float* gout = grad_output.raw() + s * out_channels_ * spatial_out;
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float* plane = gout + c * spatial_out;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < spatial_out; ++i) acc += plane[i];
      bias_.grad[c] += acc;
    }
  }

  // dx[IC, N*HW] = W[IC, OCKK] @ col, then un-permute into NCHW.
  buf_.resize(static_cast<std::size_t>(in_channels_ * cols));
  tensor::gemm(in_channels_, cols, patch, 1.0f, weight_.value.raw(),
               col_.data(), 0.0f, buf_.data());
  Tensor grad_input(cached_input_.shape());
  for (std::int64_t s = 0; s < n; ++s) {
    // zka-lint: allow(A3) -- un-permute of the GEMM result into NCHW
    float* dst = grad_input.raw() + s * in_channels_ * spatial_in;
    for (std::int64_t c = 0; c < in_channels_; ++c) {
      std::memcpy(dst + c * spatial_in,
                  buf_.data() + c * cols + s * spatial_in,
                  static_cast<std::size_t>(spatial_in) * sizeof(float));
    }
  }
  return grad_input;
}

}  // namespace zka::nn
