#include "core/zka_r.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/sgd.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::core {

ZkaRAttack::ZkaRAttack(models::Task task, ZkaOptions options,
                       std::uint64_t seed)
    : task_(task),
      spec_(models::task_spec(task)),
      options_(options),
      factory_(models::task_model_factory(task)),
      trainer_(options.classifier),
      rng_(seed),
      decoy_label_(options.decoy_label >= 0
                       ? options.decoy_label
                       : static_cast<std::int64_t>(rng_.uniform_index(
                             static_cast<std::uint64_t>(
                                 spec_.num_classes)))) {}

void ZkaRAttack::set_classifier_lambda(double lambda) {
  options_.classifier.lambda = lambda;
  trainer_ = AdversarialTrainer(options_.classifier);
}

attack::Update ZkaRAttack::craft(const attack::AttackContext& ctx) {
  ZKA_PROF_SCOPE("zka_r/craft");
  attack::validate_context(*this, ctx);
  ZKA_CHECK(options_.synthetic_size > 0 && options_.synthesis_epochs >= 0,
            "ZKA-R: synthetic_size=%lld, synthesis_epochs=%lld out of range",
            static_cast<long long>(options_.synthetic_size),
            static_cast<long long>(options_.synthesis_epochs));

  // Frozen global classifier: parameters are loaded but never stepped.
  auto classifier = factory_(rng_.split(0x5ea)());
  nn::set_flat_params(*classifier, ctx.global_model);

  // Ambiguous soft target Y_D = [1/L, ..., 1/L] (per image, batch of 1).
  tensor::Tensor ambiguous({1, spec_.num_classes},
                           1.0f / static_cast<float>(spec_.num_classes));

  const std::int64_t s_count = options_.synthetic_size;
  last_images_ =
      tensor::Tensor({s_count, spec_.channels, spec_.height, spec_.width});
  loss_history_.assign(
      static_cast<std::size_t>(std::max<std::int64_t>(
          options_.train_synthesis ? options_.synthesis_epochs : 0, 0)),
      0.0);

  nn::SoftmaxCrossEntropy loss;
  const std::int64_t plane = spec_.pixels();
  for (std::int64_t s = 0; s < s_count; ++s) {
    ZKA_PROF_SCOPE("zka_r/synthesize_sample");
    // Static random image A; only the filter layer is trainable.
    const tensor::Tensor a = tensor::Tensor::uniform(
        {1, spec_.channels, spec_.height, spec_.width}, rng_, -1.0f, 1.0f);
    util::Rng filter_rng = rng_.split(0xf117 + static_cast<std::uint64_t>(s));
    auto filter =
        models::make_filter_layer(spec_, options_.filter_kernel, filter_rng);
    nn::Sgd optimizer(*filter, {.learning_rate = options_.synthesis_lr});

    if (options_.train_synthesis) {
      for (std::int64_t epoch = 0; epoch < options_.synthesis_epochs;
           ++epoch) {
        optimizer.zero_grad();
        classifier->zero_grad();
        const tensor::Tensor b = filter->forward(a);
        const tensor::Tensor logits = classifier->forward(b);
        const double l = loss.forward(logits, ambiguous);
        // Backprop through the frozen classifier into the filter.
        const tensor::Tensor grad_b = classifier->backward(loss.backward());
        filter->backward(grad_b);
        optimizer.step();
        loss_history_[static_cast<std::size_t>(epoch)] +=
            l / static_cast<double>(s_count);
      }
    }
    const tensor::Tensor b = filter->forward(a);
    std::copy(b.data().begin(), b.data().end(),
              last_images_.data().begin() + s * plane);
  }

  // Step 2: adversarial classifier training on (S, Ỹ) with L_d.
  nn::set_flat_params(*classifier, ctx.global_model);
  {
    ZKA_PROF_SCOPE("zka_r/classifier_train");
    trainer_.train(*classifier, last_images_, decoy_label_, ctx.global_model,
                   ctx.prev_global_model, rng_);
  }
  return nn::get_flat_params(*classifier);
}

}  // namespace zka::core
