// Adaptive stealth control — an extension in the paper's future-work
// direction, still strictly zero-knowledge.
//
// The attacker never learns the defense or whether it passed, but it can
// *infer* acceptance from the only thing it legitimately receives: the
// next broadcast global model. If its last submitted update was included
// in the aggregate, the global model moves measurably toward it. The
// wrapper exploits this feedback loop to tune the regularizer weight λ of
// an underlying ZKA attack each round:
//
//   inferred rejected -> multiply λ (be stealthier),
//   inferred accepted -> shrink λ toward λ_min (be more aggressive).
//
// Acceptance test: cosine between (w(t) - w(t-1)) and (m(t-1) - w(t-1)),
// where m(t-1) is the update we submitted last round, compared against a
// threshold. With K=10 honest updates pulling elsewhere, an included
// malicious update still tilts the mean toward itself noticeably.
#pragma once

#include <memory>

#include "attack/attack.h"
#include "core/zka_options.h"
#include "models/models.h"

namespace zka::core {

struct AdaptiveOptions {
  double lambda_min = 2.0;
  double lambda_max = 64.0;
  /// Multiplier applied to lambda on inferred rejection; acceptance divides
  /// by its square root (slow to trust, quick to hide).
  double escalation = 2.0;
  /// Cosine threshold above which the attacker believes it was included.
  double accept_cosine = 0.05;
};

enum class ZkaVariant { kReverse, kGenerator };

class AdaptiveZkaAttack : public attack::Attack {
 public:
  AdaptiveZkaAttack(models::Task task, ZkaVariant variant, ZkaOptions options,
                    AdaptiveOptions adaptive, std::uint64_t seed);

  attack::Update craft(const attack::AttackContext& ctx) override;
  std::string name() const override {
    return variant_ == ZkaVariant::kReverse ? "ZKA-R-adaptive"
                                            : "ZKA-G-adaptive";
  }

  double current_lambda() const noexcept { return lambda_; }
  /// Rounds the attacker believes it passed / was filtered (telemetry).
  std::int64_t inferred_accepts() const noexcept { return accepts_; }
  std::int64_t inferred_rejects() const noexcept { return rejects_; }

 private:
  void apply_lambda();

  ZkaVariant variant_;
  AdaptiveOptions adaptive_;
  double lambda_;
  std::unique_ptr<attack::Attack> inner_;  // owns the wrapped ZKA attack
  class ZkaRAttack* as_reverse_ = nullptr;
  class ZkaGAttack* as_generator_ = nullptr;
  attack::Update last_submitted_;
  attack::Update last_global_;
  std::int64_t accepts_ = 0;
  std::int64_t rejects_ = 0;
};

}  // namespace zka::core
