// ZKA-R: zero-knowledge attack by Reverse engineering (Sec. IV-B, Fig. 2).
//
// For each of the |S| synthetic images: draw a random image A, push it
// through a single trainable convolutional filter layer to get image B,
// and train the filter — with the global classifier frozen — to minimize
// the cross-entropy between the classifier's prediction on B and the
// maximally ambiguous target Y_D = [1/L, ..., 1/L]. The resulting
// ambiguous set S (all labeled with decoy class Ỹ) then trains the
// malicious classifier with the distance-regularized loss.
#pragma once

#include <memory>

#include "attack/attack.h"
#include "core/zka_options.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/rng.h"

namespace zka::core {

class ZkaRAttack : public attack::Attack {
 public:
  ZkaRAttack(models::Task task, ZkaOptions options, std::uint64_t seed);

  attack::Update craft(const attack::AttackContext& ctx) override;
  std::string name() const override {
    return options_.train_synthesis ? "ZKA-R" : "ZKA-R-static";
  }

  /// Decoy class Ỹ used for every synthetic image.
  std::int64_t decoy_label() const noexcept { return decoy_label_; }

  /// Re-weights the distance regularizer for subsequent rounds (used by
  /// the adaptive stealth extension).
  void set_classifier_lambda(double lambda);

  /// Per-epoch mean filter-training loss of the last craft() (Fig. 6).
  const std::vector<double>& synthesis_loss_history() const noexcept {
    return loss_history_;
  }

  /// Synthetic images produced by the last craft() (Fig. 4 analysis).
  const tensor::Tensor& last_synthetic_images() const noexcept {
    return last_images_;
  }

 private:
  models::Task task_;
  models::ImageSpec spec_;
  ZkaOptions options_;
  models::ModelFactory factory_;
  AdversarialTrainer trainer_;
  util::Rng rng_;
  std::int64_t decoy_label_;
  std::vector<double> loss_history_;
  tensor::Tensor last_images_;
};

}  // namespace zka::core
