// The Fig. 7 comparator: identical to the ZKA step-2 pipeline (decoy label
// Ỹ + distance-regularized classifier training), but on REAL attacker-owned
// images instead of synthesized ones. The paper shows ZKA's synthetic data
// beats this, i.e. data crafted for the attack outperforms data the task
// was designed on.
#pragma once

#include "attack/attack.h"
#include "core/zka_options.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/rng.h"

namespace zka::core {

class RealDataAttack : public attack::Attack {
 public:
  /// `dataset` is the attacker's real data (assigned under the same
  /// Dirichlet distribution as benign clients in the paper's setup).
  RealDataAttack(models::Task task, data::Dataset dataset, ZkaOptions options,
                 std::uint64_t seed);

  attack::Update craft(const attack::AttackContext& ctx) override;
  std::string name() const override { return "Real-data"; }

  std::int64_t decoy_label() const noexcept { return decoy_label_; }

 private:
  models::ImageSpec spec_;
  data::Dataset dataset_;
  ZkaOptions options_;
  models::ModelFactory factory_;
  AdversarialTrainer trainer_;
  util::Rng rng_;
  std::int64_t decoy_label_;
};

}  // namespace zka::core
