// Shared configuration for the two ZKA variants.
#pragma once

#include <cstdint>

#include "core/adversarial_trainer.h"

namespace zka::core {

struct ZkaOptions {
  /// |S|: number of synthetic images generated per round. The paper uses
  /// roughly the per-client benign dataset size.
  std::int64_t synthetic_size = 32;
  /// E: epochs of filter/generator training per round (Fig. 6 shows a few
  /// suffice).
  std::int64_t synthesis_epochs = 5;
  /// Learning rate for the filter layer (ZKA-R) / generator (ZKA-G).
  float synthesis_lr = 0.05f;
  /// False selects the "Static" non-training variant of Tab. IV: the
  /// randomly initialized filter/generator is used as-is every round.
  bool train_synthesis = true;
  /// Decoy class Ỹ assigned to every synthetic image; -1 draws it
  /// uniformly at random when the attack is constructed (the paper's
  /// choice).
  std::int64_t decoy_label = -1;
  /// ZKA-R only: kernel size J of the trainable filter layer (odd).
  std::int64_t filter_kernel = 3;
  /// ZKA-G only: dimension of the Gaussian latent vector Z.
  std::int64_t latent_dim = 64;
  /// Step-2 adversarial classifier training (includes lambda for L_d).
  AdversarialTrainerOptions classifier = {};
};

}  // namespace zka::core
