// Distance-based stealth regularizer (Eq. 3 of the paper):
//
//   L_d = ||w - w(t)||_2  -  ||w(t) - w(t-1)||_2
//
// Added to the malicious classifier's cross-entropy loss so the crafted
// update deviates from the global model by about as much as the global
// model itself moved last round — mimicking benign round-to-round drift
// and evading distance-based defenses. Only the first term depends on w;
// its gradient is (w - w(t)) / ||w - w(t)||_2.
#pragma once

#include <span>

#include "nn/module.h"

namespace zka::core {

class DistanceRegularizer {
 public:
  explicit DistanceRegularizer(double lambda = 1.0) : lambda_(lambda) {}

  /// L_d for a flat parameter vector (no gradient side effects).
  static double value(std::span<const float> w, std::span<const float> global,
                      std::span<const float> prev_global);

  /// Adds lambda * dL_d/dw onto the model's parameter gradients and
  /// returns lambda * L_d. Call between loss backward() and optimizer
  /// step(). No-op returning 0 when lambda == 0.
  double apply(nn::Module& model, std::span<const float> global,
               std::span<const float> prev_global) const;

  double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
};

}  // namespace zka::core
