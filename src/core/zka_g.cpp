#include "core/zka_g.h"

#include "nn/loss.h"
#include "nn/sgd.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::core {

ZkaGAttack::ZkaGAttack(models::Task task, ZkaOptions options,
                       std::uint64_t seed)
    : task_(task),
      spec_(models::task_spec(task)),
      options_(options),
      factory_(models::task_model_factory(task)),
      trainer_(options.classifier),
      rng_(seed),
      decoy_label_(options.decoy_label >= 0
                       ? options.decoy_label
                       : static_cast<std::int64_t>(rng_.uniform_index(
                             static_cast<std::uint64_t>(
                                 spec_.num_classes)))) {
  ZKA_CHECK(options_.latent_dim > 0 && options_.synthetic_size > 0,
            "ZKA-G: latent_dim=%lld, synthetic_size=%lld out of range",
            static_cast<long long>(options_.latent_dim),
            static_cast<long long>(options_.synthetic_size));
  util::Rng gen_rng = rng_.split(0x9e4);
  generator_ = models::make_tcnn_generator(spec_, options_.latent_dim,
                                           gen_rng);
  // Fixed latent batch: "we use the same random seed over multiple rounds".
  latent_ = tensor::Tensor::normal({options_.synthetic_size,
                                    options_.latent_dim},
                                   gen_rng);
}

void ZkaGAttack::set_classifier_lambda(double lambda) {
  options_.classifier.lambda = lambda;
  trainer_ = AdversarialTrainer(options_.classifier);
}

attack::Update ZkaGAttack::craft(const attack::AttackContext& ctx) {
  ZKA_PROF_SCOPE("zka_g/craft");
  attack::validate_context(*this, ctx);

  auto classifier = factory_(rng_.split(0x7e0)());
  nn::set_flat_params(*classifier, ctx.global_model);

  const std::vector<std::int64_t> decoy_labels(
      static_cast<std::size_t>(options_.synthetic_size), decoy_label_);
  loss_history_.clear();

  if (options_.train_synthesis) {
    // Maximize CE(classifier(G(Z)), Ỹ): scale = -1 under gradient descent.
    nn::SoftmaxCrossEntropy loss(-1.0f);
    nn::Sgd optimizer(*generator_, {.learning_rate = options_.synthesis_lr});
    for (std::int64_t epoch = 0; epoch < options_.synthesis_epochs; ++epoch) {
      ZKA_PROF_SCOPE("zka_g/generator_epoch");
      optimizer.zero_grad();
      classifier->zero_grad();
      const tensor::Tensor images = generator_->forward(latent_);
      const tensor::Tensor logits = classifier->forward(images);
      const double scaled = loss.forward(logits, decoy_labels);
      const tensor::Tensor grad_images =
          classifier->backward(loss.backward());
      generator_->backward(grad_images);
      optimizer.step();
      // Record the raw (positive) cross-entropy the attack is maximizing.
      loss_history_.push_back(-scaled);
    }
  }

  last_images_ = generator_->forward(latent_);

  // Step 2: adversarial classifier training on (S, Ỹ) with L_d.
  nn::set_flat_params(*classifier, ctx.global_model);
  {
    ZKA_PROF_SCOPE("zka_g/classifier_train");
    trainer_.train(*classifier, last_images_, decoy_label_, ctx.global_model,
                   ctx.prev_global_model, rng_);
  }
  return nn::get_flat_params(*classifier);
}

}  // namespace zka::core
