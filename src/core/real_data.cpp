#include "core/real_data.h"

namespace zka::core {

RealDataAttack::RealDataAttack(models::Task task, data::Dataset dataset,
                               ZkaOptions options, std::uint64_t seed)
    : spec_(models::task_spec(task)),
      dataset_(std::move(dataset)),
      options_(options),
      factory_(models::task_model_factory(task)),
      trainer_(options.classifier),
      rng_(seed),
      decoy_label_(options.decoy_label >= 0
                       ? options.decoy_label
                       : static_cast<std::int64_t>(rng_.uniform_index(
                             static_cast<std::uint64_t>(
                                 spec_.num_classes)))) {}

attack::Update RealDataAttack::craft(const attack::AttackContext& ctx) {
  attack::validate_context(*this, ctx);
  auto classifier = factory_(rng_.split(0xda7a)());
  nn::set_flat_params(*classifier, ctx.global_model);
  trainer_.train(*classifier, dataset_.images, decoy_label_, ctx.global_model,
                 ctx.prev_global_model, rng_);
  return nn::get_flat_params(*classifier);
}

}  // namespace zka::core
