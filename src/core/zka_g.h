// ZKA-G: zero-knowledge attack with a Generator (Sec. IV-C, Fig. 3).
//
// A lightweight transposed-CNN generator G maps a *fixed* Gaussian latent
// batch Z (same seed every round, per the paper) to synthetic images
// S = G(Z). Each round, G is trained for E epochs to MAXIMIZE the frozen
// global classifier's cross-entropy against the decoy class Ỹ — steering
// generated images away from Ỹ — after which the malicious classifier is
// trained on (S, Ỹ) with the distance-regularized loss. The generator
// persists across rounds, so its drift tracks the global model's.
#pragma once

#include <memory>

#include "attack/attack.h"
#include "core/zka_options.h"
#include "models/models.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace zka::core {

class ZkaGAttack : public attack::Attack {
 public:
  ZkaGAttack(models::Task task, ZkaOptions options, std::uint64_t seed);

  attack::Update craft(const attack::AttackContext& ctx) override;
  std::string name() const override {
    return options_.train_synthesis ? "ZKA-G" : "ZKA-G-static";
  }

  std::int64_t decoy_label() const noexcept { return decoy_label_; }

  /// Re-weights the distance regularizer for subsequent rounds (used by
  /// the adaptive stealth extension).
  void set_classifier_lambda(double lambda);

  /// Per-epoch mean generator loss (positive cross-entropy vs Ỹ; the
  /// attack maximizes it) of the last craft() (Fig. 6).
  const std::vector<double>& synthesis_loss_history() const noexcept {
    return loss_history_;
  }

  /// Synthetic images produced by the last craft() (Fig. 4 analysis).
  const tensor::Tensor& last_synthetic_images() const noexcept {
    return last_images_;
  }

 private:
  models::Task task_;
  models::ImageSpec spec_;
  ZkaOptions options_;
  models::ModelFactory factory_;
  AdversarialTrainer trainer_;
  util::Rng rng_;
  std::int64_t decoy_label_;
  std::unique_ptr<nn::Sequential> generator_;
  tensor::Tensor latent_;  // fixed Z, [|S|, latent_dim]
  std::vector<double> loss_history_;
  tensor::Tensor last_images_;
};

}  // namespace zka::core
