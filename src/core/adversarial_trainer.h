// Step 2 of the ZKA framework (Sec. IV-A): train the malicious classifier
// on a synthetic (or real, for the Fig. 7 comparator) image set, all
// labeled with the decoy class Ỹ, minimizing cross-entropy plus the
// distance regularizer L_d.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/distance_reg.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace zka::core {

struct AdversarialTrainerOptions {
  // Defaults are tuned so the crafted update's deviation stays inside the
  // benign update cloud (several small steps let the L_d pull act; one
  // large step would overshoot before the regularizer can balance it).
  std::int64_t epochs = 5;
  std::int64_t batch_size = 32;
  float learning_rate = 0.01f;
  /// Weight of the distance regularizer; 0 disables it (Tab. V ablation).
  /// Sized against the aligned decoy-label CE gradients (see DESIGN.md).
  double lambda = 8.0;
};

class AdversarialTrainer {
 public:
  explicit AdversarialTrainer(AdversarialTrainerOptions options)
      : options_(options), regularizer_(options.lambda) {}

  /// Trains `model` (already holding w(t)) on (images, decoy_label) and
  /// returns the per-epoch mean total loss (CE + lambda * L_d).
  std::vector<double> train(nn::Sequential& model,
                            const tensor::Tensor& images,
                            std::int64_t decoy_label,
                            std::span<const float> global,
                            std::span<const float> prev_global,
                            util::Rng& rng) const;

  const AdversarialTrainerOptions& options() const noexcept {
    return options_;
  }

 private:
  AdversarialTrainerOptions options_;
  DistanceRegularizer regularizer_;
};

}  // namespace zka::core
