#include "core/adaptive_zka.h"

#include <algorithm>
#include <cmath>

#include "attack/attack.h"

#include "core/zka_g.h"
#include "core/zka_r.h"
#include "util/check.h"
#include "util/stats.h"

namespace zka::core {

AdaptiveZkaAttack::AdaptiveZkaAttack(models::Task task, ZkaVariant variant,
                                     ZkaOptions options,
                                     AdaptiveOptions adaptive,
                                     std::uint64_t seed)
    : variant_(variant), adaptive_(adaptive),
      lambda_(options.classifier.lambda) {
  ZKA_CHECK(adaptive_.lambda_min <= adaptive_.lambda_max &&
                adaptive_.escalation > 0.0,
            "AdaptiveZka: lambda range [%g, %g], escalation %g",
            adaptive_.lambda_min, adaptive_.lambda_max,
            adaptive_.escalation);
  lambda_ = std::clamp(lambda_, adaptive_.lambda_min, adaptive_.lambda_max);
  options.classifier.lambda = lambda_;
  if (variant_ == ZkaVariant::kReverse) {
    auto attack = std::make_unique<ZkaRAttack>(task, options, seed);
    as_reverse_ = attack.get();
    inner_ = std::move(attack);
  } else {
    auto attack = std::make_unique<ZkaGAttack>(task, options, seed);
    as_generator_ = attack.get();
    inner_ = std::move(attack);
  }
}

void AdaptiveZkaAttack::apply_lambda() {
  if (as_reverse_ != nullptr) as_reverse_->set_classifier_lambda(lambda_);
  if (as_generator_ != nullptr) as_generator_->set_classifier_lambda(lambda_);
}

attack::Update AdaptiveZkaAttack::craft(const attack::AttackContext& ctx) {
  attack::validate_context(*this, ctx);
  // Infer last round's fate from how the global model actually moved.
  if (!last_submitted_.empty() &&
      last_global_.size() == ctx.global_model.size()) {
    std::vector<float> global_move(ctx.global_model.size());
    std::vector<float> our_direction(ctx.global_model.size());
    for (std::size_t i = 0; i < global_move.size(); ++i) {
      global_move[i] = ctx.global_model[i] - last_global_[i];
      our_direction[i] = last_submitted_[i] - last_global_[i];
    }
    const double cosine =
        util::cosine_similarity(global_move, our_direction);
    if (cosine >= adaptive_.accept_cosine) {
      ++accepts_;
      lambda_ /= std::sqrt(adaptive_.escalation);
    } else {
      ++rejects_;
      lambda_ *= adaptive_.escalation;
    }
    lambda_ = std::clamp(lambda_, adaptive_.lambda_min,
                         adaptive_.lambda_max);
    apply_lambda();
  }

  attack::Update crafted = inner_->craft(ctx);
  last_submitted_ = crafted;
  last_global_.assign(ctx.global_model.begin(), ctx.global_model.end());
  return crafted;
}

}  // namespace zka::core
