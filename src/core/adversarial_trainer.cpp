#include "core/adversarial_trainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/sgd.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::core {

std::vector<double> AdversarialTrainer::train(
    nn::Sequential& model, const tensor::Tensor& images,
    std::int64_t decoy_label, std::span<const float> global,
    std::span<const float> prev_global, util::Rng& rng) const {
  ZKA_CHECK(images.rank() == 4 && images.dim(0) > 0,
            "AdversarialTrainer: expected non-empty [N,C,H,W], got %s",
            tensor::shape_to_string(images.shape()).c_str());
  ZKA_CHECK(options_.batch_size > 0 && options_.epochs >= 0,
            "AdversarialTrainer: batch_size=%lld epochs=%lld out of range",
            static_cast<long long>(options_.batch_size),
            static_cast<long long>(options_.epochs));
  const std::int64_t n = images.dim(0);
  nn::Sgd optimizer(model, {.learning_rate = options_.learning_rate});
  nn::SoftmaxCrossEntropy loss;

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;

  std::vector<double> epoch_losses;
  epoch_losses.reserve(static_cast<std::size_t>(options_.epochs));
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ZKA_PROF_SCOPE("adv_trainer/epoch");
    rng.shuffle(order);
    double total = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t begin = 0; begin < n; begin += options_.batch_size) {
      const std::int64_t end = std::min(begin + options_.batch_size, n);
      const std::span<const std::int64_t> rows(
          order.data() + begin, static_cast<std::size_t>(end - begin));
      const tensor::Tensor batch = images.index_select0(rows);
      const std::vector<std::int64_t> labels(
          static_cast<std::size_t>(end - begin), decoy_label);

      optimizer.zero_grad();
      const tensor::Tensor logits = model.forward(batch);
      double batch_loss = loss.forward(logits, labels);
      model.backward(loss.backward());
      batch_loss += regularizer_.apply(model, global, prev_global);
      optimizer.step();

      total += batch_loss;
      ++batches;
    }
    epoch_losses.push_back(total / static_cast<double>(std::max<std::int64_t>(
                                       batches, 1)));
  }
  return epoch_losses;
}

}  // namespace zka::core
