#include "core/distance_reg.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace zka::core {

double DistanceRegularizer::value(std::span<const float> w,
                                  std::span<const float> global,
                                  std::span<const float> prev_global) {
  ZKA_CHECK(w.size() == global.size() && global.size() == prev_global.size(),
            "DistanceRegularizer: w=%zu, global=%zu, prev=%zu params",
            w.size(), global.size(), prev_global.size());
  return util::l2_distance(w, global) -
         util::l2_distance(global, prev_global);
}

double DistanceRegularizer::apply(nn::Module& model,
                                  std::span<const float> global,
                                  std::span<const float> prev_global) const {
  if (lambda_ == 0.0) return 0.0;
  const std::vector<float> w = nn::get_flat_params(model);
  ZKA_CHECK(w.size() == global.size() && global.size() == prev_global.size(),
            "DistanceRegularizer: model=%zu, global=%zu, prev=%zu params",
            w.size(), global.size(), prev_global.size());
  const double dist = util::l2_distance(w, global);
  if (dist > 1e-12) {
    std::vector<float> grad(w.size());
    const double scale = lambda_ / dist;
    for (std::size_t i = 0; i < w.size(); ++i) {
      // Subtract in float (the wire precision), then promote explicitly:
      // the scale factor carries the double path.
      grad[i] = static_cast<float>(scale *
                                   static_cast<double>(w[i] - global[i]));
    }
    nn::add_to_flat_grads(model, grad);
  }
  return lambda_ * (dist - util::l2_distance(global, prev_global));
}

}  // namespace zka::core
