// Client data partitioning: IID and Dirichlet(β) label-skew (the paper's
// heterogeneity model, Sec. V-A).
#pragma once

#include <cstdint>
#include <vector>

namespace zka::util {
class Rng;
}

namespace zka::data {

/// Shuffles indices [0, n) and deals them round-robin to `num_clients`.
std::vector<std::vector<std::int64_t>> iid_partition(std::int64_t n,
                                                     std::int64_t num_clients,
                                                     util::Rng& rng);

/// Label-skew partition: for each class, the per-client share of that
/// class's samples is drawn from Dirichlet(beta, ..., beta). Smaller beta
/// means more heterogeneity. Clients that end up empty are topped up with
/// one sample stolen from the largest client, so every client can train.
std::vector<std::vector<std::int64_t>> dirichlet_partition(
    const std::vector<std::int64_t>& labels, std::int64_t num_classes,
    std::int64_t num_clients, double beta, util::Rng& rng);

}  // namespace zka::data
