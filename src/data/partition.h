// Client data partitioning: IID and Dirichlet(β) label-skew (the paper's
// heterogeneity model, Sec. V-A), plus the lazy hashed shard spec used by
// the production-scale cross-device simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace zka::util {
class Rng;
}

namespace zka::data {

/// Shuffles indices [0, n) and deals them round-robin to `num_clients`.
std::vector<std::vector<std::int64_t>> iid_partition(std::int64_t n,
                                                     std::int64_t num_clients,
                                                     util::Rng& rng);

/// Label-skew partition: for each class, the per-client share of that
/// class's samples is drawn from Dirichlet(beta, ..., beta). Smaller beta
/// means more heterogeneity. Clients that end up empty are topped up with
/// one sample stolen from the largest client, so every client can train.
std::vector<std::vector<std::int64_t>> dirichlet_partition(
    const std::vector<std::int64_t>& labels, std::int64_t num_classes,
    std::int64_t num_clients, double beta, util::Rng& rng);

/// Lazy cross-device partition spec: client c's shard is a deterministic
/// function of (seed, c), computed on demand in O(samples_per_client) —
/// nothing is stored per client, so a population of 10^6 devices costs a
/// few machine words until a client is actually sampled. Each device owns
/// `samples_per_client` distinct indices drawn uniformly from the training
/// pool (devices share pool samples, modelling per-device draws from the
/// same data distribution rather than an exact disjoint split — with
/// population >> dataset_size a disjoint split would leave almost every
/// device empty).
class HashedShardSpec {
 public:
  /// Requires dataset_size >= 0, population > 0, samples_per_client > 0.
  /// Shards are clamped to dataset_size samples.
  HashedShardSpec(std::int64_t dataset_size, std::int64_t population,
                  std::int64_t samples_per_client, std::uint64_t seed);

  std::int64_t dataset_size() const noexcept { return dataset_size_; }
  std::int64_t population() const noexcept { return population_; }
  /// Every client's shard has exactly this many samples (the clamp above).
  std::int64_t shard_size() const noexcept { return shard_size_; }

  /// Client `client`'s shard indices. Deterministic in (seed, client);
  /// independent of any other client's shard having been computed.
  std::vector<std::int64_t> shard(std::int64_t client) const;

 private:
  std::int64_t dataset_size_ = 0;
  std::int64_t population_ = 0;
  std::int64_t shard_size_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace zka::data
