#include "data/partition.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace zka::data {

std::vector<std::vector<std::int64_t>> iid_partition(std::int64_t n,
                                                     std::int64_t num_clients,
                                                     util::Rng& rng) {
  ZKA_CHECK(num_clients > 0, "iid_partition: num_clients %lld",
            static_cast<long long>(num_clients));
  ZKA_CHECK(n >= 0, "iid_partition: n %lld", static_cast<long long>(n));
  std::vector<std::int64_t> all(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  rng.shuffle(all);
  std::vector<std::vector<std::int64_t>> parts(
      static_cast<std::size_t>(num_clients));
  for (std::size_t i = 0; i < all.size(); ++i) {
    parts[i % static_cast<std::size_t>(num_clients)].push_back(all[i]);
  }
  return parts;
}

std::vector<std::vector<std::int64_t>> dirichlet_partition(
    const std::vector<std::int64_t>& labels, std::int64_t num_classes,
    std::int64_t num_clients, double beta, util::Rng& rng) {
  ZKA_CHECK(num_clients > 0, "dirichlet_partition: num_clients %lld",
            static_cast<long long>(num_clients));
  ZKA_CHECK(beta > 0.0, "dirichlet_partition: beta %g must be positive",
            beta);

  // Bucket sample indices by class, shuffled within each class.
  std::vector<std::vector<std::int64_t>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::int64_t y = labels[i];
    ZKA_CHECK(y >= 0 && y < num_classes,
              "dirichlet_partition: label %lld outside [0, %lld)",
              static_cast<long long>(y),
              static_cast<long long>(num_classes));
    by_class[static_cast<std::size_t>(y)].push_back(
        static_cast<std::int64_t>(i));
  }
  for (auto& bucket : by_class) rng.shuffle(bucket);

  std::vector<std::vector<std::int64_t>> parts(
      static_cast<std::size_t>(num_clients));
  for (const auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const std::vector<double> props =
        rng.dirichlet(beta, static_cast<std::size_t>(num_clients));
    // Convert proportions to cumulative cut points over the bucket.
    std::size_t start = 0;
    double cum = 0.0;
    for (std::size_t c = 0; c < parts.size(); ++c) {
      cum += props[c];
      const std::size_t end =
          c + 1 == parts.size()
              ? bucket.size()
              : std::min(bucket.size(),
                         static_cast<std::size_t>(cum * bucket.size()));
      for (std::size_t i = start; i < end; ++i) parts[c].push_back(bucket[i]);
      start = end;
    }
  }

  // Guarantee non-empty clients: move one sample from the largest client.
  for (auto& part : parts) {
    if (!part.empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (largest->size() <= 1) {
      throw std::runtime_error(
          "dirichlet_partition: not enough samples for all clients");
    }
    part.push_back(largest->back());
    largest->pop_back();
  }
  return parts;
}

HashedShardSpec::HashedShardSpec(std::int64_t dataset_size,
                                 std::int64_t population,
                                 std::int64_t samples_per_client,
                                 std::uint64_t seed)
    : dataset_size_(dataset_size),
      population_(population),
      shard_size_(std::min(samples_per_client, dataset_size)),
      seed_(seed) {
  ZKA_CHECK(dataset_size >= 0, "HashedShardSpec: dataset_size %lld",
            static_cast<long long>(dataset_size));
  ZKA_CHECK(population > 0, "HashedShardSpec: population %lld",
            static_cast<long long>(population));
  ZKA_CHECK(samples_per_client > 0,
            "HashedShardSpec: samples_per_client %lld",
            static_cast<long long>(samples_per_client));
}

std::vector<std::int64_t> HashedShardSpec::shard(std::int64_t client) const {
  ZKA_CHECK(client >= 0 && client < population_,
            "HashedShardSpec: client %lld outside [0, %lld)",
            static_cast<long long>(client),
            static_cast<long long>(population_));
  if (shard_size_ == 0) return {};
  // Each client gets its own SplitMix64-derived stream, so shards are
  // independent of computation order and of every other client.
  std::uint64_t key =
      seed_ ^ (static_cast<std::uint64_t>(client) * 0x9e3779b97f4a7c15ULL +
               0x7f4a7c15ULL);
  util::Rng rng(util::splitmix64(key));
  const auto draw = rng.sample_without_replacement(
      static_cast<std::size_t>(dataset_size_),
      static_cast<std::size_t>(shard_size_));
  std::vector<std::int64_t> indices;
  indices.reserve(draw.size());
  for (const std::size_t i : draw) {
    indices.push_back(static_cast<std::int64_t>(i));
  }
  return indices;
}

}  // namespace zka::data
