#include "data/dataset.h"

#include "util/check.h"

namespace zka::data {

Dataset Dataset::subset(std::span<const std::int64_t> indices) const {
  Dataset out;
  out.spec = spec;
  out.images = images.index_select0(indices);
  out.labels.reserve(indices.size());
  for (const std::int64_t i : indices) {
    out.labels.push_back(labels.at(static_cast<std::size_t>(i)));
  }
  return out;
}

tensor::Tensor Dataset::image(std::int64_t i) const {
  const std::int64_t idx[] = {i};
  return images.index_select0(idx);
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& dataset,
                                             std::int64_t train_size) {
  ZKA_CHECK(train_size >= 0 && train_size <= dataset.size(),
            "train_test_split: train_size %lld outside [0, %lld]",
            static_cast<long long>(train_size),
            static_cast<long long>(dataset.size()));
  std::vector<std::int64_t> train_idx(static_cast<std::size_t>(train_size));
  std::vector<std::int64_t> test_idx(
      static_cast<std::size_t>(dataset.size() - train_size));
  for (std::int64_t i = 0; i < train_size; ++i) train_idx[i] = i;
  for (std::int64_t i = train_size; i < dataset.size(); ++i) {
    test_idx[static_cast<std::size_t>(i - train_size)] = i;
  }
  return {dataset.subset(train_idx), dataset.subset(test_idx)};
}

std::vector<std::int64_t> class_histogram(const Dataset& dataset) {
  std::vector<std::int64_t> hist(
      static_cast<std::size_t>(dataset.spec.num_classes), 0);
  for (const std::int64_t label : dataset.labels) {
    hist.at(static_cast<std::size_t>(label)) += 1;
  }
  return hist;
}

}  // namespace zka::data
