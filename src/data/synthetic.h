// Procedurally generated class-conditional image benchmarks.
//
// The paper evaluates on Fashion-MNIST (28x28x1) and CIFAR-10 (32x32x3);
// neither is available offline, so we substitute deterministic synthetic
// benchmarks with the same shapes and class count (see DESIGN.md). Each
// class has a structured prototype (oriented gratings + a Gaussian blob +
// per-channel color cast); samples are prototypes under random translation,
// contrast jitter and pixel noise. The RGB task uses overlapping prototypes
// and more noise so that — like CIFAR-10 vs Fashion-MNIST in the paper —
// it converges slower and produces more diverse client updates.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace zka::data {

struct SyntheticOptions {
  /// Pixel noise standard deviation (images live in [-1, 1]).
  float noise_stddev = 0.0f;  // 0 selects a per-task default
  /// Max translation of the prototype in pixels (uniform in [-s, s]).
  std::int64_t max_shift = 2;
  /// Contrast jitter: sample contrast ~ U(1-j, 1+j).
  float contrast_jitter = 0.2f;
};

/// `n` samples of the given task with labels drawn uniformly at random.
Dataset make_synthetic_dataset(models::Task task, std::int64_t n,
                               std::uint64_t seed,
                               const SyntheticOptions& options = {});

/// The noiseless class prototype as a [1, C, H, W] tensor (for tests).
tensor::Tensor class_prototype(models::Task task, std::int64_t label);

}  // namespace zka::data
