// In-memory labeled image dataset ([N, C, H, W] + integer labels).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "models/models.h"
#include "tensor/tensor.h"

namespace zka::data {

struct Dataset {
  models::ImageSpec spec;
  tensor::Tensor images;                // [N, C, H, W], values in [-1, 1]
  std::vector<std::int64_t> labels;     // size N, in [0, num_classes)

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(labels.size());
  }

  /// Copies the rows at `indices` into a new dataset.
  Dataset subset(std::span<const std::int64_t> indices) const;

  /// Image `i` as a [1, C, H, W] tensor (for single-sample inference).
  tensor::Tensor image(std::int64_t i) const;
};

/// Splits into (train, test) by taking the first `train_size` samples for
/// training and the rest for testing. Throws if train_size > size.
std::pair<Dataset, Dataset> train_test_split(const Dataset& dataset,
                                             std::int64_t train_size);

/// Count of samples per class.
std::vector<std::int64_t> class_histogram(const Dataset& dataset);

}  // namespace zka::data
