// Mini-batch iteration over a Dataset (or an index view of one).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace zka::util {
class Rng;
}

namespace zka::data {

struct Batch {
  tensor::Tensor images;               // [B, C, H, W]
  std::vector<std::int64_t> labels;    // size B
};

class DataLoader {
 public:
  /// Iterates over the whole dataset.
  DataLoader(const Dataset& dataset, std::int64_t batch_size);
  /// Iterates over a subset given by indices into `dataset`.
  DataLoader(const Dataset& dataset, std::vector<std::int64_t> indices,
             std::int64_t batch_size);

  /// Number of batches per epoch (last batch may be smaller).
  std::int64_t num_batches() const noexcept;

  /// Reshuffles the iteration order (call once per epoch).
  void shuffle(util::Rng& rng);

  /// Materializes batch `b` in the current order.
  Batch batch(std::int64_t b) const;

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(indices_.size());
  }

 private:
  const Dataset* dataset_;
  std::vector<std::int64_t> indices_;
  std::int64_t batch_size_;
};

}  // namespace zka::data
