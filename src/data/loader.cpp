#include "data/loader.h"

#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace zka::data {

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size)
    : dataset_(&dataset), batch_size_(batch_size) {
  ZKA_CHECK(batch_size > 0, "DataLoader: batch_size %lld",
            static_cast<long long>(batch_size));
  indices_.resize(static_cast<std::size_t>(dataset.size()));
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    indices_[static_cast<std::size_t>(i)] = i;
  }
}

DataLoader::DataLoader(const Dataset& dataset,
                       std::vector<std::int64_t> indices,
                       std::int64_t batch_size)
    : dataset_(&dataset), indices_(std::move(indices)),
      batch_size_(batch_size) {
  ZKA_CHECK(batch_size > 0, "DataLoader: batch_size %lld",
            static_cast<long long>(batch_size));
  for (const std::int64_t i : indices_) {
    if (i < 0 || i >= dataset.size()) {
      throw std::out_of_range("DataLoader: index out of dataset range");
    }
  }
}

std::int64_t DataLoader::num_batches() const noexcept {
  return (size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::shuffle(util::Rng& rng) { rng.shuffle(indices_); }

Batch DataLoader::batch(std::int64_t b) const {
  if (b < 0 || b >= num_batches()) {
    throw std::out_of_range("DataLoader::batch out of range");
  }
  const std::int64_t begin = b * batch_size_;
  const std::int64_t end = std::min<std::int64_t>(begin + batch_size_, size());
  std::vector<std::int64_t> rows(
      indices_.begin() + static_cast<std::ptrdiff_t>(begin),
      indices_.begin() + static_cast<std::ptrdiff_t>(end));
  Batch out;
  out.images = dataset_->images.index_select0(rows);
  out.labels.reserve(rows.size());
  for (const std::int64_t r : rows) {
    out.labels.push_back(dataset_->labels[static_cast<std::size_t>(r)]);
  }
  return out;
}

}  // namespace zka::data
