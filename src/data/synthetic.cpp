#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "util/check.h"
#include "util/rng.h"

namespace zka::data {

namespace {

/// Deterministic per-(class, channel) pattern parameters derived by hashing,
/// so prototypes need no stored tables and are identical across runs.
struct PatternParams {
  double freq1, angle1, phase1;   // first grating
  double freq2, angle2, phase2;   // second grating
  double blob_y, blob_x, blob_sigma, blob_gain;
  double bias;                    // per-channel base intensity (color cast)
};

PatternParams pattern_params(models::Task task, std::int64_t label,
                             std::int64_t channel) {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^
                    (static_cast<std::uint64_t>(label) * 0x100000001b3ULL) ^
                    (static_cast<std::uint64_t>(channel + 1) * 0x9e3779b9ULL) ^
                    (task == models::Task::kCifar ? 0xabcdef1234ULL : 0x55ULL);
  auto next = [&h] { return zka::util::splitmix64(h); };
  auto unit = [&next] {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  };
  PatternParams p{};
  // Gratings: class-dependent orientation and frequency. The grayscale task
  // gets well-separated frequencies; the RGB task draws from a narrower,
  // overlapping range so classes are harder to tell apart.
  const bool rgb = task == models::Task::kCifar;
  const double f_lo = rgb ? 0.25 : 0.2;
  const double f_hi = rgb ? 0.55 : 0.9;
  p.freq1 = f_lo + (f_hi - f_lo) * unit();
  p.angle1 = std::numbers::pi * unit();
  p.phase1 = 2.0 * std::numbers::pi * unit();
  p.freq2 = f_lo + (f_hi - f_lo) * unit();
  p.angle2 = std::numbers::pi * unit();
  p.phase2 = 2.0 * std::numbers::pi * unit();
  p.blob_y = 0.2 + 0.6 * unit();
  p.blob_x = 0.2 + 0.6 * unit();
  p.blob_sigma = rgb ? (0.22 + 0.15 * unit()) : (0.12 + 0.12 * unit());
  p.blob_gain = rgb ? (0.5 + 0.4 * unit()) : (0.8 + 0.6 * unit());
  p.bias = rgb ? (0.6 * unit() - 0.3) : 0.0;
  return p;
}

float prototype_value(const PatternParams& p, std::int64_t h, std::int64_t w,
                      std::int64_t y, std::int64_t x, bool rgb) {
  const double fy = static_cast<double>(y) / static_cast<double>(h);
  const double fx = static_cast<double>(x) / static_cast<double>(w);
  const double u1 = std::cos(p.angle1) * x + std::sin(p.angle1) * y;
  const double u2 = std::cos(p.angle2) * x + std::sin(p.angle2) * y;
  double v = 0.45 * std::sin(p.freq1 * u1 + p.phase1) +
             (rgb ? 0.35 : 0.25) * std::sin(p.freq2 * u2 + p.phase2);
  const double dy = fy - p.blob_y;
  const double dx = fx - p.blob_x;
  v += p.blob_gain *
       std::exp(-(dy * dy + dx * dx) / (2.0 * p.blob_sigma * p.blob_sigma));
  v += p.bias;
  return static_cast<float>(std::clamp(v, -1.0, 1.0));
}

}  // namespace

tensor::Tensor class_prototype(models::Task task, std::int64_t label) {
  const models::ImageSpec spec = models::task_spec(task);
  ZKA_CHECK(label >= 0 && label < spec.num_classes,
            "class_prototype: label %lld outside [0, %lld)",
            static_cast<long long>(label),
            static_cast<long long>(spec.num_classes));
  tensor::Tensor img({1, spec.channels, spec.height, spec.width});
  const bool rgb = task == models::Task::kCifar;
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    const PatternParams p = pattern_params(task, label, c);
    for (std::int64_t y = 0; y < spec.height; ++y) {
      for (std::int64_t x = 0; x < spec.width; ++x) {
        img.at({0, c, y, x}) = prototype_value(p, spec.height, spec.width, y,
                                               x, rgb);
      }
    }
  }
  return img;
}

Dataset make_synthetic_dataset(models::Task task, std::int64_t n,
                               std::uint64_t seed,
                               const SyntheticOptions& options) {
  ZKA_CHECK(n >= 0, "make_synthetic_dataset: n %lld is negative",
            static_cast<long long>(n));
  const models::ImageSpec spec = models::task_spec(task);
  const bool rgb = task == models::Task::kCifar;
  const float noise =
      options.noise_stddev > 0.0f ? options.noise_stddev : (rgb ? 0.45f : 0.3f);

  util::Rng rng(seed);
  Dataset out;
  out.spec = spec;
  out.images = tensor::Tensor({n, spec.channels, spec.height, spec.width});
  out.labels.resize(static_cast<std::size_t>(n));

  // Precompute prototypes once per class.
  std::vector<tensor::Tensor> protos;
  protos.reserve(static_cast<std::size_t>(spec.num_classes));
  for (std::int64_t k = 0; k < spec.num_classes; ++k) {
    protos.push_back(class_prototype(task, k));
  }

  const std::int64_t plane = spec.height * spec.width;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label =
        static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(spec.num_classes)));
    out.labels[static_cast<std::size_t>(i)] = label;
    const tensor::Tensor& proto = protos[static_cast<std::size_t>(label)];
    const std::int64_t max_s = options.max_shift;
    const std::int64_t dy =
        max_s > 0 ? static_cast<std::int64_t>(
                        rng.uniform_index(2 * static_cast<std::uint64_t>(max_s) + 1)) -
                        max_s
                  : 0;
    const std::int64_t dx =
        max_s > 0 ? static_cast<std::int64_t>(
                        rng.uniform_index(2 * static_cast<std::uint64_t>(max_s) + 1)) -
                        max_s
                  : 0;
    const float contrast = static_cast<float>(
        rng.uniform(1.0 - static_cast<double>(options.contrast_jitter),
                    1.0 + static_cast<double>(options.contrast_jitter)));
    const std::span<float> dst = out.images.data().subspan(
        static_cast<std::size_t>(i * spec.channels * plane),
        static_cast<std::size_t>(spec.channels * plane));
    for (std::int64_t c = 0; c < spec.channels; ++c) {
      const std::span<const float> src = proto.data().subspan(
          static_cast<std::size_t>(c * plane),
          static_cast<std::size_t>(plane));
      for (std::int64_t y = 0; y < spec.height; ++y) {
        // Toroidal shift keeps all structure in frame.
        const std::int64_t sy = ((y + dy) % spec.height + spec.height) %
                                spec.height;
        for (std::int64_t x = 0; x < spec.width; ++x) {
          const std::int64_t sx = ((x + dx) % spec.width + spec.width) %
                                  spec.width;
          float v = contrast * src[sy * spec.width + sx] +
                    static_cast<float>(rng.normal(0.0, noise));
          dst[c * plane + y * spec.width + x] = std::clamp(v, -1.0f, 1.0f);
        }
      }
    }
  }
  return out;
}

}  // namespace zka::data
