// Update-space diagnostics: the geometry a distance-based defense sees in
// one FL round. Used by the ablation benches and handy for defense
// research — the paper's stealth story is exactly about driving the
// malicious/benign separability below the defense's resolution.
#pragma once

#include <cstdint>
#include <vector>

namespace zka::analysis {

struct UpdateDiagnostics {
  std::size_t num_updates = 0;
  std::size_t num_malicious = 0;
  double mean_benign_norm = 0.0;        // ||u_b - center|| (center = mean)
  double mean_malicious_norm = 0.0;
  double mean_benign_pairwise = 0.0;    // mean ||u_b - u_b'||
  double mean_cross_pairwise = 0.0;     // mean ||u_m - u_b||
  double mean_benign_cosine = 0.0;      // mean cos(u_b - c, u_b' - c)
  double mean_cross_cosine = 0.0;       // mean cos(u_m - c, u_b - c)

  /// Cross-to-benign pairwise distance ratio: ~1 means the malicious
  /// updates are geometrically indistinguishable from benign ones; >> 1
  /// means any distance-based defense separates them trivially.
  double separability() const noexcept {
    return mean_benign_pairwise > 0.0
               ? mean_cross_pairwise / mean_benign_pairwise
               : 0.0;
  }
};

/// Computes the diagnostics for one round's updates; `is_malicious[k]`
/// flags update k. Throws std::invalid_argument on size mismatch or when
/// there are fewer than two benign updates.
UpdateDiagnostics diagnose_updates(
    const std::vector<std::vector<float>>& updates,
    const std::vector<bool>& is_malicious);

}  // namespace zka::analysis
