#include "analysis/pca.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "tensor/reduce.h"
#include "util/check.h"

namespace zka::analysis {

namespace {

/// Centers rows in place and returns the [N, D] matrix.
std::vector<double> center_rows(const tensor::Tensor& rows, std::int64_t n,
                                std::int64_t d) {
  std::vector<double> x(static_cast<std::size_t>(n * d));
  for (std::int64_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      mean += static_cast<double>(rows[i * d + j]);
    }
    mean /= static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i * d + j)] =
          static_cast<double>(rows[i * d + j]) - mean;
    }
  }
  return x;
}

}  // namespace

PcaResult pca_project(const tensor::Tensor& rows, std::int64_t k,
                      std::int64_t power_iterations) {
  ZKA_CHECK(rows.rank() >= 2 && rows.dim(0) >= 2,
            "pca_project: need a rank >= 2 tensor with >= 2 samples, got %s",
            tensor::shape_to_string(rows.shape()).c_str());
  const std::int64_t n = rows.dim(0);
  const std::int64_t d = rows.numel() / n;
  ZKA_CHECK(k > 0 && k <= std::min(n, d),
            "pca_project: %lld components outside [1, min(%lld, %lld)]",
            static_cast<long long>(k), static_cast<long long>(n),
            static_cast<long long>(d));
  ZKA_CHECK(power_iterations > 0, "pca_project: power_iterations %lld",
            static_cast<long long>(power_iterations));
  std::vector<double> x = center_rows(rows, n, d);

  PcaResult result;
  result.projection = tensor::Tensor({n, k});
  result.component_variance.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < n * d; ++i) {
    result.total_variance += x[static_cast<std::size_t>(i)] *
                             x[static_cast<std::size_t>(i)];
  }
  result.total_variance /= static_cast<double>(n - 1);

  // Power iteration on X^T X (via X to avoid forming D x D), with
  // deflation: after extracting a component, subtract its contribution
  // from the data.
  std::vector<double> v(static_cast<std::size_t>(d));
  std::vector<double> scores(static_cast<std::size_t>(n));
  for (std::int64_t comp = 0; comp < k; ++comp) {
    // Deterministic, non-degenerate start vector.
    for (std::int64_t j = 0; j < d; ++j) {
      v[static_cast<std::size_t>(j)] =
          std::sin(static_cast<double>(j + 1) * (comp + 1) * 0.7) + 0.01;
    }
    const auto row = [&](std::int64_t i) {
      return std::span<const double>(x.data() + i * d,
                                     static_cast<std::size_t>(d));
    };
    std::vector<double> vnext(static_cast<std::size_t>(d));
    for (std::int64_t it = 0; it < power_iterations; ++it) {
      // scores = X v ; v' = X^T scores ; normalize.
      for (std::int64_t i = 0; i < n; ++i) {
        scores[static_cast<std::size_t>(i)] = tensor::dot(row(i), v);
      }
      // X^T scores accumulated row by row — same i-ascending order the
      // scalar column loop used.
      std::fill(vnext.begin(), vnext.end(), 0.0);
      for (std::int64_t i = 0; i < n; ++i) {
        tensor::axpy(scores[static_cast<std::size_t>(i)], row(i), vnext);
      }
      const double norm = std::sqrt(tensor::dot(
          std::span<const double>(vnext), std::span<const double>(vnext)));
      v.swap(vnext);
      if (norm < 1e-12) break;  // no variance left
      for (auto& vj : v) vj /= norm;
    }
    // Final scores and component variance.
    double comp_var = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double acc = tensor::dot(row(i), v);
      scores[static_cast<std::size_t>(i)] = acc;
      result.projection[i * k + comp] = static_cast<float>(acc);
      comp_var += acc * acc;
    }
    result.component_variance.push_back(comp_var /
                                        static_cast<double>(n - 1));
    // Deflate: X <- X - scores v^T.
    for (std::int64_t i = 0; i < n; ++i) {
      tensor::axpy(-scores[static_cast<std::size_t>(i)],
                   std::span<const double>(v),
                   std::span<double>(x.data() + i * d,
                                     static_cast<std::size_t>(d)));
    }
  }
  return result;
}

double mean_feature_variance(const tensor::Tensor& rows) {
  ZKA_CHECK(rows.rank() >= 2 && rows.dim(0) >= 2,
            "mean_feature_variance: need >= 2 samples, got %s",
            tensor::shape_to_string(rows.shape()).c_str());
  const std::int64_t n = rows.dim(0);
  const std::int64_t d = rows.numel() / n;
  double total = 0.0;
  for (std::int64_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      mean += static_cast<double>(rows[i * d + j]);
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double diff = static_cast<double>(rows[i * d + j]) - mean;
      var += diff * diff;
    }
    total += var / static_cast<double>(n - 1);
  }
  return total / static_cast<double>(d);
}

}  // namespace zka::analysis
