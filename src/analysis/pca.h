// Principal component analysis for the Fig. 4 synthetic-data spread study.
//
// The paper projects ZKA-R/ZKA-G synthetic images with UMAP to show that
// ZKA-R's set has higher variance. The claim is purely about spread, so we
// use a variance-preserving linear projection (top-2 principal components
// via power iteration with deflation) — see DESIGN.md substitutions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace zka::analysis {

struct PcaResult {
  /// Projected coordinates, [N, k].
  tensor::Tensor projection;
  /// Variance captured along each of the k components.
  std::vector<double> component_variance;
  /// Total variance of the (centered) input, summed over dimensions.
  double total_variance = 0.0;
};

/// Projects rows of `rows` ([N, D], any rank->flattened per sample) onto
/// the top `k` principal components.
PcaResult pca_project(const tensor::Tensor& rows, std::int64_t k,
                      std::int64_t power_iterations = 100);

/// Mean per-dimension empirical variance of a sample set ([N, ...]);
/// the statistic backing Fig. 4's "ZKA-R spreads wider than ZKA-G".
double mean_feature_variance(const tensor::Tensor& rows);

}  // namespace zka::analysis
