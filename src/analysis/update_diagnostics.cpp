#include "analysis/update_diagnostics.h"

#include <stdexcept>

#include "util/stats.h"

namespace zka::analysis {

UpdateDiagnostics diagnose_updates(
    const std::vector<std::vector<float>>& updates,
    const std::vector<bool>& is_malicious) {
  if (updates.size() != is_malicious.size()) {
    throw std::invalid_argument("diagnose_updates: flag/update size mismatch");
  }
  if (updates.empty()) {
    throw std::invalid_argument("diagnose_updates: no updates");
  }
  const std::size_t dim = updates.front().size();
  for (const auto& u : updates) {
    if (u.size() != dim) {
      throw std::invalid_argument("diagnose_updates: ragged updates");
    }
  }

  UpdateDiagnostics d;
  d.num_updates = updates.size();
  std::vector<std::size_t> benign;
  std::vector<std::size_t> malicious;
  for (std::size_t k = 0; k < updates.size(); ++k) {
    (is_malicious[k] ? malicious : benign).push_back(k);
  }
  d.num_malicious = malicious.size();
  if (benign.size() < 2) {
    throw std::invalid_argument("diagnose_updates: need >= 2 benign updates");
  }

  // Center = mean of all updates (what a statistic defense would anchor on).
  std::vector<double> center(dim, 0.0);
  for (const auto& u : updates) {
    for (std::size_t i = 0; i < dim; ++i) center[i] += u[i];
  }
  for (auto& c : center) c /= static_cast<double>(updates.size());

  auto delta_of = [&](std::size_t k) {
    std::vector<float> delta(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      delta[i] = updates[k][i] - static_cast<float>(center[i]);
    }
    return delta;
  };

  util::RunningStat benign_norm;
  util::RunningStat malicious_norm;
  for (const std::size_t k : benign) {
    benign_norm.push(util::l2_norm(delta_of(k)));
  }
  for (const std::size_t k : malicious) {
    malicious_norm.push(util::l2_norm(delta_of(k)));
  }
  d.mean_benign_norm = benign_norm.mean();
  d.mean_malicious_norm = malicious_norm.mean();

  util::RunningStat bb_dist;
  util::RunningStat bb_cos;
  for (std::size_t a = 0; a < benign.size(); ++a) {
    for (std::size_t b = a + 1; b < benign.size(); ++b) {
      bb_dist.push(util::l2_distance(updates[benign[a]], updates[benign[b]]));
      bb_cos.push(util::cosine_similarity(delta_of(benign[a]),
                                          delta_of(benign[b])));
    }
  }
  d.mean_benign_pairwise = bb_dist.mean();
  d.mean_benign_cosine = bb_cos.mean();

  util::RunningStat mb_dist;
  util::RunningStat mb_cos;
  for (const std::size_t m : malicious) {
    for (const std::size_t b : benign) {
      mb_dist.push(util::l2_distance(updates[m], updates[b]));
      mb_cos.push(util::cosine_similarity(delta_of(m), delta_of(b)));
    }
  }
  d.mean_cross_pairwise = mb_dist.mean();
  d.mean_cross_cosine = mb_cos.mean();
  return d;
}

}  // namespace zka::analysis
