#include "analysis/update_diagnostics.h"

#include <cmath>

#include "tensor/reduce.h"
#include "util/check.h"
#include "util/stats.h"

namespace zka::analysis {

namespace {

double cosine_of(std::span<const float> a, std::span<const float> b) {
  const double na = tensor::squared_norm(a);
  const double nb = tensor::squared_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return tensor::dot(a, b) / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

UpdateDiagnostics diagnose_updates(
    const std::vector<std::vector<float>>& updates,
    const std::vector<bool>& is_malicious) {
  ZKA_CHECK(updates.size() == is_malicious.size(),
            "diagnose_updates: %zu updates but %zu malicious flags",
            updates.size(), is_malicious.size());
  ZKA_CHECK(!updates.empty(), "diagnose_updates: no updates");
  const std::size_t dim = updates.front().size();
  for (std::size_t k = 0; k < updates.size(); ++k) {
    ZKA_CHECK(updates[k].size() == dim,
              "diagnose_updates: update %zu has %zu coordinates, expected "
              "%zu",
              k, updates[k].size(), dim);
  }

  UpdateDiagnostics d;
  d.num_updates = updates.size();
  std::vector<std::size_t> benign;
  std::vector<std::size_t> malicious;
  benign.reserve(updates.size());
  malicious.reserve(updates.size());
  for (std::size_t k = 0; k < updates.size(); ++k) {
    (is_malicious[k] ? malicious : benign).push_back(k);
  }
  d.num_malicious = malicious.size();
  ZKA_CHECK(benign.size() >= 2,
            "diagnose_updates: need >= 2 benign updates, got %zu",
            benign.size());

  // Center = mean of all updates (what a statistic defense would anchor on).
  std::vector<double> center(dim, 0.0);
  for (const auto& u : updates) {
    tensor::axpy(1.0, std::span<const float>(u), std::span<double>(center));
  }
  for (auto& c : center) c /= static_cast<double>(updates.size());

  // Materialize all deltas once: every delta is reused across the O(n^2)
  // pairwise cosine loops below, so rebuilding them per pair dominated the
  // old implementation.
  std::vector<std::vector<float>> deltas(updates.size());
  for (std::size_t k = 0; k < updates.size(); ++k) {
    deltas[k].resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      deltas[k][i] = updates[k][i] - static_cast<float>(center[i]);
    }
  }

  util::RunningStat benign_norm;
  util::RunningStat malicious_norm;
  for (const std::size_t k : benign) {
    benign_norm.push(std::sqrt(tensor::squared_norm(deltas[k])));
  }
  for (const std::size_t k : malicious) {
    malicious_norm.push(std::sqrt(tensor::squared_norm(deltas[k])));
  }
  d.mean_benign_norm = benign_norm.mean();
  d.mean_malicious_norm = malicious_norm.mean();

  util::RunningStat bb_dist;
  util::RunningStat bb_cos;
  for (std::size_t a = 0; a < benign.size(); ++a) {
    for (std::size_t b = a + 1; b < benign.size(); ++b) {
      bb_dist.push(std::sqrt(
          tensor::squared_distance(updates[benign[a]], updates[benign[b]])));
      bb_cos.push(cosine_of(deltas[benign[a]], deltas[benign[b]]));
    }
  }
  d.mean_benign_pairwise = bb_dist.mean();
  d.mean_benign_cosine = bb_cos.mean();

  util::RunningStat mb_dist;
  util::RunningStat mb_cos;
  for (const std::size_t m : malicious) {
    for (const std::size_t b : benign) {
      mb_dist.push(std::sqrt(tensor::squared_distance(updates[m], updates[b])));
      mb_cos.push(cosine_of(deltas[m], deltas[b]));
    }
  }
  d.mean_cross_pairwise = mb_dist.mean();
  d.mean_cross_cosine = mb_cos.mean();
  return d;
}

}  // namespace zka::analysis
