// Robust aggregation (defense) interface.
//
// Updates are flat model-parameter vectors (the FL wire format from
// nn::get_flat_params). Selection-style defenses (mKrum, Bulyan, FoolsGold)
// also report *which* updates contributed, which is what the paper's DPR
// metric (Eq. 5) is computed from; statistic defenses (Median, TRmean)
// blend coordinates from all updates and report no selection.
//
// Aggregators consume updates as read-only views (UpdateView). The server
// round loop hands out spans over client buffers without copying — a
// crafted malicious update submitted by many sybils is one buffer viewed
// many times, not many deep copies. Owning-vector callers use the
// convenience overload, which builds the view list and forwards.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "defense/sanitize.h"

namespace zka::defense {

using Update = std::vector<float>;

/// Non-owning read-only view of one client's flat update. The pointee must
/// outlive the aggregate() call (aggregators never retain views).
using UpdateView = std::span<const float>;

struct AggregationResult {
  Update model;
  /// Indices (into the submitted update list) of updates that were selected
  /// for aggregation. Empty for statistic defenses that use all updates.
  std::vector<std::size_t> selected;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // The client-facing entry points (aggregate and the streaming quartet
  // below) are non-virtual template methods: they run the ingress
  // sanitize layer (defense/sanitize.h — finite-check every update row,
  // clamp outlier reported weights) and then dispatch to the protected
  // do_* hooks the rules override. Rules therefore consume sanitized
  // input by construction; set_sanitize({.enabled = false}) restores the
  // paper-faithful undefended server bitwise.

  /// Aggregates the round's updates; weights[i] is the sample count of
  /// client i (used by weighted FedAvg; robust rules may ignore it).
  /// Requires at least one update; all updates must have equal size.
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights);

  /// Convenience overload for owning vectors: builds the view list and
  /// forwards to the span version.
  AggregationResult aggregate(const std::vector<Update>& updates,
                              const std::vector<std::int64_t>& weights);

  /// Replaces the ingress sanitize configuration (takes effect from the
  /// next entry-point call; never mid-stream).
  void set_sanitize(const sanitize::Options& options) {
    ingress_ = sanitize::Ingress(options);
  }

  /// The ingress layer, for tests and telemetry (zeroed/clamped counts).
  const sanitize::Ingress& ingress() const noexcept { return ingress_; }

  /// Called by the server before collecting a round's updates, with the
  /// global model it just broadcast. Most rules ignore it; defenses that
  /// need server-side context (e.g. FLTrust trains a reference update on
  /// its root dataset) override it.
  virtual void begin_round(std::span<const float> global_model,
                           std::int64_t round) {
    (void)global_model;
    (void)round;
  }

  /// True if the defense *selects* updates (DPR is only defined then).
  virtual bool selects_clients() const noexcept = 0;

  virtual std::string name() const = 0;

  // ── Streaming ingestion (production-scale rounds) ────────────────────
  //
  // Rules that can fold updates one at a time — without ever holding the
  // round's full update matrix — opt in by overriding supports_streaming()
  // and the three hooks below. The server then calls
  //
  //   begin_stream(dim, weights);        // all round weights, up front
  //   stream_update(u_0); ... stream_update(u_{n-1});   // submission order
  //   finish_stream();
  //
  // and may free each update buffer as soon as its stream_update returns,
  // bounding server memory by the training-wave size instead of n.
  //
  // Between the last stream_update and finish_stream, the server asks
  // stream_replay_request() for the (possibly empty) index set the rule
  // wants to see again at full dimension — the bounded second pass behind
  // the sketched selection rules (defense/sketch.h): ranking happens on
  // O(k) sketches, and only the O(f + band) updates near the decision
  // boundary are replayed for the exact re-check and the final mean.
  // Client training is a pure function of (global model, seed), so the
  // server re-derives a replayed update bit-for-bit instead of storing it.
  //
  //   begin_stream(dim, weights);
  //   stream_update(u_0); ... stream_update(u_{n-1});   // submission order
  //   for i in stream_replay_request():                 // ascending
  //     stream_replay(i, u_i);                          // same bits as pass 1
  //   finish_stream();
  //
  // Contract: streaming produces a bitwise-identical model to aggregate()
  // given the same updates in the same order whenever streaming_exact() is
  // true — FedAvg folds with the exact per-coordinate accumulation order
  // of tensor::weighted_sum, and the sketched Krum family computes the
  // buffered path through the very same plan/replay sums. Rules that
  // stream through a documented approximation (hierarchical tree
  // median/trimmed-mean under a memory budget, statistic.h) return false
  // from streaming_exact() and remain bitwise deterministic for a fixed
  // arrival order and budget — just not equal to their batch rule unless
  // the budget admits a single wave. Rules that truly need all n updates
  // keep supports_streaming() false; for them the server's floor is
  // n = clients_per_round buffers.

  /// True when this rule implements the streaming hooks.
  virtual bool supports_streaming() const noexcept { return false; }

  /// True when finish_stream() is guaranteed bitwise-identical to
  /// aggregate() on the same updates in the same order. Approximate
  /// streaming rules (tree median/trmean) override to false and document
  /// their agreement bounds.
  virtual bool streaming_exact() const noexcept { return true; }

  /// Starts a streaming round: `dim` coordinates per update, one weight
  /// per forthcoming stream_update call, in call order. Throws unless the
  /// rule supports streaming.
  void begin_stream(std::size_t dim, std::span<const std::int64_t> weights);

  /// Folds the next update (submission order). The view need only stay
  /// valid for the duration of the call.
  void stream_update(UpdateView update);

  /// After the last stream_update: the ascending index set (into the
  /// streamed order) this rule needs replayed at full dimension before
  /// finish_stream(). Default: none. The span stays valid until
  /// finish_stream() returns.
  virtual std::span<const std::size_t> stream_replay_request() { return {}; }

  /// Replays update `index` (must be the next unserved entry of
  /// stream_replay_request(), ascending) with exactly the bits it had in
  /// the first pass — sanitization is deterministic, so re-admitting the
  /// original bytes reproduces the pass-1 row exactly. Throws for rules
  /// that never request replays.
  void stream_replay(std::size_t index, UpdateView update);

  /// Finishes the round and returns the aggregate, exactly as aggregate()
  /// would have when streaming_exact(). Requires one stream_update per
  /// begin_stream weight, plus every requested replay.
  virtual AggregationResult finish_stream();

 protected:
  // Per-rule implementations, called with sanitized input. Overrides must
  // still establish their own contract (validate_updates / ZKA_CHECK):
  // sanitization normalizes values, it does not prove shapes.
  virtual AggregationResult do_aggregate(
      std::span<const UpdateView> updates,
      std::span<const std::int64_t> weights) = 0;
  virtual void do_begin_stream(std::size_t dim,
                               std::span<const std::int64_t> weights);
  virtual void do_stream_update(UpdateView update);
  virtual void do_stream_replay(std::size_t index, UpdateView update);

 private:
  sanitize::Ingress ingress_;
};

/// View list over a vector of owning updates (no copies).
std::vector<UpdateView> as_views(const std::vector<Update>& updates);

/// Throws std::invalid_argument unless updates is non-empty and rectangular
/// and weights (when non-empty) match in count and are non-negative.
/// Value-level hygiene (finiteness) is the ingress layer's job
/// (defense/sanitize.h), not a shape contract — switching sanitization off
/// must reproduce the undefended server, not crash it.
void validate_updates(std::span<const UpdateView> updates,
                      std::span<const std::int64_t> weights);

/// Knobs shared by the named constructor below; defaults reproduce the
/// legacy make_aggregator(name, f) behaviour exactly.
struct AggregatorOptions {
  /// The defense's assumed attacker bound f.
  std::size_t num_byzantine = 2;
  /// JL sketch dimension k for the distance-based rules (krum, mkrum,
  /// bulyan): rank on O(k) sketches, re-check the selection boundary
  /// exactly at full dimension (defense/sketch.h). 0 = exact path.
  std::size_t sketch_dim = 0;
  /// Seed of the sketch sign pattern.
  std::uint64_t sketch_seed = 0x5ce7c41ULL;
  /// Per-side width of the exact re-check band around the selection cut.
  std::size_t recheck_band = 16;
  /// Server memory budget forwarded to budget-aware streaming rules
  /// (median/trmean size their tree-aggregation wave from it). 0 = keep
  /// the batch path.
  std::size_t memory_budget_bytes = 0;
  /// Ingress sanitization (defense/sanitize.h): zero non-finite update
  /// coordinates and clamp outlier reported weights before any rule sees
  /// them. Off = bitwise pass-through (the paper-faithful hostile server).
  bool sanitize = true;
  /// Reported-weight cap as a multiple of the round's median weight.
  double sanitize_weight_cap_ratio = 8.0;
};

/// Named construction for benches/CLIs: fedavg, median, trmean, mkrum,
/// bulyan, foolsgold, normclip. `num_byzantine` is the defense's assumed
/// attacker bound f.
std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            std::size_t num_byzantine);

/// Full-options overload; the legacy signature forwards here.
std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            const AggregatorOptions& options);

}  // namespace zka::defense
