// Norm clipping (extension): bounds each update's deviation from the
// coordinate-wise median center to the median deviation norm, then averages.
// A cheap, selection-free robustness baseline.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class NormClipping : public Aggregator {
 public:
  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "NormClip"; }
};

}  // namespace zka::defense
