// FedAvg (McMahan et al.): sample-count-weighted mean. Not robust; this is
// the paper's attack-free reference aggregator.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class FedAvg : public Aggregator {
 public:
  AggregationResult aggregate(const std::vector<Update>& updates,
                              const std::vector<std::int64_t>& weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "FedAvg"; }
};

/// Unweighted mean of the given updates (shared helper; mKrum and Bulyan
/// average their selected subsets with it).
Update mean_of(const std::vector<Update>& updates,
               const std::vector<std::size_t>& subset);

}  // namespace zka::defense
