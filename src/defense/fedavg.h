// FedAvg (McMahan et al.): sample-count-weighted mean. Not robust; this is
// the paper's attack-free reference aggregator.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class FedAvg : public Aggregator {
 public:
  using Aggregator::aggregate;
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "FedAvg"; }
};

/// Unweighted mean of the given updates (shared helper; mKrum and Bulyan
/// average their selected subsets with it).
Update mean_of(std::span<const UpdateView> updates,
               const std::vector<std::size_t>& subset);

}  // namespace zka::defense
