// FedAvg (McMahan et al.): sample-count-weighted mean. Not robust; this is
// the paper's attack-free reference aggregator.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class FedAvg : public Aggregator {
 public:
  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "FedAvg"; }

  /// A weighted mean folds one update at a time: the streaming path
  /// replays tensor::weighted_sum's exact per-coordinate accumulation
  /// order (coefficients fixed up front from the full weight list, one
  /// axpy per update in submission order), so it is bitwise identical to
  /// aggregate() while holding O(dim) server state instead of O(n·dim).
  bool supports_streaming() const noexcept override { return true; }
  void do_begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override;
  void do_stream_update(UpdateView update) override;
  AggregationResult finish_stream() override;

 private:
  std::vector<double> stream_coeffs_;
  std::vector<double> stream_acc_;
  std::size_t stream_next_ = 0;
  bool streaming_ = false;
};

/// FedAvg mixing coefficients: weights normalized by their sum, or the
/// unweighted 1/n fallback when the total is zero. Shared by the batch and
/// streaming paths so they stay bit-identical by construction.
std::vector<double> fedavg_coefficients(std::span<const std::int64_t> weights);

/// Unweighted mean of the given updates (shared helper; mKrum and Bulyan
/// average their selected subsets with it).
Update mean_of(std::span<const UpdateView> updates,
               const std::vector<std::size_t>& subset);

}  // namespace zka::defense
