// Centered clipping (Karimireddy et al., ICML 2021) — extension defense.
// Keeps a running center v across rounds and aggregates
//   v <- v + mean_k clip(u_k - v, tau),
// where clip bounds the L2 norm of the correction to tau. Unlike the
// stateless rules, the center carries memory between rounds, which damps
// attacks that rely on a single large displacement.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class CenteredClipping : public Aggregator {
 public:
  /// `tau` is the clip radius; <= 0 auto-tunes each round to the median
  /// distance between the updates and the current center.
  explicit CenteredClipping(double tau = 0.0) : tau_(tau) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "CenteredClip"; }

  /// The clip radius used by the last aggregate() (for tests).
  double last_tau() const noexcept { return last_tau_; }

 private:
  double tau_;
  double last_tau_ = 0.0;
  Update center_;  // empty until the first round
};

}  // namespace zka::defense
