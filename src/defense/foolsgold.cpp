#include "defense/foolsgold.h"

#include <algorithm>
#include <cmath>

#include "defense/distance.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult FoolsGold::do_aggregate(std::span<const UpdateView> updates,
                                       std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/foolsgold");
  validate_updates(updates, weights);
  ZKA_CHECK(select_threshold_ >= 0.0 && select_threshold_ <= 1.0,
            "FoolsGold: select_threshold %g outside [0, 1]",
            select_threshold_);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Pairwise cosine similarity (Gram fast path for big rounds).
  const PairwiseMatrix cs = pairwise_cosine(updates);

  // v_i = max_j cs_ij; pardoning rescale, then logit squash.
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) v[i] = std::max(v[i], cs(i, j));
    }
  }
  std::vector<double> wv(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double m = v[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      // Pardoning: rescale similarity by the ratio of maxima.
      if (v[j] > v[i] && v[j] > 0.0) {
        m = std::max(m, cs(i, j) * v[i] / v[j]);
      }
    }
    wv[i] = 1.0 - m;
  }
  const double wv_max = *std::max_element(wv.begin(), wv.end());
  for (auto& w : wv) {
    if (wv_max > 0.0) w /= wv_max;        // rescale to [.., 1]
    w = std::clamp(w, 0.0, 1.0);
    // Logit squash, clamped away from the poles.
    const double x = std::clamp(w, 1e-5, 1.0 - 1e-5);
    w = 0.5 * std::log(x / (1.0 - x)) + 0.5;
    w = std::clamp(w, 0.0, 1.0);
  }

  double total = 0.0;
  for (const double w : wv) total += w;
  AggregationResult result;
  std::vector<double> coeffs(n);
  if (total <= 0.0) {
    // Everything looked like a Sybil: fall back to the plain mean.
    for (auto& c : coeffs) c = 1.0 / static_cast<double>(n);
    last_weights_.assign(n, 1.0 / static_cast<double>(n));
    for (std::size_t k = 0; k < n; ++k) result.selected.push_back(k);
  } else {
    for (std::size_t k = 0; k < n; ++k) coeffs[k] = wv[k] / total;
    last_weights_ = wv;
    for (std::size_t k = 0; k < n; ++k) {
      if (wv[k] >= select_threshold_) result.selected.push_back(k);
    }
  }
  std::vector<double> acc(dim);
  tensor::weighted_sum(updates, coeffs, acc);
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(acc[i]);
  }
  return result;
}

}  // namespace zka::defense
