#include "defense/statistic.h"

#include <algorithm>
#include <cmath>

#include "defense/coordwise.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {
namespace {

// One tree node / one batch call of the median rule: per-coordinate
// median of the given rows.
Update median_of(std::span<const UpdateView> rows) {
  const std::size_t n = rows.size();
  const std::size_t dim = rows.front().size();
  Update out(dim);
  for_each_sorted_coordinate(
      rows, [&](std::size_t i, std::span<const float> column) {
        const std::size_t mid = n / 2;
        float v = column[mid];
        if (n % 2 == 0) v = (v + column[mid - 1]) / 2.0f;
        out[i] = v;
      });
  return out;
}

// One tree node / one batch call of the trimmed-mean rule. `trim` is
// clamped so at least one value per coordinate survives — tree nodes can
// be smaller than the batch feasibility bound.
Update trimmed_mean_of(std::span<const UpdateView> rows, std::size_t trim) {
  const std::size_t n = rows.size();
  const std::size_t dim = rows.front().size();
  const std::size_t t = std::min(trim, (n - 1) / 2);
  Update out(dim);
  for_each_sorted_coordinate(
      rows, [&](std::size_t i, std::span<const float> column) {
        double acc = 0.0;
        for (std::size_t k = t; k < n - t; ++k) {
          acc += static_cast<double>(column[k]);
        }
        out[i] = static_cast<float>(acc / static_cast<double>(n - 2 * t));
      });
  return out;
}

void check_stream_update(const CoordTreeStream& tree, UpdateView update,
                         const char* rule) {
  ZKA_CHECK(tree.active(), "%s: stream_update without begin_stream", rule);
  ZKA_CHECK(tree.received() < tree.expected(),
            "%s: more updates streamed than weights announced (%zu)", rule,
            tree.expected());
  ZKA_CHECK(update.size() == tree.dim(),
            "%s: streamed update has %zu coordinates, expected %zu", rule,
            update.size(), tree.dim());
  for (const float value : update) {
    ZKA_CHECK(std::isfinite(value), "%s: non-finite value in streamed update %zu",
              rule, tree.received());
  }
}

void check_begin_stream(std::size_t dim, std::span<const std::int64_t> weights,
                        const char* rule) {
  ZKA_CHECK(dim > 0, "%s: empty update dimension", rule);
  ZKA_CHECK(!weights.empty(), "%s: no weights for streaming round", rule);
  for (const std::int64_t w : weights) {
    ZKA_CHECK(w >= 0, "%s: negative weight %lld", rule,
              static_cast<long long>(w));
  }
}

}  // namespace

std::size_t coord_tree_wave(std::size_t memory_budget_bytes, std::size_t dim,
                            std::size_t n) {
  const std::size_t update_bytes = dim * sizeof(float);
  const std::size_t fit =
      update_bytes > 0 ? memory_budget_bytes / update_bytes : n;
  return std::clamp<std::size_t>(fit, 2, std::max<std::size_t>(n, 2));
}

void CoordTreeStream::begin(std::size_t dim, std::size_t n, std::size_t wave) {
  ZKA_CHECK(!active_, "CoordTreeStream: begin during an open stream");
  ZKA_CHECK(wave >= 2, "CoordTreeStream: wave %zu must be at least 2", wave);
  active_ = true;
  dim_ = dim;
  n_ = n;
  wave_ = wave;
  received_ = 0;
  levels_.assign(1, {});
  levels_[0].reserve(std::min(wave_, n_));
}

void CoordTreeStream::add(Update update, const Reduce& reduce) {
  ZKA_CHECK(active_, "CoordTreeStream: add without begin");
  levels_[0].push_back(std::move(update));
  ++received_;
  for (std::size_t level = 0; levels_[level].size() == wave_; ++level) {
    const std::vector<UpdateView> views = as_views(levels_[level]);
    Update folded = reduce(std::span<const UpdateView>(views));
    levels_[level].clear();
    if (levels_.size() == level + 1) levels_.emplace_back();
    levels_[level + 1].push_back(std::move(folded));
  }
}

Update CoordTreeStream::finish(const Reduce& reduce) {
  ZKA_CHECK(active_, "CoordTreeStream: finish without begin");
  ZKA_CHECK(received_ == n_, "CoordTreeStream: %zu of %zu announced updates",
            received_, n_);
  Update carry;
  bool have_carry = false;
  for (std::vector<Update>& items : levels_) {
    // The carry from the level below covers the newest arrivals, so it
    // joins after the level's complete aggregates — arrival order.
    if (have_carry) items.push_back(std::move(carry));
    have_carry = false;
    if (items.empty()) continue;
    if (items.size() == 1) {
      carry = std::move(items[0]);
    } else {
      const std::vector<UpdateView> views = as_views(items);
      carry = reduce(std::span<const UpdateView>(views));
    }
    items.clear();
    have_carry = true;
  }
  ZKA_CHECK(have_carry, "CoordTreeStream: finish with no updates");
  active_ = false;
  levels_.clear();
  return carry;
}

AggregationResult Median::do_aggregate(std::span<const UpdateView> updates,
                                    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/median");
  validate_updates(updates, weights);
  AggregationResult result;
  result.model = median_of(updates);
  return result;
}

void Median::do_begin_stream(std::size_t dim,
                          std::span<const std::int64_t> weights) {
  ZKA_CHECK(supports_streaming(), "Median: streaming needs a memory budget");
  check_begin_stream(dim, weights, "Median");
  tree_.begin(dim, weights.size(), coord_tree_wave(budget_, dim, weights.size()));
}

void Median::do_stream_update(UpdateView update) {
  ZKA_PROF_SCOPE("aggregate/median_stream");
  check_stream_update(tree_, update, "Median");
  tree_.add(Update(update.begin(), update.end()), median_of);
}

AggregationResult Median::finish_stream() {
  AggregationResult result;
  result.model = tree_.finish(median_of);
  return result;
}

AggregationResult TrimmedMean::do_aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/trmean");
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  ZKA_CHECK(n > 2 * trim_,
            "TrimmedMean: need more than 2*trim updates (n=%zu, trim=%zu)", n,
            trim_);
  AggregationResult result;
  result.model = trimmed_mean_of(updates, trim_);
  return result;
}

void TrimmedMean::do_begin_stream(std::size_t dim,
                               std::span<const std::int64_t> weights) {
  ZKA_CHECK(supports_streaming(),
            "TrimmedMean: streaming needs a memory budget");
  check_begin_stream(dim, weights, "TrimmedMean");
  const std::size_t n = weights.size();
  ZKA_CHECK(n > 2 * trim_,
            "TrimmedMean: need more than 2*trim updates (n=%zu, trim=%zu)", n,
            trim_);
  tree_.begin(dim, n, coord_tree_wave(budget_, dim, n));
}

void TrimmedMean::do_stream_update(UpdateView update) {
  ZKA_PROF_SCOPE("aggregate/trmean_stream");
  check_stream_update(tree_, update, "TrimmedMean");
  tree_.add(Update(update.begin(), update.end()),
            [this](std::span<const UpdateView> rows) {
              return trimmed_mean_of(rows, trim_);
            });
}

AggregationResult TrimmedMean::finish_stream() {
  AggregationResult result;
  result.model = tree_.finish([this](std::span<const UpdateView> rows) {
    return trimmed_mean_of(rows, trim_);
  });
  return result;
}

}  // namespace zka::defense
