#include "defense/statistic.h"

#include <algorithm>
#include <stdexcept>

namespace zka::defense {

AggregationResult Median::aggregate(const std::vector<Update>& updates,
                                    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t dim = updates.front().size();
  const std::size_t n = updates.size();
  AggregationResult result;
  result.model.resize(dim);
  std::vector<float> column(n);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < n; ++k) column[k] = updates[k][i];
    const std::size_t mid = n / 2;
    std::nth_element(column.begin(), column.begin() + mid, column.end());
    float v = column[mid];
    if (n % 2 == 0) {
      std::nth_element(column.begin(), column.begin() + mid - 1,
                       column.begin() + mid);
      v = (v + column[mid - 1]) / 2.0f;
    }
    result.model[i] = v;
  }
  return result;
}

AggregationResult TrimmedMean::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  if (n <= 2 * trim_) {
    throw std::invalid_argument("TrimmedMean: need more than 2*trim updates");
  }
  const std::size_t dim = updates.front().size();
  AggregationResult result;
  result.model.resize(dim);
  std::vector<float> column(n);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < n; ++k) column[k] = updates[k][i];
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t k = trim_; k < n - trim_; ++k) acc += column[k];
    result.model[i] =
        static_cast<float>(acc / static_cast<double>(n - 2 * trim_));
  }
  return result;
}

}  // namespace zka::defense
