#include "defense/statistic.h"

#include <algorithm>

#include "defense/coordwise.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult Median::aggregate(std::span<const UpdateView> updates,
                                    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/median");
  validate_updates(updates, weights);
  const std::size_t dim = updates.front().size();
  const std::size_t n = updates.size();
  AggregationResult result;
  result.model.resize(dim);
  for_each_sorted_coordinate(
      updates, [&](std::size_t i, std::span<const float> column) {
        const std::size_t mid = n / 2;
        float v = column[mid];
        if (n % 2 == 0) v = (v + column[mid - 1]) / 2.0f;
        result.model[i] = v;
      });
  return result;
}

AggregationResult TrimmedMean::aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/trmean");
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  ZKA_CHECK(n > 2 * trim_,
            "TrimmedMean: need more than 2*trim updates (n=%zu, trim=%zu)", n,
            trim_);
  const std::size_t dim = updates.front().size();
  AggregationResult result;
  result.model.resize(dim);
  for_each_sorted_coordinate(
      updates, [&](std::size_t i, std::span<const float> column) {
        double acc = 0.0;
        for (std::size_t k = trim_; k < n - trim_; ++k) {
          acc += static_cast<double>(column[k]);
        }
        result.model[i] =
            static_cast<float>(acc / static_cast<double>(n - 2 * trim_));
      });
  return result;
}

}  // namespace zka::defense
