// Sketched selection for the distance-based defenses: the O(n) server
// path that makes Krum/mKrum/Bulyan usable at production cohort sizes.
//
// The exact rules are O(n²·d) in pairwise distances — the wall between
// the paper's n = 100 rounds and the million-client engine. This layer
// splits the job in three:
//
//   1. **Project** every update through a seeded JL sign sketch
//      (tensor::JlSketch, d → k ≈ a few hundred, O(d) per update). In
//      streaming rounds the projection happens per stream_update, so the
//      server holds n·k sketch floats plus one O(d) running sum — never
//      all n full-dimension updates.
//   2. **Rank** on the sketches: one-shot Krum scores via a blocked Gram
//      pass (O(n²·k) time, O(n) memory per row block — the n×n matrix is
//      never materialized), or the iterative variant over a sketch-space
//      PairwiseMatrix for Bulyan-scale n. Same cancellation guard as the
//      exact path (distance.h), applied in sketch space.
//   3. **Re-check exactly at full dimension** before the final mean: the
//      selection boundary is where sketch noise can flip a decision, so
//      the ranks in a band around the cut are re-ordered by their exact
//      full-dimension squared distance to the centroid of the
//      confidently-benign pool. Everything the re-check (and the final
//      mean) needs at full dimension is a *small* index set — the band
//      plus whichever of selected/rejected is smaller — which is what the
//      streaming replay protocol (Aggregator::stream_replay_request)
//      fetches in a bounded second pass.
//
// Determinism contract: projection, ranking and re-check are pure
// functions of (updates, options) with fixed association orders — block
// grids for the Gram pass, index-ascending accumulation for sums, (score,
// index) tie-breaks for every ranking — so results are bitwise identical
// for any thread count, and the buffered and streaming paths produce
// bitwise-identical models by construction (both fold the same sums in
// the same order).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "defense/aggregator.h"
#include "tensor/sketch.h"

namespace zka::defense {

struct SketchOptions {
  /// JL sketch dimension k; 0 disables sketching (exact path everywhere).
  std::size_t sketch_dim = 0;
  /// Seed of the sign pattern (shared by server replicas for agreement).
  std::uint64_t seed = 0x5ce7c41ULL;
  /// Per-side width B of the exact re-check band around the selection
  /// cut: ranks [m−B, m+B) are re-ordered by exact full-dimension
  /// distance to the benign-pool centroid. 0 trusts the sketch ranking.
  std::size_t recheck_band = 16;

  /// True when sketching pays off for this round shape: enabled, enough
  /// rows for the ranking to matter, and a dimension high enough that
  /// projecting (O(d)) beats just measuring exactly (also O(d) per pair
  /// but n² pairs). Callers fall back to the exact path otherwise.
  bool enabled_for(std::size_t n, std::size_t dim) const noexcept {
    return sketch_dim > 0 && n >= 8 && dim > 2 * sketch_dim;
  }
};

/// Projects every update into a row of the returned [n, k] row-major
/// matrix (k = sketch.sketch_dim()). Parallel over disjoint row chunks;
/// bitwise deterministic for any thread count.
std::vector<float> project_rows(const tensor::JlSketch& sketch,
                                std::span<const UpdateView> updates);

/// One-shot Krum scores over sketch rows [n, k]: score_i = sum of the
/// `num_neighbors` smallest squared distances from row i to the other
/// rows. Blocked Gram pass — O(n²·k) time, O(block·n) memory, the n×n
/// matrix is never materialized — with the distance.h cancellation guard
/// (near-colluding rows recomputed exactly in sketch space).
std::vector<double> sketched_krum_scores(std::span<const float> rows,
                                         std::size_t n, std::size_t k,
                                         std::size_t num_neighbors);

/// Ranking of all n updates by sketched Krum centrality, most central
/// first. One-shot: ascending (score, index). Iterative (the variant
/// Bulyan builds on): successive exclusion picks over a sketch-space
/// PairwiseMatrix first, remaining indices by their end-state score.
std::vector<std::size_t> sketched_order(std::span<const float> rows,
                                        std::size_t n, std::size_t k,
                                        std::size_t f, std::size_t m,
                                        bool iterative);

/// Everything finish_sketched_selection needs besides full-dimension row
/// access: the ranking, the cut, the re-check band, the centroid pool,
/// and `replay` — the ascending index set whose full-dimension rows the
/// finisher will ask for (the streaming server replays exactly these).
struct SketchedSelectionPlan {
  std::vector<std::size_t> order;  ///< all n indices, most central first
  std::size_t n = 0;
  std::size_t m = 0;        ///< selection size
  std::size_t band_lo = 0;  ///< band = ranks [m − band_lo, m + band_hi)
  std::size_t band_hi = 0;
  std::size_t pool = 0;     ///< centroid pool = order[0, pool)
  std::vector<std::size_t> replay;  ///< ascending, unique
};

/// Builds the plan from a ranking: clamps the band to [0, n], sizes the
/// centroid pool to max(m, n − f), and derives the minimal replay set
/// (band ∪ pool-complement ∪ whichever of selected/rejected the final
/// mean folds — always O(f + band), never O(n), which is what bounds the
/// streaming second pass).
SketchedSelectionPlan plan_sketched_selection(std::vector<std::size_t> order,
                                              std::size_t n, std::size_t f,
                                              std::size_t m,
                                              std::size_t band);

/// The exact full-dimension re-check: computes the pool centroid from
/// `sum_all` minus the replayed pool complement, re-orders the band ranks
/// by exact squared distance to it, and returns the final selection
/// (ascending indices). `full_row(i)` must be valid for every i in
/// plan.replay; `sum_all` is the index-ascending double sum of all n
/// updates.
std::vector<std::size_t> recheck_selection(
    const SketchedSelectionPlan& plan, std::span<const double> sum_all,
    const std::function<UpdateView(std::size_t)>& full_row, std::size_t dim);

/// recheck_selection plus the final unweighted mean of the selection,
/// folded from `sum_all` by adding the selected rows (m small) or
/// subtracting the rejected rows (m large) — both index-ascending, so
/// buffered and streaming callers get bitwise-identical models.
AggregationResult finish_sketched_selection(
    const SketchedSelectionPlan& plan, std::span<const double> sum_all,
    const std::function<UpdateView(std::size_t)>& full_row, std::size_t dim);

}  // namespace zka::defense
