#include "defense/fltrust.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

FlTrust::FlTrust(data::Dataset root, models::ModelFactory factory,
                 FlTrustOptions options, std::uint64_t seed)
    : root_(std::move(root)), factory_(std::move(factory)),
      options_(options), rng_(seed) {
  ZKA_CHECK(root_.size() > 0, "FlTrust: root dataset is empty");
}

void FlTrust::begin_round(std::span<const float> global_model,
                          std::int64_t round) {
  global_.assign(global_model.begin(), global_model.end());

  // Train the server's reference update from the broadcast model.
  util::Rng round_rng = rng_.split(static_cast<std::uint64_t>(round) + 1);
  auto model = factory_(round_rng.split(1)());
  nn::set_flat_params(*model, global_);
  nn::Sgd optimizer(*model, {.learning_rate = options_.learning_rate});
  nn::SoftmaxCrossEntropy loss;
  data::DataLoader loader(root_, options_.batch_size);
  for (std::int64_t epoch = 0; epoch < options_.local_epochs; ++epoch) {
    loader.shuffle(round_rng);
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.batch(b);
      optimizer.zero_grad();
      loss.forward(model->forward(batch.images), batch.labels);
      model->backward(loss.backward());
      optimizer.step();
    }
  }
  server_update_ = nn::get_flat_params(*model);
}

AggregationResult FlTrust::do_aggregate(std::span<const UpdateView> updates,
                                     std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/fltrust");
  validate_updates(updates, weights);
  ZKA_CHECK(global_.size() == updates.front().size() &&
                server_update_.size() == updates.front().size(),
            "FlTrust::aggregate without a matching begin_round "
            "(round dim %zu, update dim %zu)",
            global_.size(), updates.front().size());
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Deltas relative to the broadcast model. The client delta is
  // materialized in a reused scratch (not expanded algebraically): deltas
  // are tiny relative to the model, so the cosine must be computed on the
  // exact differences to keep trust scores meaningful.
  std::vector<float> server_delta(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    server_delta[i] = server_update_[i] - global_[i];
  }
  const double server_sqnorm = tensor::squared_norm(server_delta);
  const double server_norm = std::sqrt(server_sqnorm);

  last_scores_.assign(n, 0.0);
  std::vector<double> aggregated(dim, 0.0);
  double score_total = 0.0;
  AggregationResult result;
  std::vector<float> delta(dim);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < dim; ++i) {
      delta[i] = updates[k][i] - global_[i];
    }
    // Trust score: ReLU(cosine similarity to the server delta).
    const double sqnorm = tensor::squared_norm(delta);
    double cos = 0.0;
    if (sqnorm > 0.0 && server_sqnorm > 0.0) {
      cos = tensor::dot(delta, server_delta) /
            (std::sqrt(sqnorm) * server_norm);
    }
    const double trust = std::max(cos, 0.0);
    last_scores_[k] = trust;
    if (trust <= 0.0) continue;
    result.selected.push_back(k);
    score_total += trust;
    // Normalize the client delta to the server delta's magnitude.
    const double norm = std::sqrt(sqnorm);
    const double rescale = norm > 0.0 ? server_norm / norm : 0.0;
    tensor::axpy(trust * rescale, std::span<const float>(delta),
                 std::span<double>(aggregated));
  }

  result.model = global_;
  if (score_total > 0.0) {
    for (std::size_t i = 0; i < dim; ++i) {
      result.model[i] += static_cast<float>(aggregated[i] / score_total);
    }
  }
  // If every update was distrusted, the model simply does not move.
  return result;
}

}  // namespace zka::defense
