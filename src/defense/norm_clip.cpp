#include "defense/norm_clip.h"

#include <algorithm>
#include <cmath>

#include "defense/statistic.h"
#include "tensor/reduce.h"
#include "util/prof.h"
#include "util/stats.h"

namespace zka::defense {

AggregationResult NormClipping::do_aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/normclip");
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Center = coordinate-wise median.
  Median median_rule;
  const Update center = median_rule.aggregate(updates, weights).model;

  // Clip radius = median of the deviation norms.
  std::vector<double> norms(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    norms[k] = std::sqrt(tensor::squared_distance(updates[k], center));
  }
  const double radius = util::median(std::vector<double>(norms));

  // mean_k [center + s_k (u_k - center)] = (1 - S) center + sum_k c_k u_k
  // with c_k = s_k / n and S = sum c_k; one weighted_sum instead of n
  // scalar passes.
  std::vector<double> coeffs(n);
  double coeff_total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double scale =
        (norms[k] > radius && norms[k] > 0.0) ? radius / norms[k] : 1.0;
    coeffs[k] = scale / static_cast<double>(n);
    coeff_total += coeffs[k];
  }
  std::vector<double> acc(dim);
  tensor::weighted_sum(updates, coeffs, acc);

  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(
        acc[i] + (1.0 - coeff_total) * static_cast<double>(center[i]));
  }
  return result;
}

}  // namespace zka::defense
