#include "defense/norm_clip.h"

#include <algorithm>
#include <cmath>

#include "defense/statistic.h"
#include "util/stats.h"

namespace zka::defense {

AggregationResult NormClipping::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Center = coordinate-wise median.
  Median median_rule;
  const Update center = median_rule.aggregate(updates, weights).model;

  // Clip radius = median of the deviation norms.
  std::vector<double> norms(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(updates[k][i]) - center[i];
      acc += d * d;
    }
    norms[k] = std::sqrt(acc);
  }
  const double radius = util::median(std::vector<double>(norms));

  AggregationResult result;
  std::vector<double> acc(dim, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double scale =
        (norms[k] > radius && norms[k] > 0.0) ? radius / norms[k] : 1.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc[i] += center[i] + scale * (static_cast<double>(updates[k][i]) -
                                     center[i]);
    }
  }
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(acc[i] / static_cast<double>(n));
  }
  return result;
}

}  // namespace zka::defense
