#include "defense/sketch.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "defense/distance.h"
#include "tensor/ops.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/thread_pool.h"

namespace zka::defense {
namespace {

// Fixed row-block grid for the blocked Gram scorer: the grid is a pure
// function of n (never of thread count or chunk assignment), so every
// Gram entry — and hence every score — is bitwise reproducible however
// the blocks are distributed over workers. Targets ~1M live Gram floats
// per in-flight block so memory stays O(block·n) even at n = 1e5.
std::size_t score_block_rows(std::size_t n) {
  const std::size_t target = (std::size_t{1} << 20) / std::max<std::size_t>(n, 1);
  return std::clamp<std::size_t>(target, 8, 256);
}

void run_chunks(std::size_t nchunks, bool parallel,
                const std::function<void(std::size_t)>& body) {
  if (parallel && nchunks > 1 && util::global_thread_pool().size() > 1) {
    util::global_thread_pool().parallel_for(nchunks, body);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) body(c);
  }
}

}  // namespace

std::vector<float> project_rows(const tensor::JlSketch& sketch,
                                std::span<const UpdateView> updates) {
  ZKA_PROF_SCOPE("defense/sketch_project");
  const std::size_t n = updates.size();
  const std::size_t k = sketch.sketch_dim();
  const std::size_t dim = sketch.dim();
  std::vector<float> rows(n * k);
  const bool parallel = tensor::kernel_parallelism_enabled() &&
                        n * dim >= (std::size_t{1} << 18);
  const std::size_t nchunks =
      parallel ? std::min(n, util::global_thread_pool().size() * 4) : 1;
  const std::size_t per = (n + nchunks - 1) / nchunks;
  run_chunks(nchunks, parallel, [&](std::size_t c) {
    std::vector<double> scratch(k);
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    for (std::size_t i = lo; i < hi; ++i) {
      sketch.project(updates[i], scratch,
                     std::span<float>(rows.data() + i * k, k));
    }
  });
  return rows;
}

std::vector<double> sketched_krum_scores(std::span<const float> rows,
                                         std::size_t n, std::size_t k,
                                         std::size_t num_neighbors) {
  ZKA_PROF_SCOPE("defense/sketch_scores");
  ZKA_CHECK(rows.size() == n * k, "sketched_krum_scores: %zu floats for %zux%zu",
            rows.size(), n, k);
  ZKA_CHECK(n >= 2, "sketched_krum_scores: need at least 2 rows, got %zu", n);
  std::vector<double> sqn(n);
  for (std::size_t i = 0; i < n; ++i) {
    sqn[i] = tensor::squared_norm(rows.subspan(i * k, k));
  }

  const std::size_t neighbors = std::min(num_neighbors, n - 1);
  const std::size_t drop = n - 1 - neighbors;
  std::vector<double> scores(n);

  const std::size_t block = score_block_rows(n);
  const std::size_t nblocks = (n + block - 1) / block;
  const bool parallel = tensor::kernel_parallelism_enabled() &&
                        n * k >= (std::size_t{1} << 18);
  const std::size_t nchunks =
      parallel ? std::min(nblocks, util::global_thread_pool().size() * 2) : 1;
  const std::size_t blocks_per = (nblocks + nchunks - 1) / nchunks;

  run_chunks(nchunks, parallel, [&](std::size_t c) {
    std::vector<float> gram(block * n);
    std::vector<double> dists;
    dists.reserve(n - 1);
    const std::size_t b_lo = c * blocks_per;
    const std::size_t b_hi = std::min(nblocks, b_lo + blocks_per);
    for (std::size_t b = b_lo; b < b_hi; ++b) {
      const std::size_t r0 = b * block;
      const std::size_t rcount = std::min(block, n - r0);
      tensor::gemm_a_bt(static_cast<std::int64_t>(rcount),
                        static_cast<std::int64_t>(n),
                        static_cast<std::int64_t>(k), 1.0f,
                        rows.data() + r0 * k, rows.data(), 0.0f, gram.data());
      for (std::size_t i = r0; i < r0 + rcount; ++i) {
        const float* grow = gram.data() + (i - r0) * n;
        dists.clear();
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double scale = sqn[i] + sqn[j];
          double d2 = scale - 2.0 * static_cast<double>(grow[j]);
          // Same cancellation guard as distance.h, applied in sketch
          // space: near-colluding rows get an exact (double-accumulated)
          // recompute, which at k coordinates is cheap.
          if (d2 < kCorrectionThreshold * scale) {
            d2 = tensor::squared_distance(rows.subspan(i * k, k),
                                          rows.subspan(j * k, k));
          }
          dists.push_back(d2);
        }
        double score = 0.0;
        if (drop == 0) {
          for (const double d : dists) score += d;
        } else if (drop < neighbors) {
          // Cheaper to peel the few largest off the full sum. Sum order is
          // a pure function of the value multiset, so chunking never
          // changes the result.
          for (const double d : dists) score += d;
          std::partial_sort(dists.begin(),
                            dists.begin() + static_cast<std::ptrdiff_t>(drop),
                            dists.end(), std::greater<double>());
          for (std::size_t t = 0; t < drop; ++t) score -= dists[t];
        } else {
          std::partial_sort(
              dists.begin(),
              dists.begin() + static_cast<std::ptrdiff_t>(neighbors),
              dists.end());
          for (std::size_t t = 0; t < neighbors; ++t) score += dists[t];
        }
        scores[i] = score;
      }
    }
  });
  return scores;
}

std::vector<std::size_t> sketched_order(std::span<const float> rows,
                                        std::size_t n, std::size_t k,
                                        std::size_t f, std::size_t m,
                                        bool iterative) {
  ZKA_CHECK(n >= 2, "sketched_order: need at least 2 rows, got %zu", n);
  const std::size_t neighbors = n > f + 2 ? n - f - 2 : 1;
  std::vector<std::size_t> order;
  order.reserve(n);

  if (!iterative) {
    const std::vector<double> scores =
        sketched_krum_scores(rows, n, k, neighbors);
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ranked.emplace_back(scores[i], i);
    std::sort(ranked.begin(), ranked.end());
    for (const auto& [score, i] : ranked) order.push_back(i);
    return order;
  }

  // Iterative (the variant Bulyan builds on): successive-exclusion picks
  // over a sketch-space pairwise matrix, exactly mirroring
  // MultiKrum::select's loop (argmin with strict <, so the lowest index
  // wins ties), then the leftovers by their end-state score.
  std::vector<UpdateView> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.emplace_back(rows.data() + i * k, k);
  }
  const PairwiseMatrix sq_dist = pairwise_sq_distances(views);
  std::vector<bool> excluded(n, false);
  const std::size_t picks = std::min(m, n);
  for (std::size_t round = 0; round < picks; ++round) {
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (excluded[i]) continue;
      const double score = krum_score(sq_dist, i, neighbors, excluded);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    excluded[best] = true;
    order.push_back(best);
  }
  std::vector<std::pair<double, std::size_t>> rest;
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded[i]) continue;
    rest.emplace_back(krum_score(sq_dist, i, neighbors, excluded), i);
  }
  std::sort(rest.begin(), rest.end());
  for (const auto& [score, i] : rest) order.push_back(i);
  return order;
}

SketchedSelectionPlan plan_sketched_selection(std::vector<std::size_t> order,
                                              std::size_t n, std::size_t f,
                                              std::size_t m,
                                              std::size_t band) {
  ZKA_CHECK(order.size() == n, "plan_sketched_selection: order of %zu for n=%zu",
            order.size(), n);
  SketchedSelectionPlan plan;
  plan.order = std::move(order);
  plan.n = n;
  plan.m = std::min(std::max<std::size_t>(m, 1), n);
  plan.band_lo = std::min(band, plan.m);
  plan.band_hi = std::min(band, n - plan.m);
  // A band entirely on one side of the cut can never move an index across
  // it — drop it so the replay set (and the centroid pass) stays minimal.
  if (plan.band_lo == 0 || plan.band_hi == 0) {
    plan.band_lo = plan.band_hi = 0;
  }
  plan.pool = std::min(n, std::max(plan.m, n > f ? n - f : plan.m));

  const auto& ord = plan.order;
  std::vector<std::size_t> replay;
  if (n - plan.m <= plan.m) {
    // Final mean folds by subtracting the rejected set, and the pool
    // complement (ranks ≥ pool ≥ m) is inside this suffix too.
    replay.assign(ord.begin() + static_cast<std::ptrdiff_t>(plan.m - plan.band_lo),
                  ord.end());
  } else {
    // Final mean folds the selected set directly; the pool complement is a
    // disjoint suffix.
    replay.assign(ord.begin(),
                  ord.begin() + static_cast<std::ptrdiff_t>(plan.m + plan.band_hi));
    for (std::size_t rank = std::max(plan.pool, plan.m + plan.band_hi);
         rank < n; ++rank) {
      replay.push_back(ord[rank]);
    }
  }
  std::sort(replay.begin(), replay.end());
  plan.replay = std::move(replay);
  return plan;
}

std::vector<std::size_t> recheck_selection(
    const SketchedSelectionPlan& plan, std::span<const double> sum_all,
    const std::function<UpdateView(std::size_t)>& full_row, std::size_t dim) {
  ZKA_PROF_SCOPE("defense/sketch_recheck");
  const std::size_t m = plan.m;
  std::vector<std::size_t> selection(plan.order.begin(),
                                     plan.order.begin() +
                                         static_cast<std::ptrdiff_t>(m));
  if (plan.band_lo + plan.band_hi == 0) {
    std::sort(selection.begin(), selection.end());
    return selection;
  }
  ZKA_CHECK(sum_all.size() == dim, "recheck_selection: sum of %zu for dim %zu",
            sum_all.size(), dim);

  // Pool centroid at full dimension, by subtraction: sum_all minus the
  // (small, index-ascending) pool complement.
  std::vector<double> centroid(sum_all.begin(), sum_all.end());
  std::vector<std::size_t> complement(
      plan.order.begin() + static_cast<std::ptrdiff_t>(plan.pool),
      plan.order.end());
  std::sort(complement.begin(), complement.end());
  for (const std::size_t i : complement) {
    tensor::axpy(-1.0, full_row(i), centroid);
  }
  const double inv_pool = 1.0 / static_cast<double>(plan.pool);
  for (double& c : centroid) c *= inv_pool;

  // Exact re-rank of the band by full-dimension distance to the centroid.
  std::vector<std::pair<double, std::size_t>> band;
  band.reserve(plan.band_lo + plan.band_hi);
  for (std::size_t rank = m - plan.band_lo; rank < m + plan.band_hi; ++rank) {
    const std::size_t i = plan.order[rank];
    band.emplace_back(tensor::squared_distance(full_row(i), centroid), i);
  }
  std::sort(band.begin(), band.end());

  selection.resize(m - plan.band_lo);
  for (std::size_t t = 0; t < plan.band_lo; ++t) {
    selection.push_back(band[t].second);
  }
  std::sort(selection.begin(), selection.end());
  return selection;
}

AggregationResult finish_sketched_selection(
    const SketchedSelectionPlan& plan, std::span<const double> sum_all,
    const std::function<UpdateView(std::size_t)>& full_row, std::size_t dim) {
  const std::size_t n = plan.n;
  const std::size_t m = plan.m;
  AggregationResult result;
  result.selected = recheck_selection(plan, sum_all, full_row, dim);
  ZKA_CHECK(sum_all.size() == dim,
            "finish_sketched_selection: sum of %zu for dim %zu", sum_all.size(),
            dim);

  std::vector<double> acc;
  if (n - m <= m) {
    // Mean by subtraction: fold out the rejected set (index-ascending).
    acc.assign(sum_all.begin(), sum_all.end());
    std::size_t next = 0;  // result.selected is ascending
    for (std::size_t i = 0; i < n; ++i) {
      if (next < result.selected.size() && result.selected[next] == i) {
        ++next;
        continue;
      }
      tensor::axpy(-1.0, full_row(i), acc);
    }
  } else {
    acc.assign(dim, 0.0);
    for (const std::size_t i : result.selected) {
      tensor::axpy(1.0, full_row(i), acc);
    }
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  result.model.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    result.model[j] = static_cast<float>(acc[j] * inv_m);
  }
  return result;
}

}  // namespace zka::defense
