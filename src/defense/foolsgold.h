// FoolsGold (Fung et al., RAID 2020) — Sybil defense, provided as an
// extension beyond the paper's four defenses. Down-weights clients whose
// updates are mutually too similar (Sybils submitting near-identical
// updates), using pairwise cosine similarity. This implementation operates
// on the current round's updates (memoryless variant); the original
// accumulates per-client history, which a sampled-clients simulator cannot
// maintain meaningfully when only 10 of 100 clients appear per round.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class FoolsGold : public Aggregator {
 public:
  /// Clients whose FoolsGold weight falls below `select_threshold` count as
  /// rejected for DPR purposes.
  explicit FoolsGold(double select_threshold = 0.1)
      : select_threshold_(select_threshold) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return "FoolsGold"; }

  /// The per-client aggregation weights from the last call (for tests).
  const std::vector<double>& last_weights() const noexcept {
    return last_weights_;
  }

 private:
  double select_threshold_;
  std::vector<double> last_weights_;
};

}  // namespace zka::defense
