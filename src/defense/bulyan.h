// Bulyan (El Mhamdi et al., ICML 2018): Multi-Krum selection of
// theta = n - 2f updates followed by a coordinate-wise trimmed aggregation
// that keeps the theta - 2f values closest to the per-coordinate median.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class Bulyan : public Aggregator {
 public:
  explicit Bulyan(std::size_t num_byzantine) : f_(num_byzantine) {}

  using Aggregator::aggregate;
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return "Bulyan"; }

 private:
  std::size_t f_;
};

}  // namespace zka::defense
