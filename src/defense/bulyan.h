// Bulyan (El Mhamdi et al., ICML 2018): Multi-Krum selection of
// theta = n - 2f updates followed by a coordinate-wise trimmed aggregation
// that keeps the theta - 2f values closest to the per-coordinate median.
//
// The sketch options flow into the internal iterative Multi-Krum: big
// rounds rank on JL sketches and re-check the selection boundary exactly
// at full dimension (defense/sketch.h); the coordinate-wise trim always
// runs on the full-dimension selected set.
#pragma once

#include "defense/aggregator.h"
#include "defense/sketch.h"

namespace zka::defense {

class Bulyan : public Aggregator {
 public:
  explicit Bulyan(std::size_t num_byzantine, SketchOptions sketch = {})
      : f_(num_byzantine), sketch_(sketch) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return "Bulyan"; }

 private:
  std::size_t f_;
  SketchOptions sketch_;
};

}  // namespace zka::defense
