#include "defense/dnc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "defense/fedavg.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult Dnc::aggregate(std::span<const UpdateView> updates,
                                 std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/dnc");
  validate_updates(updates, weights);
  ZKA_CHECK(options_.subsample_dim > 0, "DnC: subsample_dim must be positive");
  ZKA_CHECK(options_.filter_fraction >= 0.0,
            "DnC: filter_fraction %g is negative", options_.filter_fraction);
  ZKA_CHECK(options_.iterations >= 0 && options_.power_iterations > 0,
            "DnC: iterations=%d power_iterations=%d out of range",
            options_.iterations, options_.power_iterations);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  const std::size_t discard = std::min(
      n - 1, static_cast<std::size_t>(std::llround(
                 options_.filter_fraction *
                 static_cast<double>(options_.num_byzantine))));

  std::vector<bool> accepted(n, true);
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Random coordinate block.
    const std::size_t b = std::min(options_.subsample_dim, dim);
    std::vector<std::size_t> coords(b);
    if (b == dim) {
      std::iota(coords.begin(), coords.end(), 0);
    } else {
      const auto picked = rng_.sample_without_replacement(dim, b);
      coords.assign(picked.begin(), picked.end());
    }

    // Centered submatrix A [n, b].
    std::vector<double> mean(b, 0.0);
    for (const UpdateView u : updates) {
      for (std::size_t j = 0; j < b; ++j) {
        mean[j] += static_cast<double>(u[coords[j]]);
      }
    }
    for (auto& m : mean) m /= static_cast<double>(n);
    std::vector<double> a(n * b);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < b; ++j) {
        a[i * b + j] = static_cast<double>(updates[i][coords[j]]) - mean[j];
      }
    }
    const auto row = [&](std::size_t i) {
      return std::span<const double>(a.data() + i * b, b);
    };

    // Power iteration for the top right singular vector v in R^b.
    std::vector<double> v(b);
    for (std::size_t j = 0; j < b; ++j) {
      v[j] = std::sin(0.37 * static_cast<double>(j + 1)) + 0.011;
    }
    std::vector<double> av(n);
    std::vector<double> vnext(b);
    for (int it = 0; it < options_.power_iterations; ++it) {
      for (std::size_t i = 0; i < n; ++i) av[i] = tensor::dot(row(i), v);
      // v <- A^T (A v), accumulated row by row (same i-ascending order the
      // scalar column loop used).
      std::fill(vnext.begin(), vnext.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        tensor::axpy(av[i], row(i), vnext);
      }
      const double norm = std::sqrt(tensor::dot(
          std::span<const double>(vnext), std::span<const double>(vnext)));
      v.swap(vnext);
      if (norm < 1e-12) break;  // centered data is degenerate
      for (auto& x : v) x /= norm;
    }

    // Outlier scores: squared projection on v.
    std::vector<std::pair<double, std::size_t>> scores(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double acc = tensor::dot(row(i), v);
      scores[i] = {acc * acc, i};
    }
    std::sort(scores.begin(), scores.end());
    // Discard the `discard` highest-scoring updates this iteration.
    for (std::size_t k = n - discard; k < n; ++k) {
      accepted[scores[k].second] = false;
    }
  }

  AggregationResult result;
  for (std::size_t i = 0; i < n; ++i) {
    if (accepted[i]) result.selected.push_back(i);
  }
  if (result.selected.empty()) {
    // Everything filtered (tiny rounds): fall back to the single
    // lowest-score update to keep the server making progress.
    result.selected.push_back(0);
  }
  result.model = mean_of(updates, result.selected);
  return result;
}

}  // namespace zka::defense
